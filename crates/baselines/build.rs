//! Build script: materialize the raw-CGI baseline's source from its artifact
//! constant so the "authored artifact" measured by the ease-of-construction
//! experiment is byte-identical to the code that actually runs.

use std::env;
use std::fs;
use std::path::PathBuf;

fn main() {
    println!("cargo:rerun-if-changed=src/rawcgi.rs");
    let src = fs::read_to_string("src/rawcgi.rs").expect("read rawcgi.rs");
    // Extract the artifact between the r#" after RAWCGI_SOURCE and its "#.
    let start_marker = "pub const RAWCGI_SOURCE: &str = r#\"";
    let start = src.find(start_marker).expect("artifact marker") + start_marker.len();
    let end = src[start..].find("\"#;").expect("artifact end") + start;
    let artifact = &src[start..end];
    let out = PathBuf::from(env::var("OUT_DIR").unwrap()).join("rawcgi_impl.rs");
    fs::write(out, artifact).expect("write generated impl");
}
