//! The common application interface every stack implements, plus the
//! capability matrix the paper argues in prose (§6).
//!
//! All five stacks implement the *same* application — the URL-query directory
//! of Figures 2/3/7/8 — so the end-to-end benchmark compares like with like:
//! serve the input form, accept the §2.2 variable submission, query the
//! database, render a report.

use dbgw_cgi::QueryString;

/// One web-DBMS stack serving the URL-query application.
pub trait UrlQueryApp {
    /// Stack name for reports.
    fn name(&self) -> &'static str;

    /// The HTML fill-in form (input mode).
    fn input_page(&self) -> String;

    /// Process a submission and render the report (report mode).
    fn report_page(&self, inputs: &QueryString) -> String;

    /// The artifact the application developer had to author for this stack
    /// (macro text, proc file, source code, …) — used by the
    /// ease-of-construction experiment (E8).
    fn authored_artifact(&self) -> Artifact;

    /// What this architecture can express (§6's qualitative comparison).
    fn capabilities(&self) -> Capabilities;
}

/// The developer-authored artifact for one stack.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// What kind of thing the developer writes.
    pub kind: &'static str,
    /// The artifact text.
    pub text: &'static str,
}

impl Artifact {
    /// Non-blank lines (comment lines count — the developer wrote them).
    pub fn lines(&self) -> usize {
        self.text.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Bytes.
    pub fn bytes(&self) -> usize {
        self.text.len()
    }
}

/// The qualitative comparison of §6, made checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Full native HTML available for input forms (visual editors usable).
    pub native_html_forms: bool,
    /// Full native SQL available (arbitrary statements, not a fixed shape).
    pub native_sql: bool,
    /// Custom layout of query reports (the paper's GSQL criticism).
    pub custom_report_layout: bool,
    /// WHERE clauses that appear/disappear based on which inputs are filled
    /// (the §3.1.3 conditional/list mechanism).
    pub conditional_where: bool,
    /// Several SQL statements per interaction.
    pub multi_statement: bool,
    /// Building the app requires no general-purpose-language code.
    pub no_procedural_code: bool,
}

impl Capabilities {
    /// How many capabilities are present (for ranking in reports).
    pub fn score(&self) -> u32 {
        [
            self.native_html_forms,
            self.native_sql,
            self.custom_report_layout,
            self.conditional_where,
            self.multi_statement,
            self.no_procedural_code,
        ]
        .iter()
        .filter(|&&b| b)
        .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_counts_nonblank_lines() {
        let a = Artifact {
            kind: "macro",
            text: "line one\n\n  \nline two\n",
        };
        assert_eq!(a.lines(), 2);
        assert_eq!(a.bytes(), 22);
    }

    #[test]
    fn capability_score() {
        let all = Capabilities {
            native_html_forms: true,
            native_sql: true,
            custom_report_layout: true,
            conditional_where: true,
            multi_statement: true,
            no_procedural_code: true,
        };
        assert_eq!(all.score(), 6);
    }
}
