//! Baseline 2 — a mini-GSQL gateway (Eng, NCSA 1994).
//!
//! GSQL used "an intermediate declarative language which is a hybrid of SQL
//! and HTML" (§6). The paper's criticisms, reproduced faithfully here as
//! *restrictions* of this implementation:
//!
//! * the language is "quite restrictive": a proc file describes exactly one
//!   SELECT with fixed clauses and simple `$var` placeholders;
//! * "its method of variable substitution does not allow full use of SQL and
//!   HTML capabilities": no conditionals, no lists, no recursion — a
//!   placeholder is replaced by the raw input value or the empty string, and
//!   every WHERE line is always present;
//! * "there is no mechanism defined for custom layout of query reports":
//!   results always render as the built-in table.
//!
//! Proc-file format (one directive per line):
//!
//! ```text
//! SQL     SELECT url, title FROM urldb
//! WHERE   title LIKE '%$SEARCH%'
//! ORDER   title
//! SHOW    text SEARCH Please enter a search string
//! SHOW    checkbox USE_TITLE Search titles too
//! HEADING URL Query (GSQL)
//! ```

use crate::app::{Artifact, Capabilities, UrlQueryApp};
use dbgw_cgi::QueryString;
use dbgw_core::security::escape_sql_literal;
use dbgw_html::{escape_attr, escape_text, TableBuilder};
use minisql::ExecResult;

/// One form field directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShowField {
    /// `text` or `checkbox`.
    pub kind: String,
    /// Variable name.
    pub name: String,
    /// Label text.
    pub label: String,
}

/// A parsed GSQL proc file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcFile {
    /// Page heading.
    pub heading: String,
    /// The fixed SELECT head (`SELECT … FROM …`).
    pub sql: String,
    /// WHERE lines, ANDed together, each always present.
    pub where_lines: Vec<String>,
    /// ORDER BY column.
    pub order: Option<String>,
    /// Form fields.
    pub fields: Vec<ShowField>,
}

impl ProcFile {
    /// Parse the line-oriented proc format. Unknown directives error — GSQL
    /// had no extension mechanism.
    pub fn parse(src: &str) -> Result<ProcFile, String> {
        let mut proc = ProcFile::default();
        for (lineno, line) in src.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (directive, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            match directive.to_ascii_uppercase().as_str() {
                "SQL" => proc.sql = rest.to_owned(),
                "WHERE" => proc.where_lines.push(rest.to_owned()),
                "ORDER" => proc.order = Some(rest.to_owned()),
                "HEADING" => proc.heading = rest.to_owned(),
                "SHOW" => {
                    let mut parts = rest.splitn(3, char::is_whitespace);
                    let kind = parts.next().unwrap_or("").to_owned();
                    let name = parts.next().unwrap_or("").to_owned();
                    let label = parts.next().unwrap_or("").trim().to_owned();
                    if kind.is_empty() || name.is_empty() {
                        return Err(format!("line {}: SHOW needs kind and name", lineno + 1));
                    }
                    proc.fields.push(ShowField { kind, name, label });
                }
                other => return Err(format!("line {}: unknown directive {other}", lineno + 1)),
            }
        }
        if proc.sql.is_empty() {
            return Err("proc file has no SQL directive".into());
        }
        Ok(proc)
    }

    /// Substitute `$var` placeholders (GSQL-style: flat, non-recursive).
    fn substitute(&self, template: &str, inputs: &QueryString) -> String {
        let mut out = String::with_capacity(template.len());
        let mut rest = template;
        while let Some(at) = rest.find('$') {
            out.push_str(&rest[..at]);
            let tail = &rest[at + 1..];
            let end = tail
                .char_indices()
                .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
                .map(|(i, _)| i)
                .unwrap_or(tail.len());
            if end == 0 {
                out.push('$');
                rest = tail;
                continue;
            }
            let name = &tail[..end];
            let value = inputs.get(name).unwrap_or("");
            out.push_str(&escape_sql_literal(value));
            rest = &tail[end..];
        }
        out.push_str(rest);
        out
    }

    /// Assemble the full statement for a submission.
    pub fn build_sql(&self, inputs: &QueryString) -> String {
        let mut sql = self.substitute(&self.sql, inputs);
        if !self.where_lines.is_empty() {
            sql.push_str(" WHERE ");
            let conds: Vec<String> = self
                .where_lines
                .iter()
                .map(|w| self.substitute(w, inputs))
                .collect();
            sql.push_str(&conds.join(" AND "));
        }
        if let Some(order) = &self.order {
            sql.push_str(" ORDER BY ");
            sql.push_str(order);
        }
        sql
    }
}

/// The proc file for the URL-query application — note what it *cannot* say:
/// no conditional URL/description search, no hyperlinked report.
pub const URLQUERY_PROC: &str = "\
HEADING URL Query (GSQL)
SQL SELECT url, title FROM urldb
WHERE title LIKE '%$SEARCH%'
ORDER title
SHOW text SEARCH Please enter a search string
";

/// The GSQL stack's URL-query app.
pub struct GsqlUrlQuery {
    db: minisql::Database,
    proc: ProcFile,
}

impl GsqlUrlQuery {
    /// Over a loaded database.
    pub fn new(db: minisql::Database) -> GsqlUrlQuery {
        GsqlUrlQuery {
            db,
            proc: ProcFile::parse(URLQUERY_PROC).expect("reference proc parses"),
        }
    }
}

impl UrlQueryApp for GsqlUrlQuery {
    fn name(&self) -> &'static str {
        "gsql"
    }

    fn input_page(&self) -> String {
        let mut page = format!(
            "<TITLE>{0}</TITLE>\n<H1>{0}</H1>\n<FORM METHOD=\"post\" ACTION=\"/cgi-bin/gsql/report\">\n",
            escape_text(&self.proc.heading)
        );
        for field in &self.proc.fields {
            match field.kind.as_str() {
                "checkbox" => page.push_str(&format!(
                    "<INPUT TYPE=\"checkbox\" NAME=\"{}\" VALUE=\"yes\"> {}<BR>\n",
                    escape_attr(&field.name),
                    escape_text(&field.label)
                )),
                _ => page.push_str(&format!(
                    "{}: <INPUT TYPE=\"text\" NAME=\"{}\"><BR>\n",
                    escape_text(&field.label),
                    escape_attr(&field.name)
                )),
            }
        }
        page.push_str("<INPUT TYPE=\"submit\" VALUE=\"Submit\">\n</FORM>\n");
        page
    }

    fn report_page(&self, inputs: &QueryString) -> String {
        let sql = self.proc.build_sql(inputs);
        let mut page = format!("<H1>{} — Result</H1>\n", escape_text(&self.proc.heading));
        let mut conn = self.db.connect();
        match conn.execute(&sql) {
            Ok(ExecResult::Rows(rs)) => {
                // Fixed tabular output: GSQL had no report layout mechanism.
                let mut table = TableBuilder::new(&rs.columns);
                for row in &rs.rows {
                    let cells: Vec<String> = row.iter().map(|v| v.to_display_string()).collect();
                    table.push_row(&cells);
                }
                page.push_str(&table.finish());
            }
            Ok(_) => page.push_str("<P>OK</P>\n"),
            Err(e) => page.push_str(&format!(
                "<P><B>SQL error {}</B>: {}</P>\n",
                e.code.0,
                escape_text(&e.message)
            )),
        }
        page
    }

    fn authored_artifact(&self) -> Artifact {
        Artifact {
            kind: "GSQL proc file (restricted declarative hybrid)",
            text: URLQUERY_PROC,
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            native_html_forms: false, // forms are generated, not authored
            native_sql: false,        // one fixed-shape SELECT
            custom_report_layout: false,
            conditional_where: false,
            multi_statement: false,
            no_procedural_code: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_workload::UrlDirectory;

    fn app() -> GsqlUrlQuery {
        GsqlUrlQuery::new(UrlDirectory::generate(100, 11).into_database())
    }

    #[test]
    fn proc_file_parses() {
        let p = ProcFile::parse(URLQUERY_PROC).unwrap();
        assert_eq!(p.where_lines.len(), 1);
        assert_eq!(p.fields.len(), 1);
        assert_eq!(p.order.as_deref(), Some("title"));
    }

    #[test]
    fn unknown_directive_rejected() {
        assert!(ProcFile::parse("FROB x").is_err());
        assert!(ProcFile::parse("# comment only").is_err()); // no SQL
    }

    #[test]
    fn builds_fixed_shape_sql() {
        let p = ProcFile::parse(URLQUERY_PROC).unwrap();
        let q = QueryString::from_pairs([("SEARCH", "ib")]);
        assert_eq!(
            p.build_sql(&q),
            "SELECT url, title FROM urldb WHERE title LIKE '%ib%' ORDER BY title"
        );
        // Empty input: the WHERE is STILL present (no conditional mechanism) —
        // it degenerates to match-everything instead of disappearing.
        let q = QueryString::new();
        assert_eq!(
            p.build_sql(&q),
            "SELECT url, title FROM urldb WHERE title LIKE '%%' ORDER BY title"
        );
    }

    #[test]
    fn substitution_is_flat_not_recursive() {
        let p = ProcFile::parse("SQL SELECT $A FROM t").unwrap();
        let q = QueryString::from_pairs([("A", "$B"), ("B", "nope")]);
        // GSQL replaces $A with the literal input, never chasing $B — but the
        // inner '$B' then survives as text.
        assert_eq!(p.build_sql(&q), "SELECT $B FROM t");
    }

    #[test]
    fn report_is_always_a_table() {
        let app = app();
        let page = app.report_page(&QueryString::from_pairs([("SEARCH", "ib")]));
        assert!(page.contains("<TABLE BORDER=1>"));
        assert!(!page.contains("<LI>")); // no custom hyperlink layout possible
        assert!(dbgw_html::check_balanced(&page).is_ok());
    }

    #[test]
    fn quotes_in_input_escaped() {
        let app = app();
        let page = app.report_page(&QueryString::from_pairs([("SEARCH", "o'brien")]));
        assert!(!page.contains("SQL error"), "page: {page}");
    }
}
