//! **dbgw-baselines** — working mini-reimplementations of the related work
//! the paper compares against in §6, plus the stand-alone-CGI straw man of
//! §1, all serving the *same* URL-query application as the macro stack:
//!
//! | module | stack | §6 verdict reproduced as restrictions |
//! |--------|-------|----------------------------------------|
//! | [`macroapp`] | DB2WWW macro (the paper's system) | reference |
//! | [`rawcgi`]   | hand-coded CGI program | fast, but all code |
//! | [`gsql`]     | GSQL declarative hybrid | restrictive; no custom reports |
//! | [`wdb`]      | WDB FDF generator | zero authoring; no layout control |
//! | [`plsql`]    | PL/SQL Web toolkit style | powerful; extensive programming |
//!
//! Every stack implements [`app::UrlQueryApp`], so the end-to-end and
//! ease-of-construction benchmarks (E3, E8 in `EXPERIMENTS.md`) iterate one
//! list of trait objects.

#![warn(missing_docs)]

pub mod app;
pub mod gsql;
pub mod macroapp;
pub mod plsql;
pub mod rawcgi;
pub mod wdb;

pub use app::{Artifact, Capabilities, UrlQueryApp};
pub use gsql::GsqlUrlQuery;
pub use macroapp::{MacroUrlQuery, URLQUERY_MACRO};
pub use plsql::PlsqlUrlQuery;
pub use rawcgi::RawCgiUrlQuery;
pub use wdb::WdbUrlQuery;

/// All five stacks over clones of one loaded database.
pub fn all_stacks(db: &minisql::Database) -> Vec<Box<dyn UrlQueryApp>> {
    vec![
        Box::new(MacroUrlQuery::new(db.clone())),
        Box::new(RawCgiUrlQuery::new(db.clone())),
        Box::new(GsqlUrlQuery::new(db.clone())),
        Box::new(WdbUrlQuery::new(db.clone())),
        Box::new(PlsqlUrlQuery::new(db.clone())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_cgi::QueryString;
    use dbgw_workload::UrlDirectory;

    #[test]
    fn every_stack_serves_both_pages() {
        let db = UrlDirectory::generate(50, 3).into_database();
        for stack in all_stacks(&db) {
            let input = stack.input_page();
            assert!(
                dbgw_html::check_balanced(&input).is_ok(),
                "{} input page malformed",
                stack.name()
            );
            let report = stack.report_page(&QueryString::from_pairs([
                ("SEARCH", "ib"),
                ("USE_TITLE", "yes"),
                ("DBFIELDS", "title"),
                ("title", "I"),
            ]));
            assert!(
                dbgw_html::check_balanced(&report).is_ok(),
                "{} report malformed: {report}",
                stack.name()
            );
        }
    }

    #[test]
    fn capability_ranking_matches_paper_argument() {
        let db = UrlDirectory::generate(10, 3).into_database();
        let stacks = all_stacks(&db);
        let score = |name: &str| {
            stacks
                .iter()
                .find(|s| s.name() == name)
                .unwrap()
                .capabilities()
                .score()
        };
        // The macro system dominates every baseline on the §6 axes.
        assert!(score("db2www-macro") > score("raw-cgi"));
        assert!(score("db2www-macro") > score("gsql"));
        assert!(score("db2www-macro") > score("wdb"));
        assert!(score("db2www-macro") > score("plsql-toolkit"));
        // And only the code-based stacks match its expressiveness axes minus
        // the no-code one.
        assert_eq!(score("db2www-macro"), 6);
    }

    #[test]
    fn authored_artifact_sizes_ordered_as_claimed() {
        // §1/§6 claims: macros need "no coding"; scripting/PL-SQL need
        // "extensive programming". Proxy: authored artifact line counts.
        let db = UrlDirectory::generate(10, 3).into_database();
        let stacks = all_stacks(&db);
        let lines = |name: &str| {
            stacks
                .iter()
                .find(|s| s.name() == name)
                .unwrap()
                .authored_artifact()
                .lines()
        };
        assert_eq!(lines("wdb"), 0); // generated
        assert!(lines("gsql") < lines("db2www-macro")); // but far less capable
        assert!(lines("db2www-macro") < lines("raw-cgi"));
        assert!(lines("db2www-macro") < lines("plsql-toolkit"));
    }
}
