//! The URL-query application on the *paper's* stack: a DB2WWW-style macro.
//!
//! This is the Appendix A application, modernized only in table/column
//! spelling. It is the reference implementation the baselines are compared
//! against: authored entirely in native HTML + SQL + substitution, with the
//! conditional WHERE construction and a custom hyperlinked report.

use crate::app::{Artifact, Capabilities, UrlQueryApp};
use dbgw_cgi::{MiniSqlDatabase, QueryString};
use dbgw_core::{parse_macro, Engine, MacroFile, Mode};

/// The Appendix A macro (modern spelling of the same application).
pub const URLQUERY_MACRO: &str = r#"%DEFINE{
  DATABASE = "CELDIAL"
  dbtbl = "urldb"
  %LIST " OR " L_INFO
  L_INFO = USE_URL ? "$(dbtbl).url LIKE '%$(SEARCH)%'" : ""
  L_INFO = USE_TITLE ? "$(dbtbl).title LIKE '%$(SEARCH)%'" : ""
  L_INFO = USE_DESC ? "$(dbtbl).description LIKE '%$(SEARCH)%'" : ""
  WHERELIST = ? "WHERE $(L_INFO)"
  %LIST " , " DBFIELDS
  D2 = ? "<br>$(V2)"
  D3 = ? "<br>$(V3)"
%}
%SQL{
SELECT url, $(DBFIELDS)
FROM $(dbtbl) $(WHERELIST) ORDER BY title
%SQL_REPORT{
Select any of the following to go to the specified URL:
<UL>
%ROW{<LI><A HREF="$(V1)">$(V1)</A> $(D2) $(D3)
%}</UL>
%}
%}
%HTML_INPUT{<TITLE>DB2 WWW URL Query</TITLE>
<H1>Query URL Information</H1>
<P>Enter a search string to query URLs.
<FORM METHOD="post" ACTION="/cgi-bin/db2www/urlquery.d2w/report">
Search String: <INPUT NAME="SEARCH" VALUE="ib">
<P>Use the above search string in which of the following:
<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED> URL<BR>
<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED> Title<BR>
<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes"> Description
<P>Please select what additional field(s) to see in the report:<BR>
<SELECT NAME="DBFIELDS" SIZE=2 MULTIPLE>
<OPTION VALUE="$$(hidden_a)" SELECTED> Title
<OPTION VALUE="$$(hidden_b)"> Description
</SELECT> <P> <HR>
Show SQL statement on output?
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="YES"> Yes
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="" CHECKED> No
<INPUT TYPE="submit" VALUE="Submit Query">
<INPUT TYPE="reset" VALUE="Reset Input">
</FORM> <HR>
%}
%DEFINE{
  hidden_a = "title"
  hidden_b = "description"
%}
%HTML_REPORT{<TITLE>DB2 WWW URL Query Result</TITLE>
<H1>URL Query Result</H1>
<HR>
%EXEC_SQL
<HR>
%}"#;

/// The macro stack's URL-query app.
pub struct MacroUrlQuery {
    db: minisql::Database,
    mac: MacroFile,
}

impl MacroUrlQuery {
    /// Over a database that already has `urldb` loaded.
    pub fn new(db: minisql::Database) -> MacroUrlQuery {
        MacroUrlQuery {
            db,
            mac: parse_macro(URLQUERY_MACRO).expect("reference macro parses"),
        }
    }
}

impl UrlQueryApp for MacroUrlQuery {
    fn name(&self) -> &'static str {
        "db2www-macro"
    }

    fn input_page(&self) -> String {
        Engine::new()
            .process_input(&self.mac, &[])
            .expect("input mode")
    }

    fn report_page(&self, inputs: &QueryString) -> String {
        let vars: Vec<(String, String)> = inputs.pairs().to_vec();
        let mut conn = MiniSqlDatabase::connect(&self.db);
        Engine::new()
            .process(&self.mac, Mode::Report, &vars, &mut conn)
            .expect("report mode")
    }

    fn authored_artifact(&self) -> Artifact {
        Artifact {
            kind: "macro file (HTML + SQL + substitution)",
            text: URLQUERY_MACRO,
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            native_html_forms: true,
            native_sql: true,
            custom_report_layout: true,
            conditional_where: true,
            multi_statement: true,
            no_procedural_code: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_workload::UrlDirectory;

    fn app() -> MacroUrlQuery {
        MacroUrlQuery::new(UrlDirectory::generate(100, 11).into_database())
    }

    #[test]
    fn input_page_contains_form_with_hidden_names() {
        let page = app().input_page();
        assert!(page.contains("<INPUT NAME=\"SEARCH\" VALUE=\"ib\">"));
        // $$(hidden_a) must appear as the literal $(hidden_a) per §4.1.
        assert!(page.contains("VALUE=\"$(hidden_a)\""));
        assert!(dbgw_html::check_balanced(&page).is_ok());
    }

    #[test]
    fn report_builds_conditional_where_and_links() {
        let app = app();
        let inputs = QueryString::from_pairs([
            ("SEARCH", "ib"),
            ("USE_URL", "yes"),
            ("USE_TITLE", "yes"),
            ("USE_DESC", ""),
            ("DBFIELDS", "title"),
            ("SHOWSQL", "YES"),
        ]);
        let page = app.report_page(&inputs);
        assert!(page.contains("URL Query Result"));
        // SHOWSQL echo proves the statement shape.
        assert!(page.contains(
            "SELECT url, title\nFROM urldb WHERE urldb.url LIKE '%ib%' OR urldb.title LIKE '%ib%' ORDER BY title"
        ), "page: {page}");
        assert!(page.contains("<LI><A HREF="));
    }

    #[test]
    fn no_checkboxes_means_no_where_clause() {
        let app = app();
        let inputs =
            QueryString::from_pairs([("SEARCH", "ib"), ("DBFIELDS", "title"), ("SHOWSQL", "YES")]);
        let page = app.report_page(&inputs);
        assert!(page.contains("FROM urldb  ORDER BY title"), "page: {page}");
    }

    #[test]
    fn artifact_is_the_macro() {
        let a = app().authored_artifact();
        assert!(a.lines() > 30);
        assert_eq!(a.kind, "macro file (HTML + SQL + substitution)");
    }
}
