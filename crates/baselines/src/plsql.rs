//! Baseline 4 — an Oracle-PL/SQL-Web-toolkit-style gateway (§6).
//!
//! Oracle's approach gave stored procedures an `htp` package whose calls
//! append HTML to the CGI output stream. "For the programmer who is already
//! familiar with PL/SQL, the new library routines provide a simple way to
//! output results into HTML pages ... However, building applications
//! require\[s\] extensive programming." We reproduce the architecture: an
//! [`Htp`] output buffer with the toolkit's print helpers, and the URL-query
//! application written as a "stored procedure" against it.

use crate::app::{Artifact, Capabilities, UrlQueryApp};
use dbgw_cgi::QueryString;
use dbgw_core::security::escape_sql_literal;
use dbgw_html::escape_text;
use minisql::ExecResult;

/// The `htp` package: procedural HTML emission.
#[derive(Debug, Default)]
pub struct Htp {
    buf: String,
}

impl Htp {
    /// Fresh output stream.
    pub fn new() -> Htp {
        Htp::default()
    }

    /// `htp.print` — raw line.
    pub fn print(&mut self, s: &str) {
        self.buf.push_str(s);
        self.buf.push('\n');
    }

    /// `htp.header(n, text)`.
    pub fn header(&mut self, level: u8, text: &str) {
        self.buf
            .push_str(&format!("<H{level}>{}</H{level}>\n", escape_text(text)));
    }

    /// `htp.anchor(url, text)`.
    pub fn anchor(&mut self, url: &str, text: &str) {
        self.buf.push_str(&format!(
            "<A HREF=\"{}\">{}</A>",
            escape_text(url),
            escape_text(text)
        ));
    }

    /// `htp.para`.
    pub fn para(&mut self) {
        self.buf.push_str("<P>\n");
    }

    /// `htp.listItem` open.
    pub fn list_item(&mut self) {
        self.buf.push_str("<LI>");
    }

    /// `htp.ulistOpen` / `htp.ulistClose`.
    pub fn ulist_open(&mut self) {
        self.buf.push_str("<UL>\n");
    }

    /// Close the list.
    pub fn ulist_close(&mut self) {
        self.buf.push_str("</UL>\n");
    }

    /// Take the page.
    pub fn into_page(self) -> String {
        self.buf
    }
}

/// For E8: the "stored procedure" source, verbatim (kept honest by the
/// `artifact_matches_behaviour` test exercising the same logic).
pub const PLSQL_SOURCE: &str = r#"
PROCEDURE url_query_input IS
BEGIN
  htp.header(1, 'Query URL Information (PL/SQL toolkit)');
  htp.print('<FORM METHOD="post" ACTION="/owa/url_query_report">');
  htp.print('Search String: <INPUT NAME="SEARCH" VALUE="ib">');
  htp.para;
  htp.print('Use the above search string in which of the following:');
  htp.print('<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED> URL<BR>');
  htp.print('<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED> Title<BR>');
  htp.print('<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes"> Description');
  htp.para;
  htp.print('Please select what additional field(s) to see in the report:<BR>');
  htp.print('<SELECT NAME="DBFIELDS" SIZE=2 MULTIPLE>');
  htp.print('<OPTION VALUE="title" SELECTED> Title');
  htp.print('<OPTION VALUE="description"> Description');
  htp.print('</SELECT>');
  htp.para;
  htp.print('Show SQL statement on output?');
  htp.print('<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="YES"> Yes');
  htp.print('<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="" CHECKED> No');
  htp.print('<INPUT TYPE="submit" VALUE="Submit Query">');
  htp.print('<INPUT TYPE="reset" VALUE="Reset Input">');
  htp.print('</FORM>');
END;

PROCEDURE url_query_report(search VARCHAR2, use_url VARCHAR2,
                           use_title VARCHAR2, use_desc VARCHAR2,
                           dbfields OWA_UTIL.ident_arr,
                           showsql VARCHAR2) IS
  conds  VARCHAR2(2000) := '';
  fields VARCHAR2(2000) := '';
  stmt   VARCHAR2(4000);
  CURSOR c IS ...; -- OPEN stmt FOR dynamic SQL
BEGIN
  htp.header(1, 'URL Query Result');
  IF use_url IS NOT NULL THEN
    conds := conds || ' OR url LIKE ''%' || search || '%''';
  END IF;
  IF use_title IS NOT NULL THEN
    conds := conds || ' OR title LIKE ''%' || search || '%''';
  END IF;
  IF use_desc IS NOT NULL THEN
    conds := conds || ' OR description LIKE ''%' || search || '%''';
  END IF;
  FOR i IN 1 .. dbfields.COUNT LOOP
    fields := fields || ' , ' || dbfields(i);
  END LOOP;
  IF fields IS NULL THEN
    fields := ' , title';
  END IF;
  stmt := 'SELECT url' || fields || ' FROM urldb';
  IF conds IS NOT NULL THEN
    stmt := stmt || ' WHERE' || SUBSTR(conds, 4);
  END IF;
  stmt := stmt || ' ORDER BY title';
  IF showsql IS NOT NULL THEN
    htp.print('<P><CODE>' || stmt || '</CODE></P>');
  END IF;
  htp.ulistOpen;
  FOR row IN EXECUTE stmt LOOP
    htp.listItem;
    htp.anchor(row.url, row.url);
    FOR i IN 2 .. row.COUNT LOOP
      IF row(i) IS NOT NULL THEN
        htp.print(' <br>' || row(i));
      END IF;
    END LOOP;
  END LOOP;
  htp.ulistClose;
END;
"#;

/// The PL/SQL-toolkit stack's URL-query app.
pub struct PlsqlUrlQuery {
    db: minisql::Database,
}

impl PlsqlUrlQuery {
    /// Over a loaded database.
    pub fn new(db: minisql::Database) -> PlsqlUrlQuery {
        PlsqlUrlQuery { db }
    }
}

impl UrlQueryApp for PlsqlUrlQuery {
    fn name(&self) -> &'static str {
        "plsql-toolkit"
    }

    fn input_page(&self) -> String {
        // The Rust rendering of url_query_input above.
        let mut htp = Htp::new();
        htp.header(1, "Query URL Information (PL/SQL toolkit)");
        htp.print("<FORM METHOD=\"post\" ACTION=\"/owa/url_query_report\">");
        htp.print("Search String: <INPUT NAME=\"SEARCH\" VALUE=\"ib\">");
        htp.para();
        htp.print("Use the above search string in which of the following:");
        htp.print("<INPUT TYPE=\"checkbox\" NAME=\"USE_URL\" VALUE=\"yes\" CHECKED> URL<BR>");
        htp.print("<INPUT TYPE=\"checkbox\" NAME=\"USE_TITLE\" VALUE=\"yes\" CHECKED> Title<BR>");
        htp.print("<INPUT TYPE=\"checkbox\" NAME=\"USE_DESC\" VALUE=\"yes\"> Description");
        htp.para();
        htp.print("Please select what additional field(s) to see in the report:<BR>");
        htp.print("<SELECT NAME=\"DBFIELDS\" SIZE=2 MULTIPLE>");
        htp.print("<OPTION VALUE=\"title\" SELECTED> Title");
        htp.print("<OPTION VALUE=\"description\"> Description");
        htp.print("</SELECT>");
        htp.para();
        htp.print("Show SQL statement on output?");
        htp.print("<INPUT TYPE=\"radio\" NAME=\"SHOWSQL\" VALUE=\"YES\"> Yes");
        htp.print("<INPUT TYPE=\"radio\" NAME=\"SHOWSQL\" VALUE=\"\" CHECKED> No");
        htp.print("<INPUT TYPE=\"submit\" VALUE=\"Submit Query\">");
        htp.print("<INPUT TYPE=\"reset\" VALUE=\"Reset Input\">");
        htp.print("</FORM>");
        htp.into_page()
    }

    fn report_page(&self, inputs: &QueryString) -> String {
        // The Rust rendering of url_query_report above.
        let search = escape_sql_literal(inputs.get("SEARCH").unwrap_or(""));
        let mut htp = Htp::new();
        htp.header(1, "URL Query Result");
        let mut conds = String::new();
        let set = |name: &str| inputs.get(name).is_some_and(|v| !v.is_empty());
        if set("USE_URL") {
            conds.push_str(&format!(" OR url LIKE '%{search}%'"));
        }
        if set("USE_TITLE") {
            conds.push_str(&format!(" OR title LIKE '%{search}%'"));
        }
        if set("USE_DESC") {
            conds.push_str(&format!(" OR description LIKE '%{search}%'"));
        }
        let mut fields = String::new();
        for f in inputs.get_all("DBFIELDS") {
            fields.push_str(" , ");
            fields.push_str(f);
        }
        if fields.is_empty() {
            fields.push_str(" , title");
        }
        let mut stmt = format!("SELECT url{fields} FROM urldb");
        if !conds.is_empty() {
            stmt.push_str(" WHERE");
            stmt.push_str(&conds[3..]);
        }
        stmt.push_str(" ORDER BY title");
        if set("SHOWSQL") {
            htp.print(&format!("<P><CODE>{}</CODE></P>", escape_text(&stmt)));
        }
        let mut conn = self.db.connect();
        match conn.execute(&stmt) {
            Ok(ExecResult::Rows(rs)) => {
                htp.ulist_open();
                for row in &rs.rows {
                    htp.list_item();
                    let url = row[0].to_display_string();
                    htp.anchor(&url, &url);
                    for extra in &row[1..] {
                        let text = extra.to_display_string();
                        if !text.is_empty() {
                            htp.print(&format!(" <br>{}", escape_text(&text)));
                        }
                    }
                }
                htp.ulist_close();
            }
            Ok(_) => htp.print("<P>OK</P>"),
            Err(e) => htp.print(&format!(
                "<P><B>SQL error {}</B>: {}</P>",
                e.code.0,
                escape_text(&e.message)
            )),
        }
        htp.into_page()
    }

    fn authored_artifact(&self) -> Artifact {
        Artifact {
            kind: "stored-procedure source (htp toolkit calls)",
            text: PLSQL_SOURCE,
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            native_html_forms: false, // HTML arrives via print calls
            native_sql: true,
            custom_report_layout: true,
            conditional_where: true,
            multi_statement: true,
            no_procedural_code: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_workload::UrlDirectory;

    fn app() -> PlsqlUrlQuery {
        PlsqlUrlQuery::new(UrlDirectory::generate(100, 11).into_database())
    }

    #[test]
    fn htp_builds_pages() {
        let mut htp = Htp::new();
        htp.header(1, "Hi & bye");
        htp.ulist_open();
        htp.list_item();
        htp.anchor("http://x", "link");
        htp.ulist_close();
        let page = htp.into_page();
        assert!(page.contains("<H1>Hi &amp; bye</H1>"));
        assert!(dbgw_html::check_balanced(&page).is_ok());
    }

    #[test]
    fn artifact_matches_behaviour() {
        // The documented PL/SQL builds the same statement our Rust port does.
        let app = app();
        let page = app.report_page(&QueryString::from_pairs([
            ("SEARCH", "ib"),
            ("USE_URL", "yes"),
            ("USE_TITLE", "yes"),
        ]));
        assert!(page.contains("<UL>"));
        assert!(page.contains("<LI><A HREF="));
        assert!(PLSQL_SOURCE.contains("' OR url LIKE ''%'"));
    }

    #[test]
    fn conditional_where_works_like_macro_stack() {
        let app = app();
        // No boxes checked: full listing.
        let all = app.report_page(&QueryString::from_pairs([("SEARCH", "zzz")]));
        let all_items = all.matches("<LI>").count();
        assert_eq!(all_items, 100);
        // Title search narrows.
        let some = app.report_page(&QueryString::from_pairs([
            ("SEARCH", "zzz"),
            ("USE_TITLE", "yes"),
        ]));
        assert_eq!(some.matches("<LI>").count(), 0);
    }
}
