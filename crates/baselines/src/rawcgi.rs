//! Baseline 1 — the stand-alone CGI program of the paper's introduction.
//!
//! §1 lists this approach's drawbacks: the programmer must know the CGI
//! protocol and the DBMS API, HTML is intermixed with program logic, and any
//! output change means changing code. It is also the *fastest possible*
//! implementation — no macro parsing, no substitution — so it bounds the
//! gateway's overhead from below in the end-to-end benchmark.

use crate::app::{Artifact, Capabilities, UrlQueryApp};
use dbgw_cgi::QueryString;
use dbgw_core::security::escape_sql_literal;
use dbgw_html::escape_text;
use minisql::ExecResult;

/// For the ease-of-construction comparison: the application code below,
/// verbatim (kept in sync by the `artifact_matches_source` test).
pub const RAWCGI_SOURCE: &str = r#"
pub fn input_page() -> String {
    let mut page = String::new();
    page.push_str("<TITLE>URL Query (raw CGI)</TITLE>\n<H1>Query URL Information</H1>\n");
    page.push_str("<FORM METHOD=\"post\" ACTION=\"/cgi-bin/rawcgi/report\">\n");
    page.push_str("Search String: <INPUT NAME=\"SEARCH\" VALUE=\"ib\">\n<P>\n");
    page.push_str("<INPUT TYPE=\"checkbox\" NAME=\"USE_URL\" VALUE=\"yes\" CHECKED> URL<BR>\n");
    page.push_str("<INPUT TYPE=\"checkbox\" NAME=\"USE_TITLE\" VALUE=\"yes\" CHECKED> Title<BR>\n");
    page.push_str("<INPUT TYPE=\"checkbox\" NAME=\"USE_DESC\" VALUE=\"yes\"> Description\n<P>\n");
    page.push_str("<SELECT NAME=\"DBFIELDS\" SIZE=2 MULTIPLE>\n");
    page.push_str("<OPTION VALUE=\"title\" SELECTED> Title\n");
    page.push_str("<OPTION VALUE=\"description\"> Description\n</SELECT>\n");
    page.push_str("<INPUT TYPE=\"submit\" VALUE=\"Submit Query\">\n</FORM>\n");
    page
}

pub fn report_page(db: &minisql::Database, inputs: &QueryString) -> String {
    let search = escape_sql_literal(inputs.get("SEARCH").unwrap_or(""));
    let mut conditions: Vec<String> = Vec::new();
    if inputs.get("USE_URL").is_some_and(|v| !v.is_empty()) {
        conditions.push(format!("urldb.url LIKE '%{search}%'"));
    }
    if inputs.get("USE_TITLE").is_some_and(|v| !v.is_empty()) {
        conditions.push(format!("urldb.title LIKE '%{search}%'"));
    }
    if inputs.get("USE_DESC").is_some_and(|v| !v.is_empty()) {
        conditions.push(format!("urldb.description LIKE '%{search}%'"));
    }
    let mut fields: Vec<&str> = inputs.get_all("DBFIELDS");
    if fields.is_empty() {
        fields.push("title");
    }
    let mut sql = format!("SELECT url, {} FROM urldb", fields.join(" , "));
    if !conditions.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conditions.join(" OR "));
    }
    sql.push_str(" ORDER BY title");

    let mut page = String::new();
    page.push_str("<TITLE>URL Query Result</TITLE>\n<H1>URL Query Result</H1>\n<HR>\n");
    let mut conn = db.connect();
    match conn.execute(&sql) {
        Ok(ExecResult::Rows(rs)) => {
            page.push_str("Select any of the following to go to the specified URL:\n<UL>\n");
            for row in &rs.rows {
                let url = row[0].to_display_string();
                page.push_str("<LI><A HREF=\"");
                page.push_str(&escape_text(&url));
                page.push_str("\">");
                page.push_str(&escape_text(&url));
                page.push_str("</A>");
                for extra in &row[1..] {
                    let text = extra.to_display_string();
                    if !text.is_empty() {
                        page.push_str(" <br>");
                        page.push_str(&escape_text(&text));
                    }
                }
                page.push('\n');
            }
            page.push_str("</UL>\n");
        }
        Ok(_) => page.push_str("<P>OK</P>\n"),
        Err(e) => {
            page.push_str(&format!(
                "<P><B>SQL error {}</B>: {}</P>\n",
                e.code.0,
                escape_text(&e.message)
            ));
        }
    }
    page.push_str("<HR>\n");
    page
}
"#;

mod generated {
    //! The artifact above, compiled verbatim (see `build.rs`).
    #![allow(missing_docs)]
    use super::*;
    include!(concat!(env!("OUT_DIR"), "/rawcgi_impl.rs"));
}
use generated::{input_page, report_page};

/// The raw-CGI stack's URL-query app.
pub struct RawCgiUrlQuery {
    db: minisql::Database,
}

impl RawCgiUrlQuery {
    /// Over a loaded database.
    pub fn new(db: minisql::Database) -> RawCgiUrlQuery {
        RawCgiUrlQuery { db }
    }
}

impl UrlQueryApp for RawCgiUrlQuery {
    fn name(&self) -> &'static str {
        "raw-cgi"
    }

    fn input_page(&self) -> String {
        input_page()
    }

    fn report_page(&self, inputs: &QueryString) -> String {
        report_page(&self.db, inputs)
    }

    fn authored_artifact(&self) -> Artifact {
        Artifact {
            kind: "general-purpose-language source (CGI + DBMS API)",
            text: RAWCGI_SOURCE,
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            native_html_forms: true, // embedded in code, but full HTML
            native_sql: true,
            custom_report_layout: true,
            conditional_where: true,
            multi_statement: true,
            no_procedural_code: false, // everything is procedural code
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_workload::UrlDirectory;

    fn app() -> RawCgiUrlQuery {
        RawCgiUrlQuery::new(UrlDirectory::generate(100, 11).into_database())
    }

    #[test]
    fn serves_same_application_shape() {
        let app = app();
        assert!(app.input_page().contains("NAME=\"SEARCH\""));
        let inputs = QueryString::from_pairs([
            ("SEARCH", "ib"),
            ("USE_URL", "yes"),
            ("USE_TITLE", "yes"),
            ("DBFIELDS", "title"),
        ]);
        let page = app.report_page(&inputs);
        assert!(page.contains("<LI><A HREF="));
        assert!(dbgw_html::check_balanced(&page).is_ok());
    }

    #[test]
    fn escapes_hostile_search_input() {
        let app = app();
        let inputs =
            QueryString::from_pairs([("SEARCH", "'; DROP TABLE urldb; --"), ("USE_TITLE", "yes")]);
        let page = app.report_page(&inputs);
        // The quote is escaped, so the statement executes (matching nothing).
        assert!(!page.contains("SQL error"), "page: {page}");
        assert_eq!(app.db.table_len("urldb").unwrap(), 100);
    }

    #[test]
    fn artifact_matches_source() {
        // The artifact string must be exactly what is compiled in.
        let built = include_str!(concat!(env!("OUT_DIR"), "/rawcgi_impl.rs"));
        assert_eq!(built, RAWCGI_SOURCE);
    }
}
