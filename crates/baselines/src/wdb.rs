//! Baseline 3 — a mini-WDB gateway (Rasmussen, ESO 1994).
//!
//! WDB had two components (§6): an **FDF generator** that extracts table and
//! field definitions from the database to build a skeleton *form definition
//! file*, and a **run-time engine** that auto-generates query forms, the SQL
//! query, and report forms from the FDF. The paper's criticisms, kept as
//! restrictions: "the FDF files contain no information about the input/output
//! form layout" and WDB has "very limited query and report form building
//! capabilities".
//!
//! The upside the paper concedes — "a quick and easy way to build simple
//! query and report forms to navigate the database" — is real here too: the
//! developer authors *nothing*; the FDF is derived from the schema.

use crate::app::{Artifact, Capabilities, UrlQueryApp};
use dbgw_cgi::QueryString;
use dbgw_core::security::escape_sql_literal;
use dbgw_html::{escape_attr, escape_text, TableBuilder};
use minisql::{ExecResult, SqlType};

/// One field in a form definition file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdfField {
    /// Column name.
    pub name: String,
    /// Column type, driving the constraint syntax (text → LIKE, numeric → =).
    pub ty: SqlType,
}

/// A form definition file for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fdf {
    /// Table name.
    pub table: String,
    /// Fields in schema order.
    pub fields: Vec<FdfField>,
}

impl Fdf {
    /// The FDF *generator*: extract the definition from the live database —
    /// no authoring at all.
    pub fn generate(db: &minisql::Database, table: &str) -> Result<Fdf, String> {
        let mut conn = db.connect();
        // Probe the schema via a zero-row query.
        let result = conn
            .execute(&format!("SELECT * FROM {table} LIMIT 0"))
            .map_err(|e| e.to_string())?;
        let ExecResult::Rows(rs) = result else {
            return Err("schema probe did not return a result set".into());
        };
        // Determine each column's type by sampling one row (text if unknown).
        let sample = conn
            .execute(&format!("SELECT * FROM {table} LIMIT 1"))
            .map_err(|e| e.to_string())?;
        let sample_row = match &sample {
            ExecResult::Rows(r) => r.rows.first().cloned(),
            _ => None,
        };
        let fields = rs
            .columns
            .iter()
            .enumerate()
            .map(|(i, name)| FdfField {
                name: name.clone(),
                ty: sample_row
                    .as_ref()
                    .and_then(|row| row.get(i))
                    .and_then(|v| v.sql_type())
                    .unwrap_or(SqlType::Varchar),
            })
            .collect();
        Ok(Fdf {
            table: table.to_owned(),
            fields,
        })
    }

    /// Serialize to the on-disk FDF format (for the artifact comparison).
    pub fn to_text(&self) -> String {
        let mut out = format!("TABLE {}\n", self.table);
        for f in &self.fields {
            out.push_str(&format!("FIELD {} {}\n", f.name, f.ty));
        }
        out
    }
}

/// The WDB stack's URL-query app: schema-derived, zero authoring.
pub struct WdbUrlQuery {
    db: minisql::Database,
    fdf: Fdf,
    fdf_text: &'static str,
}

impl WdbUrlQuery {
    /// Generate the FDF from the loaded database.
    pub fn new(db: minisql::Database) -> WdbUrlQuery {
        let fdf = Fdf::generate(&db, "urldb").expect("urldb exists");
        // The authored artifact is empty: the generator wrote the FDF.
        WdbUrlQuery {
            db,
            fdf,
            fdf_text: "",
        }
    }

    /// The generated (not authored) FDF text.
    pub fn generated_fdf(&self) -> String {
        self.fdf.to_text()
    }
}

impl UrlQueryApp for WdbUrlQuery {
    fn name(&self) -> &'static str {
        "wdb"
    }

    fn input_page(&self) -> String {
        // One constraint input per field, generated — no layout control.
        let mut page = format!(
            "<TITLE>{0} query (WDB)</TITLE>\n<H1>Query form: {0}</H1>\n\
             <FORM METHOD=\"post\" ACTION=\"/cgi-bin/wdb/{0}/query\">\n<TABLE>\n",
            escape_text(&self.fdf.table)
        );
        for field in &self.fdf.fields {
            page.push_str(&format!(
                "<TR><TD>{}</TD><TD><INPUT TYPE=\"text\" NAME=\"{}\"></TD></TR>\n",
                escape_text(&field.name),
                escape_attr(&field.name)
            ));
        }
        page.push_str("</TABLE>\n<INPUT TYPE=\"submit\" VALUE=\"Search\">\n</FORM>\n");
        page
    }

    fn report_page(&self, inputs: &QueryString) -> String {
        // Generated query: every non-empty field contributes one constraint —
        // LIKE 'v%' for text, = v for numbers. ANDed; nothing else possible.
        let mut conditions = Vec::new();
        for field in &self.fdf.fields {
            if let Some(value) = inputs.get(&field.name).filter(|v| !v.is_empty()) {
                let escaped = escape_sql_literal(value);
                match field.ty {
                    SqlType::Varchar => {
                        conditions.push(format!("{} LIKE '{escaped}%'", field.name))
                    }
                    _ => conditions.push(format!("{} = '{escaped}'", field.name)),
                }
            }
        }
        let mut sql = format!("SELECT * FROM {}", self.fdf.table);
        if !conditions.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conditions.join(" AND "));
        }
        let mut page = format!("<H1>{} — results</H1>\n", escape_text(&self.fdf.table));
        let mut conn = self.db.connect();
        match conn.execute(&sql) {
            Ok(ExecResult::Rows(rs)) => {
                let mut table = TableBuilder::new(&rs.columns);
                for row in &rs.rows {
                    let cells: Vec<String> = row.iter().map(|v| v.to_display_string()).collect();
                    table.push_row(&cells);
                }
                page.push_str(&table.finish());
            }
            Ok(_) => page.push_str("<P>OK</P>\n"),
            Err(e) => page.push_str(&format!(
                "<P><B>SQL error {}</B>: {}</P>\n",
                e.code.0,
                escape_text(&e.message)
            )),
        }
        page
    }

    fn authored_artifact(&self) -> Artifact {
        Artifact {
            kind: "nothing authored (FDF generated from schema)",
            text: self.fdf_text,
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            native_html_forms: false,
            native_sql: false,
            custom_report_layout: false,
            conditional_where: true, // constraints appear only when filled...
            multi_statement: false,
            no_procedural_code: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_workload::UrlDirectory;

    fn app() -> WdbUrlQuery {
        WdbUrlQuery::new(UrlDirectory::generate(100, 11).into_database())
    }

    #[test]
    fn fdf_generated_from_schema() {
        let app = app();
        let fdf = app.generated_fdf();
        assert!(fdf.contains("TABLE urldb"));
        assert!(fdf.contains("FIELD url VARCHAR"));
        assert!(fdf.contains("FIELD title VARCHAR"));
        assert!(fdf.contains("FIELD description VARCHAR"));
        // And the developer authored zero bytes.
        assert_eq!(app.authored_artifact().bytes(), 0);
    }

    #[test]
    fn form_has_one_input_per_column() {
        let page = app().input_page();
        assert_eq!(page.matches("<INPUT TYPE=\"text\"").count(), 3);
        assert!(dbgw_html::check_balanced(&page).is_ok());
    }

    #[test]
    fn constraints_only_for_filled_fields() {
        let app = app();
        // WDB can only do prefix LIKE, so search for a title prefix present
        // in the generated data by probing the db first.
        let mut conn = app.db.connect();
        let r = conn.execute("SELECT title FROM urldb LIMIT 1").unwrap();
        let ExecResult::Rows(rs) = r else { panic!() };
        let title = rs.rows[0][0].to_display_string();
        let prefix: String = title.chars().take(2).collect();
        let page = app.report_page(&QueryString::from_pairs([("title", prefix.as_str())]));
        assert!(page.contains("<TABLE BORDER=1>"));
        assert!(page.contains(&title));
    }

    #[test]
    fn empty_submission_lists_everything() {
        let app = app();
        let page = app.report_page(&QueryString::new());
        // 100 data rows + 1 header row.
        assert_eq!(page.matches("<TR>").count(), 101);
    }
}
