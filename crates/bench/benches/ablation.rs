//! E9 — ablations of the design choices DESIGN.md calls out.
//!
//! * **Macro caching**: the gateway parses each macro once and reuses the
//!   AST; the 1996 CGI model re-read and re-parsed the file per request
//!   (each request was a fresh process). How much does the cache buy?
//! * **Value escaping**: HTML-escaping the system report variables is our
//!   deliberate modernization. What does it cost?
//! * **Index ablation**: the same gateway request with and without the
//!   title index behind the LIKE.

use dbgw_baselines::URLQUERY_MACRO;
use dbgw_cgi::MiniSqlDatabase;
use dbgw_core::{parse_macro, Engine, EngineConfig, Mode};
use dbgw_testkit::bench::Suite;
use dbgw_workload::UrlDirectory;
use std::hint::black_box;

fn inputs() -> Vec<(String, String)> {
    [
        ("SEARCH", "ib"),
        ("USE_URL", "yes"),
        ("USE_TITLE", "yes"),
        ("DBFIELDS", "title"),
    ]
    .iter()
    .map(|(a, b)| (a.to_string(), b.to_string()))
    .collect()
}

fn main() {
    let mut suite = Suite::new("ablation");

    {
        let db = UrlDirectory::generate(1_000, 1996).into_database();
        let engine = Engine::new();
        let vars = inputs();
        let cached = parse_macro(URLQUERY_MACRO).unwrap();
        let mut group = suite.group("E9_macro_cache");
        group.sample_size(30);
        group.bench("cached_ast", || {
            let mut conn = MiniSqlDatabase::connect(&db);
            black_box(
                engine
                    .process(&cached, Mode::Report, &vars, &mut conn)
                    .unwrap(),
            )
        });
        group.bench("parse_per_request", || {
            // The CGI fork/exec model: read + parse + process per request.
            let mac = parse_macro(black_box(URLQUERY_MACRO)).unwrap();
            let mut conn = MiniSqlDatabase::connect(&db);
            black_box(
                engine
                    .process(&mac, Mode::Report, &vars, &mut conn)
                    .unwrap(),
            )
        });
    }

    {
        let db = UrlDirectory::generate(5_000, 1996).into_database();
        let mac = parse_macro(URLQUERY_MACRO).unwrap();
        let vars = inputs();
        let mut group = suite.group("E9_value_escaping");
        group.sample_size(30);
        for (label, escape) in [("escaped", true), ("raw_1996", false)] {
            let engine = Engine::with_config(EngineConfig {
                escape_values: escape,
                ..EngineConfig::default()
            });
            group.bench(label, || {
                let mut conn = MiniSqlDatabase::connect(&db);
                black_box(
                    engine
                        .process(&mac, Mode::Report, &vars, &mut conn)
                        .unwrap(),
                )
            });
        }
    }

    {
        // The urlquery WHERE is '%ib%' (contains): index can't help there, so
        // probe the prefix-searchable variant the shop app uses.
        let mac = parse_macro(
            "%SQL{ SELECT product_name FROM orders WHERE product_name LIKE '$(P)%' %}\n\
             %HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let vars = vec![("P".to_string(), "bike".to_string())];
        let engine = Engine::new();
        let mut group = suite.group("E9_index_on_off");
        group.sample_size(30);
        for (label, indexed) in [("indexed", true), ("no_index", false)] {
            let shop = dbgw_workload::shop::Shop::generate(500, 6, 3);
            let db = shop.into_database();
            if !indexed {
                let mut conn = db.connect();
                conn.execute("DROP INDEX orders_product").unwrap();
            }
            group.bench(label, || {
                let mut conn = MiniSqlDatabase::connect(&db);
                black_box(
                    engine
                        .process(&mac, Mode::Report, &vars, &mut conn)
                        .unwrap(),
                )
            });
        }
    }

    suite.finish();
}
