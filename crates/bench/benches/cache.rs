//! E10 — result-cache payoff.
//!
//! Two questions, matching the cache's two acceptance criteria:
//!
//! 1. **Warm vs cold latency.** The same selective SELECT against the same
//!    data, executed cold (caching disabled, full scan every time) and warm
//!    (cache enabled, primed). The warm path must be at least 5× faster —
//!    that gap is the entire point of materializing result sets. The ratio
//!    lands in BENCH_JSON as `cache_warm_speedup`, and the bench *asserts*
//!    the 5× floor so a regression fails the run instead of drifting.
//!
//! 2. **Skewed-workload hit ratio.** A Zipf(1.1)-distributed stream over 200
//!    distinct queries, the classic web-directory access pattern: a few
//!    popular pages draw most traffic, so even a result cache far smaller
//!    than the query space should serve the bulk of requests. Reported as
//!    `cache_zipf_hit_ratio`.

use dbgw_cache::CacheConfig;
use dbgw_testkit::bench::Suite;
use dbgw_testkit::rng::Rng;
use dbgw_workload::{UrlDirectory, Zipf};
use minisql::{Database, ExecResult};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 5_000;
const QUERY: &str =
    "SELECT url, title FROM urldb WHERE title LIKE '%a%' ORDER BY url FETCH FIRST 20 ROWS ONLY";

fn build(config: &CacheConfig) -> Database {
    let db = Database::with_cache_config(config, Arc::new(dbgw_obs::StdClock::new()));
    UrlDirectory::generate(ROWS, 1996).load(&db).unwrap();
    db
}

/// Mean nanoseconds per execution of `sql` over `iters` runs.
fn time_per_exec(db: &Database, sql: &str, iters: u32) -> f64 {
    let mut conn = db.connect();
    let start = Instant::now();
    for _ in 0..iters {
        let result = conn.execute(black_box(sql)).unwrap();
        assert!(matches!(result, ExecResult::Rows(_)));
        black_box(result);
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let iters: u32 = if quick { 20 } else { 200 };

    let mut suite = Suite::new("cache");
    {
        let mut group = suite.group("E10_warm_vs_cold");
        group.sample_size(if quick { 5 } else { 20 });

        let cold_db = build(&CacheConfig::disabled());
        group.bench("cold_select", || {
            let mut conn = cold_db.connect();
            black_box(conn.execute(black_box(QUERY)).unwrap())
        });

        let warm_db = build(&CacheConfig::default());
        warm_db.connect().execute(QUERY).unwrap(); // prime
        group.bench("warm_hit", || {
            let mut conn = warm_db.connect();
            black_box(conn.execute(black_box(QUERY)).unwrap())
        });
    }

    // The acceptance ratio, measured head-to-head with identical loops so
    // harness overhead cancels out.
    let cold_db = build(&CacheConfig::disabled());
    let warm_db = build(&CacheConfig::default());
    warm_db.connect().execute(QUERY).unwrap(); // prime
    let cold_ns = time_per_exec(&cold_db, QUERY, iters);
    let warm_ns = time_per_exec(&warm_db, QUERY, iters);
    let stats = warm_db.cache_stats().unwrap();
    assert!(
        stats.results.hits >= u64::from(iters),
        "warm loop must be served from the cache: {stats:?}"
    );
    let speedup = cold_ns / warm_ns;
    suite.record_metric("cache_cold_ns_per_exec", cold_ns);
    suite.record_metric("cache_warm_ns_per_exec", warm_ns);
    suite.record_metric("cache_warm_speedup", speedup);
    assert!(
        speedup >= 5.0,
        "warm cache hit must be at least 5x faster than cold execution \
         (cold {cold_ns:.0} ns, warm {warm_ns:.0} ns, speedup {speedup:.1}x)"
    );

    // Zipf(1.1) over 200 distinct queries: the hot head should dominate.
    let zipf_db = build(&CacheConfig::default());
    let zipf = Zipf::new(200, 1.1);
    let mut rng = Rng::new(0x1996_0806);
    let stream = if quick { 500 } else { 5_000 };
    let mut conn = zipf_db.connect();
    for _ in 0..stream {
        let rank = zipf.sample(&mut rng);
        let sql = format!(
            "SELECT url, title FROM urldb WHERE url LIKE '%{rank}%' FETCH FIRST 5 ROWS ONLY"
        );
        black_box(conn.execute(&sql).unwrap());
    }
    let stats = zipf_db.cache_stats().unwrap();
    let total = stats.results.hits + stats.results.misses;
    let ratio = stats.results.hits as f64 / total as f64;
    suite.record_metric("cache_zipf_distinct_queries", 200.0);
    suite.record_metric("cache_zipf_hit_ratio", ratio);
    suite.finish();
    println!(
        "# cache: speedup {speedup:.1}x, zipf hit ratio {:.1}% over {stream} requests",
        ratio * 100.0
    );
}
