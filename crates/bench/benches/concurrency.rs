//! E7 — gateway throughput under concurrency.
//!
//! The paper motivates the system with the Web's "tens of millions of users";
//! the 1996 deployment scaled by forking a CGI process per request. Our
//! in-process gateway handles requests on threads against the shared
//! catalog RwLock. Series: requests/second with 1–8 worker threads over a
//! Zipf-skewed mix of 90% report (read) and 10% guestbook-style writes.
//!
//! A second section drives the real worker-pool HTTP server over sockets
//! and records its throughput and p99 latency as BENCH_JSON metrics.

use dbgw_baselines::URLQUERY_MACRO;
use dbgw_cgi::{CgiRequest, Gateway, HttpClient, HttpServer, ServerConfig};
use dbgw_testkit::bench::{Suite, Throughput};
use dbgw_testkit::Rng;
use dbgw_workload::{UrlDirectory, Zipf};
use std::sync::Arc;
use std::time::Instant;

const REQUESTS_PER_ITER: usize = 200;

fn build_gateway() -> Arc<Gateway> {
    let db = minisql::Database::new();
    UrlDirectory::generate(2_000, 1996).load(&db).unwrap();
    db.run_script("CREATE TABLE guest (name VARCHAR(40) NOT NULL, message VARCHAR(200))")
        .unwrap();
    let gw = Gateway::new(db);
    gw.add_macro("urlquery.d2w", URLQUERY_MACRO).unwrap();
    gw.add_macro(
        "sign.d2w",
        "%SQL{ INSERT INTO guest (name, message) VALUES ('$(NAME)', 'hi') %}\n\
         %HTML_REPORT{signed%EXEC_SQL%}",
    )
    .unwrap();
    Arc::new(gw)
}

/// The request mix: mostly searches with Zipf-popular terms, some writes.
fn request(rng: &mut Rng, zipf: &Zipf, terms: &[&str]) -> CgiRequest {
    if rng.gen_bool(0.9) {
        let term = terms[zipf.sample(rng) % terms.len()];
        CgiRequest::get(
            "/urlquery.d2w/report",
            &format!("SEARCH={term}&USE_TITLE=yes&DBFIELDS=title"),
        )
    } else {
        CgiRequest::get(
            "/sign.d2w/report",
            &format!("NAME=u{}", rng.next_u32() as u16),
        )
    }
}

/// Drive the worker-pool HTTP server end to end: `clients` threads each send
/// `per_client` GETs over real sockets. Returns (requests/second, p99 ms).
fn pool_run(clients: usize, per_client: usize) -> (f64, f64) {
    let db = minisql::Database::new();
    UrlDirectory::generate(1_000, 1996).load(&db).unwrap();
    let gw = Gateway::new(db);
    gw.add_macro("urlquery.d2w", URLQUERY_MACRO).unwrap();
    let config = ServerConfig {
        workers: 4,
        queue: 256,
        ..ServerConfig::default()
    };
    let server = HttpServer::start_with_config(gw, 0, config).unwrap();
    let addr = server.addr();

    let start = Instant::now();
    let mut latencies_ns: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..clients {
            handles.push(scope.spawn(move || {
                let client = HttpClient::new(addr);
                let mut samples = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    let resp = client
                        .get("/cgi-bin/db2www/urlquery.d2w/report?SEARCH=ib&USE_TITLE=yes")
                        .unwrap();
                    assert_eq!(resp.status, 200);
                    samples.push(t.elapsed().as_nanos() as u64);
                }
                samples
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown();

    latencies_ns.sort_unstable();
    let total = latencies_ns.len();
    let p99 = latencies_ns[(total * 99 / 100).min(total - 1)] as f64 / 1e6;
    ((total as f64) / elapsed, p99)
}

fn main() {
    let gateway = build_gateway();
    let terms = ["ib", "web", "net", "lab", "arch", "zzz"];
    let mut suite = Suite::new("concurrency");
    {
        let mut group = suite.group("E7_throughput");
        group.sample_size(10);
        group.throughput(Throughput::Elements(REQUESTS_PER_ITER as u64));
        for threads in [1usize, 2, 4, 8] {
            group.bench(&threads.to_string(), || {
                let per_thread = REQUESTS_PER_ITER / threads;
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let gw = Arc::clone(&gateway);
                        scope.spawn(move || {
                            let mut rng = dbgw_workload::rng(t as u64 + 1);
                            let zipf = Zipf::new(terms.len(), 1.0);
                            for _ in 0..per_thread {
                                let req = request(&mut rng, &zipf, &terms);
                                let resp = gw.handle(&req);
                                assert_eq!(resp.status, 200);
                            }
                        });
                    }
                });
            });
        }
    }
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let (rps, p99_ms) = if quick {
        pool_run(4, 10)
    } else {
        pool_run(8, 50)
    };
    suite.record_metric("pool_throughput_rps", rps);
    suite.record_metric("pool_p99_latency_ms", p99_ms);
    suite.finish();
}
