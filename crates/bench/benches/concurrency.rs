//! E7 / E12 — throughput under concurrency.
//!
//! The paper motivates the system with the Web's "tens of millions of users";
//! the 1996 deployment scaled by forking a CGI process per request. Our
//! in-process gateway handles requests on threads against the snapshot-read
//! engine (DESIGN.md §11): SELECTs pin an immutable snapshot and run with no
//! lock held, writers serialize per table through short latches.
//!
//! Three sections:
//!
//! * **E12_engine** — the scaling proof for the snapshot engine itself:
//!   mixed Zipf point reads (90%) and single-row UPDATEs (10%), plus a
//!   pure-read series, at 1/2/4/8 threads straight against `Database`. The
//!   read-scaling floor is asserted here (core-scaled — see
//!   [`read_scaling_floor`] — so a 1-core CI box gates on "threads don't
//!   collapse throughput" while a many-core box gates on real parallelism).
//! * **E7_throughput** — requests/second through the full gateway with 1–8
//!   worker threads over a Zipf-skewed 90/10 report/sign mix.
//! * **pool** — the real worker-pool HTTP server over sockets, recording
//!   throughput and p99 latency as BENCH_JSON metrics.

use dbgw_baselines::URLQUERY_MACRO;
use dbgw_cgi::{CgiRequest, Gateway, HttpClient, HttpServer, ServerConfig};
use dbgw_testkit::bench::{Suite, Throughput};
use dbgw_testkit::Rng;
use dbgw_workload::{UrlDirectory, Zipf};
use minisql::{Database, Value};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const REQUESTS_PER_ITER: usize = 200;

// ---------------------------------------------------------------------------
// E12: the snapshot engine under mixed read/write load
// ---------------------------------------------------------------------------

const HOT_ROWS: usize = 1_024;

/// A hot table the Zipf workload hammers: 1k rows, point-indexed key.
fn engine_db() -> Database {
    let db = Database::without_cache();
    db.run_script("CREATE TABLE hot (k INTEGER, v INTEGER); CREATE INDEX hot_k ON hot (k)")
        .unwrap();
    let mut conn = db.connect();
    for k in 0..HOT_ROWS as i64 {
        conn.execute_with_params(
            "INSERT INTO hot VALUES (?, ?)",
            &[Value::Int(k), Value::Int(0)],
        )
        .unwrap();
    }
    db
}

/// Run `threads` workers, each issuing `ops_per_thread` statements —
/// `write_pct`% single-row UPDATEs, the rest indexed point SELECTs, keys
/// Zipf-skewed so readers and writers collide on the same hot rows.
/// Returns aggregate statements/second.
fn engine_run(db: &Database, threads: usize, ops_per_thread: usize, write_pct: u32) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = db.clone();
            scope.spawn(move || {
                let mut conn = db.connect();
                let mut rng = dbgw_workload::rng(t as u64 + 0x5EED);
                let zipf = Zipf::new(HOT_ROWS, 1.0);
                for _ in 0..ops_per_thread {
                    let k = (zipf.sample(&mut rng) % HOT_ROWS) as i64;
                    if rng.gen_range(0u32..100) < write_pct {
                        conn.execute_with_params(
                            "UPDATE hot SET v = v + 1 WHERE k = ?",
                            &[Value::Int(k)],
                        )
                        .unwrap();
                    } else {
                        black_box(
                            conn.execute_with_params(
                                "SELECT v FROM hot WHERE k = ?",
                                &[Value::Int(k)],
                            )
                            .unwrap(),
                        );
                    }
                }
            });
        }
    });
    (threads * ops_per_thread) as f64 / start.elapsed().as_secs_f64()
}

/// Best-of-N statements/second for one (threads, mix) point.
fn engine_series(db: &Database, threads: usize, ops_per_thread: usize, write_pct: u32) -> f64 {
    let samples = if quick_mode() { 2 } else { 4 };
    (0..samples)
        .map(|_| engine_run(db, threads, ops_per_thread, write_pct))
        .fold(0.0f64, f64::max)
}

/// The honest scaling gate. Snapshot reads share no lock, so on a machine
/// with enough cores 8 reader threads must deliver multiples of one
/// thread's throughput; on a starved box the most the hardware can prove is
/// that adding threads does not collapse it. Floors by available cores:
/// ≥8 → 4×, ≥4 → 2×, ≥2 → 1.3×, 1 → 0.5× (threads may only cost the
/// scheduling overhead, never serialize behind a global lock).
fn read_scaling_floor() -> f64 {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 8 {
        4.0
    } else if cores >= 4 {
        2.0
    } else if cores >= 2 {
        1.3
    } else {
        0.5
    }
}

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn build_gateway() -> Arc<Gateway> {
    let db = minisql::Database::new();
    UrlDirectory::generate(2_000, 1996).load(&db).unwrap();
    db.run_script("CREATE TABLE guest (name VARCHAR(40) NOT NULL, message VARCHAR(200))")
        .unwrap();
    let gw = Gateway::new(db);
    gw.add_macro("urlquery.d2w", URLQUERY_MACRO).unwrap();
    gw.add_macro(
        "sign.d2w",
        "%SQL{ INSERT INTO guest (name, message) VALUES ('$(NAME)', 'hi') %}\n\
         %HTML_REPORT{signed%EXEC_SQL%}",
    )
    .unwrap();
    Arc::new(gw)
}

/// The request mix: mostly searches with Zipf-popular terms, some writes.
fn request(rng: &mut Rng, zipf: &Zipf, terms: &[&str]) -> CgiRequest {
    if rng.gen_bool(0.9) {
        let term = terms[zipf.sample(rng) % terms.len()];
        CgiRequest::get(
            "/urlquery.d2w/report",
            &format!("SEARCH={term}&USE_TITLE=yes&DBFIELDS=title"),
        )
    } else {
        CgiRequest::get(
            "/sign.d2w/report",
            &format!("NAME=u{}", rng.next_u32() as u16),
        )
    }
}

/// Drive the worker-pool HTTP server end to end: `clients` threads each send
/// `per_client` GETs over real sockets. Returns (requests/second, p99 ms).
fn pool_run(clients: usize, per_client: usize) -> (f64, f64) {
    let db = minisql::Database::new();
    UrlDirectory::generate(1_000, 1996).load(&db).unwrap();
    let gw = Gateway::new(db);
    gw.add_macro("urlquery.d2w", URLQUERY_MACRO).unwrap();
    let config = ServerConfig {
        workers: 4,
        queue: 256,
        ..ServerConfig::default()
    };
    let server = HttpServer::start_with_config(gw, 0, config).unwrap();
    let addr = server.addr();

    let start = Instant::now();
    let mut latencies_ns: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..clients {
            handles.push(scope.spawn(move || {
                let client = HttpClient::new(addr);
                let mut samples = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    let resp = client
                        .get("/cgi-bin/db2www/urlquery.d2w/report?SEARCH=ib&USE_TITLE=yes")
                        .unwrap();
                    assert_eq!(resp.status, 200);
                    samples.push(t.elapsed().as_nanos() as u64);
                }
                samples
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown();

    latencies_ns.sort_unstable();
    let total = latencies_ns.len();
    let p99 = latencies_ns[(total * 99 / 100).min(total - 1)] as f64 / 1e6;
    ((total as f64) / elapsed, p99)
}

fn main() {
    let gateway = build_gateway();
    let terms = ["ib", "web", "net", "lab", "arch", "zzz"];
    let mut suite = Suite::new("concurrency");

    // E12: the engine itself. Mixed 90/10 series is the recorded headline;
    // the pure-read series carries the asserted scaling gate.
    {
        let db = engine_db();
        let ops = if quick_mode() { 400 } else { 2_000 };
        let mut read_ops = [0.0f64; 4];
        for (i, threads) in [1usize, 2, 4, 8].into_iter().enumerate() {
            let mixed = engine_series(&db, threads, ops, 10);
            let reads = engine_series(&db, threads, ops, 0);
            read_ops[i] = reads;
            suite.record_metric(&format!("engine_mixed_ops_per_sec_{threads}t"), mixed);
            suite.record_metric(&format!("engine_read_ops_per_sec_{threads}t"), reads);
        }
        let scaling = read_ops[3] / read_ops[0];
        let floor = read_scaling_floor();
        suite.record_metric("engine_read_scaling_8t_over_1t", scaling);
        suite.record_metric("engine_read_scaling_floor", floor);
        assert!(
            scaling >= floor,
            "snapshot-read scaling regressed: 8t/1t = {scaling:.2} < floor {floor:.2} \
             ({} cores)",
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        );
    }
    {
        let mut group = suite.group("E7_throughput");
        group.sample_size(10);
        group.throughput(Throughput::Elements(REQUESTS_PER_ITER as u64));
        for threads in [1usize, 2, 4, 8] {
            group.bench(&threads.to_string(), || {
                let per_thread = REQUESTS_PER_ITER / threads;
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let gw = Arc::clone(&gateway);
                        scope.spawn(move || {
                            let mut rng = dbgw_workload::rng(t as u64 + 1);
                            let zipf = Zipf::new(terms.len(), 1.0);
                            for _ in 0..per_thread {
                                let req = request(&mut rng, &zipf, &terms);
                                let resp = gw.handle(&req);
                                assert_eq!(resp.status, 200);
                            }
                        });
                    }
                });
            });
        }
    }
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let (rps, p99_ms) = if quick {
        pool_run(4, 10)
    } else {
        pool_run(8, 50)
    };
    suite.record_metric("pool_throughput_rps", rps);
    suite.record_metric("pool_p99_latency_ms", p99_ms);
    suite.finish();
}
