//! E3 — end-to-end request latency: the same URL-query application served by
//! all five stacks (§6's comparison, measured instead of argued).
//!
//! Series: stack × database size. Expected shape: raw-CGI is the floor; the
//! macro stack tracks it within a small constant (parse + substitution);
//! GSQL/WDB pay full-table LIKE scans of a different *shape* (single
//! condition / prefix match) so they are not directly comparable on capability
//! — the capability matrix in E8 records what each stack cannot do at all.

use dbgw_baselines::all_stacks;
use dbgw_cgi::QueryString;
use dbgw_testkit::bench::Suite;
use dbgw_workload::UrlDirectory;
use std::hint::black_box;

fn report_inputs() -> QueryString {
    QueryString::from_pairs([
        ("SEARCH", "ib"),
        ("USE_URL", "yes"),
        ("USE_TITLE", "yes"),
        ("DBFIELDS", "title"),
        // For WDB, whose generated form has per-column fields:
        ("title", "I"),
    ])
}

fn main() {
    let mut suite = Suite::new("end_to_end");

    for rows in [100usize, 1_000, 10_000] {
        let db = UrlDirectory::generate(rows, 1996).into_database();
        let stacks = all_stacks(&db);
        let inputs = report_inputs();
        let mut group = suite.group(&format!("E3_report_rows_{rows}"));
        group.sample_size(20);
        for stack in &stacks {
            group.bench(stack.name(), || {
                black_box(stack.report_page(black_box(&inputs)))
            });
        }
    }

    {
        // Input mode has no SQL: this isolates pure page-generation overhead.
        let db = UrlDirectory::generate(100, 1996).into_database();
        let stacks = all_stacks(&db);
        let mut group = suite.group("E3_input_mode");
        for stack in &stacks {
            group.bench(stack.name(), || black_box(stack.input_page()));
        }
    }

    {
        // Hit-fraction sweep on the macro stack: report cost is dominated by
        // the number of rows rendered once the scan is fixed.
        let dir = UrlDirectory::generate(5_000, 1996);
        let db = dir.into_database();
        let stacks = all_stacks(&db);
        let macro_stack = stacks
            .iter()
            .find(|s| s.name() == "db2www-macro")
            .expect("macro stack present");
        let mut group = suite.group("E3_macro_by_selectivity");
        group.sample_size(20);
        for (label, fraction) in [("none", 0.0f64), ("some", 0.2), ("all", 1.0)] {
            let search = dir.search_string(fraction, 7);
            let inputs = QueryString::from_pairs([
                ("SEARCH", search.as_str()),
                ("USE_TITLE", "yes"),
                ("DBFIELDS", "title"),
            ]);
            group.bench(label, || {
                black_box(macro_stack.report_page(black_box(&inputs)))
            });
        }
    }

    suite.finish();
}
