//! E11 — query-executor plan payoff.
//!
//! Measures the planner's four optimizations head-to-head against the
//! baseline executor ([`PlanOptions::baseline`]: full scans, nested-loop
//! joins, full sorts), running `exec::run_select_with_options` directly
//! against a state snapshot so the result cache cannot serve either side.
//!
//! Acceptance floors, asserted here so regressions fail the run:
//!
//! 1. **1k×1k equi-join**: hash join ≥ 10× faster than the nested loop
//!    (`exec_hash_join_speedup`).
//! 2. **Indexed point-lookup join**: predicate pushdown re-enabling the
//!    index probe under a join ≥ 5× faster than the unplanned query
//!    (`exec_indexed_join_speedup`).
//!
//! Also reported (no floor): the pushdown-only ablation with hash joins on
//! both sides, top-k vs full sort at LIMIT 10, and a join scale sweep.

use dbgw_obs::RequestCtx;
use dbgw_testkit::bench::Suite;
use dbgw_testkit::rng::Rng;
use minisql::ast::Statement;
use minisql::exec::run_select_with_options;
use minisql::state::DbState;
use minisql::{Database, PlanOptions, Value};
use std::hint::black_box;
use std::time::Instant;

/// `cust` (id indexed) and `ords` (cust_id indexed), `n` rows each; every
/// order's cust_id hits an existing customer so the equi-join yields n rows.
fn join_db(n: usize) -> DbState {
    let db = Database::new();
    db.run_script(
        "CREATE TABLE cust (id INTEGER, region INTEGER);
         CREATE TABLE ords (cust_id INTEGER, amount INTEGER);
         CREATE INDEX cust_id_idx ON cust (id);
         CREATE INDEX ords_cust_idx ON ords (cust_id)",
    )
    .unwrap();
    let mut rng = Rng::new(0x1996_0206);
    let mut conn = db.connect();
    for i in 0..n {
        conn.execute_with_params(
            "INSERT INTO cust VALUES (?, ?)",
            &[
                Value::Int(i as i64),
                Value::Int((rng.next_u64() % 8) as i64),
            ],
        )
        .unwrap();
    }
    for _ in 0..n {
        conn.execute_with_params(
            "INSERT INTO ords VALUES (?, ?)",
            &[
                Value::Int((rng.next_u64() % n as u64) as i64),
                Value::Int((rng.next_u64() % 500) as i64),
            ],
        )
        .unwrap();
    }
    db.snapshot()
}

fn parse_select(sql: &str) -> minisql::ast::Select {
    match minisql::parse(sql).unwrap() {
        Statement::Select(s) => s,
        _ => panic!("not a select: {sql}"),
    }
}

/// Mean nanoseconds per execution of `sql` under `opts`.
fn time_per_exec(state: &DbState, sql: &str, opts: &PlanOptions, iters: u32) -> f64 {
    let sel = parse_select(sql);
    let ctx = RequestCtx::unbounded();
    let start = Instant::now();
    for _ in 0..iters {
        let rows = run_select_with_options(state, black_box(&sel), &[], &ctx, opts).unwrap();
        black_box(rows);
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let n = if quick { 200 } else { 1_000 };
    let st = join_db(n);
    let all = PlanOptions::all();
    let base = PlanOptions::baseline();

    let mut suite = Suite::new("exec_plan");

    // 1. n×n equi-join: hash vs nested loop. One baseline iteration walks
    //    n*n pairs, so keep its iteration count low.
    let join_sql = "SELECT cust.region, ords.amount FROM cust \
                    JOIN ords ON cust.id = ords.cust_id";
    let hash_ns = time_per_exec(&st, join_sql, &all, if quick { 10 } else { 40 });
    let nested_ns = time_per_exec(&st, join_sql, &base, if quick { 3 } else { 5 });
    let join_speedup = nested_ns / hash_ns;
    suite.record_metric("exec_join_rows_per_side", n as f64);
    suite.record_metric("exec_hash_join_ns", hash_ns);
    suite.record_metric("exec_nested_join_ns", nested_ns);
    suite.record_metric("exec_hash_join_speedup", join_speedup);
    assert!(
        join_speedup >= 10.0,
        "hash equi-join must be at least 10x the nested loop at {n}x{n} \
         (hash {hash_ns:.0} ns, nested {nested_ns:.0} ns, {join_speedup:.1}x)"
    );

    // 2. Point lookup under a join: pushdown must re-enable the cust.id
    //    index probe even though a join is present.
    let point_sql = "SELECT cust.region, ords.amount FROM cust \
                     JOIN ords ON cust.id = ords.cust_id WHERE cust.id = 500";
    let probe_ns = time_per_exec(&st, point_sql, &all, if quick { 20 } else { 100 });
    let walk_ns = time_per_exec(&st, point_sql, &base, if quick { 3 } else { 5 });
    let point_speedup = walk_ns / probe_ns;
    suite.record_metric("exec_indexed_join_ns", probe_ns);
    suite.record_metric("exec_unplanned_join_ns", walk_ns);
    suite.record_metric("exec_indexed_join_speedup", point_speedup);
    assert!(
        point_speedup >= 5.0,
        "indexed point-lookup join must be at least 5x the unplanned query \
         (probe {probe_ns:.0} ns, walk {walk_ns:.0} ns, {point_speedup:.1}x)"
    );

    // 3. Ablation: pushdown + index paths with hash joins on BOTH sides —
    //    isolates the access-path win from the join-strategy win.
    let hash_only = PlanOptions {
        pushdown: false,
        index_paths: false,
        ..all
    };
    let no_push_ns = time_per_exec(&st, point_sql, &hash_only, if quick { 10 } else { 40 });
    suite.record_metric("exec_pushdown_ablation_ns", no_push_ns);
    suite.record_metric("exec_pushdown_speedup", no_push_ns / probe_ns);

    // 4. Top-k ORDER BY … LIMIT 10 vs a full sort of the join result.
    let topk_sql = "SELECT ords.amount FROM cust JOIN ords ON cust.id = ords.cust_id \
                    ORDER BY ords.amount DESC LIMIT 10";
    let topk_on = time_per_exec(&st, topk_sql, &all, if quick { 10 } else { 40 });
    let topk_off = time_per_exec(
        &st,
        topk_sql,
        &PlanOptions { topk: false, ..all },
        if quick { 10 } else { 40 },
    );
    suite.record_metric("exec_topk_ns", topk_on);
    suite.record_metric("exec_full_sort_ns", topk_off);
    suite.record_metric("exec_topk_speedup", topk_off / topk_on);

    // 5. Scale sweep: hash-join time should grow ~linearly with n.
    if !quick {
        for scale in [250usize, 500, 1_000] {
            let st = join_db(scale);
            let ns = time_per_exec(&st, join_sql, &all, 20);
            suite.record_metric(&format!("exec_hash_join_ns_n{scale}"), ns);
        }
    }

    suite.finish();
    println!(
        "# exec_plan: hash join {join_speedup:.1}x over nested loop at {n}x{n}, \
         indexed point join {point_speedup:.1}x"
    );
}
