//! E16 — the evented HTTP edge: keep-alive multiplexing at scale and
//! streamed time-to-first-byte.
//!
//! Two claims under test (DESIGN.md §15):
//!
//! 1. **Idle connections are nearly free.** Thousands of open keep-alive
//!    connections park in the epoll loop as one fd + one buffer each — no
//!    worker, no thread. With the fleet parked, `/stats` round-trips must
//!    still clear a generous p99 floor, and a reused connection must beat a
//!    fresh connect-per-request round trip.
//!
//! 2. **Streaming decouples TTFB from page size.** On a large report
//!    (100 k rows, pre-materialized so render latency isn't hidden behind
//!    scan time) the buffered edge cannot answer before the full render,
//!    while the chunked edge answers after the first watermark of rows.
//!    The ratio of the two TTFBs is the asserted floor.
//!
//! Full mode holds 10 000 idle connections. The process fd ceiling is
//! 20 000, so a single process cannot own both ends of 10 000 loopback
//! pairs; the bench re-execs itself as a *holder* child process
//! (`HTTP_EDGE_HOLD=addr count`) that opens the client ends and parks,
//! leaving the server process with just its 10 000 accepted sockets.
//! Quick mode scales everything down for CI.

use dbgw_cgi::{
    FnSource, Gateway, HttpClient, HttpConnection, HttpServer, ServerConfig, TraceOptions,
};
use dbgw_core::db::{Database, DbRows, FnDatabase};
use dbgw_testkit::bench::Suite;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// A small gateway for round-trip and idle-fleet measurements.
fn small_gateway() -> Gateway {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
         INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM'),
                                  ('http://www.eso.org', 'ESO');",
    )
    .unwrap();
    let gw = Gateway::new(db);
    gw.add_macro(
        "q.d2w",
        "%SQL{ SELECT url, title FROM urldb ORDER BY title %}\n%HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    gw
}

/// A gateway over a `rows`-row result set, for reports far past the
/// watermark. The rows are pre-materialized and deep-cloned per request —
/// the honest floor for "the result set arrives materialized" — so the
/// TTFB comparison isolates the edge's render path from scan speed.
fn report_gateway(rows: usize) -> Gateway {
    let data: Arc<Vec<Vec<String>>> = Arc::new(
        (0..rows)
            .map(|i| vec![i.to_string(), format!("item {i} {}", "x".repeat(40))])
            .collect(),
    );
    let gw = Gateway::new(FnSource(move || {
        let data = data.clone();
        Box::new(FnDatabase(move |_sql: &str| {
            Ok(DbRows {
                columns: vec!["n".into(), "pad".into()],
                rows: (*data).clone(),
                affected: 0,
            })
        })) as Box<dyn Database + Send>
    }))
    .with_trace(TraceOptions::disabled());
    // The paper's flagship report: a hyperlink list rendered row by row
    // through a %ROW template (variable frames + substitution per row).
    gw.add_macro(
        "big.d2w",
        "%SQL{ SELECT n, pad FROM big\n\
         %SQL_REPORT{<UL>\n\
         %ROW{<LI>#$(ROW_NUM) <A HREF=\"/item/$(V1)\">$(V_pad)</A> ($(VLIST))\n%}\
         </UL>\nTotal $(ROW_NUM) rows.%}\n%}\n\
         %HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    gw
}

/// Child-process mode: open `count` sockets to `addr`, report readiness on
/// stdout, and hold them all open until the parent closes our stdin.
fn run_holder(spec: &str) -> ! {
    let (addr, count) = spec.split_once(' ').expect("HTTP_EDGE_HOLD = 'addr count'");
    let count: usize = count.parse().expect("holder count");
    let mut fleet = Vec::with_capacity(count);
    for i in 0..count {
        fleet.push(TcpStream::connect(addr).unwrap_or_else(|e| {
            panic!("holder: open connection {i}/{count}: {e}");
        }));
    }
    println!("ready {count}");
    let _ = std::io::stdout().flush();
    // Park until the parent is done with us (stdin EOF), then let the
    // process exit drop the whole fleet at once.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    drop(fleet);
    std::process::exit(0);
}

/// Spawn the holder child and wait until its fleet is fully connected.
fn spawn_holder(addr: std::net::SocketAddr, count: usize) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .env("HTTP_EDGE_HOLD", format!("{addr} {count}"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn holder child");
    let mut ready = String::new();
    BufReader::new(child.stdout.take().expect("holder stdout"))
        .read_line(&mut ready)
        .expect("holder readiness");
    assert!(ready.starts_with("ready "), "holder said: {ready:?}");
    child
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Warm the connection once, then measure TTFB and full-response time over
/// `k` requests; returns (median TTFB ms, median full ms, body bytes).
fn measure_report(addr: std::net::SocketAddr, k: usize) -> (f64, f64, usize) {
    let path = "/cgi-bin/db2www/big.d2w/report";
    let mut conn = HttpConnection::open(addr).expect("connect");
    let warm = conn.get(path).expect("warm request");
    assert_eq!(warm.status, 200, "warm request failed: {}", warm.body);
    let body_len = warm.body.len();
    let mut ttfbs = Vec::with_capacity(k);
    let mut fulls = Vec::with_capacity(k);
    for _ in 0..k {
        let started = Instant::now();
        conn.send_get(path).expect("send");
        let (resp, ttfb) = conn.read_response_timed().expect("read");
        let full = started.elapsed();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), body_len, "unstable body size");
        ttfbs.push(ttfb.as_secs_f64() * 1e3);
        fulls.push(full.as_secs_f64() * 1e3);
    }
    (median(&mut ttfbs), median(&mut fulls), body_len)
}

fn main() {
    if let Ok(spec) = std::env::var("HTTP_EDGE_HOLD") {
        run_holder(&spec);
    }
    let mut suite = Suite::new("http_edge");
    let quick = quick_mode();

    // ---- Part 1: a parked fleet of idle keep-alive connections ----------
    let idle_n: usize = if quick { 500 } else { 10_000 };
    let server = HttpServer::start_with_config(
        small_gateway(),
        0,
        ServerConfig {
            // The fleet must stay parked for the whole measurement, and the
            // probe connections must fit above it.
            keepalive: Duration::from_secs(600),
            max_conns: 12_000,
            // The timed reused-connection loop makes far more requests than
            // the default per-connection cap.
            max_requests: 1_000_000,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();

    let mut holder = spawn_holder(addr, idle_n);
    // Give the event loop a tick to accept and park the stragglers.
    std::thread::sleep(Duration::from_millis(300));
    let open = dbgw_obs::metrics().open_connections.get();
    suite.record_metric("http_open_connections", open as f64);
    assert!(
        open >= idle_n as i64,
        "only {open} of {idle_n} connections tracked open"
    );

    // p99 of /stats with the whole fleet parked.
    let samples = if quick { 60 } else { 200 };
    let mut probe = HttpConnection::open(addr).expect("probe connection");
    let mut lat = Vec::with_capacity(samples);
    for _ in 0..samples {
        let started = Instant::now();
        let resp = probe.get("/stats").expect("stats request");
        assert_eq!(resp.status, 200);
        lat.push(started.elapsed().as_secs_f64() * 1e3);
    }
    lat.sort_by(f64::total_cmp);
    let p99 = lat[(samples * 99 / 100).min(samples - 1)];
    suite.record_metric("http_stats_p99_ms", p99);
    assert!(
        p99 < 250.0,
        "/stats p99 {p99:.1} ms with {idle_n} idle connections parked"
    );

    // Reused keep-alive connection vs a fresh connect per request.
    {
        let mut group = suite.group("roundtrip");
        group.bench("fresh_connection", || {
            let resp = HttpClient::new(addr)
                .get("/cgi-bin/db2www/q.d2w/report")
                .expect("fresh get");
            assert_eq!(resp.status, 200);
        });
        let mut reused = HttpConnection::open(addr).expect("reused connection");
        group.bench("reused_connection", move || {
            let resp = reused
                .get("/cgi-bin/db2www/q.d2w/report")
                .expect("reused get");
            assert_eq!(resp.status, 200);
        });
    }
    drop(holder.stdin.take());
    let _ = holder.wait();
    server.shutdown();

    // ---- Part 2: TTFB, streamed vs buffered ------------------------------
    let rows = if quick { 20_000 } else { 100_000 };
    let k = if quick { 3 } else { 5 };
    let streaming = HttpServer::start_with_config(report_gateway(rows), 0, ServerConfig::default())
        .expect("start streaming server");
    let buffered = HttpServer::start_with_config(
        report_gateway(rows),
        0,
        ServerConfig {
            // An unreachable watermark reproduces the pre-streaming edge:
            // the whole page is rendered before the first byte leaves.
            stream_watermark: usize::MAX,
            ..ServerConfig::default()
        },
    )
    .expect("start buffered server");

    let (ttfb_streamed, full_streamed, body_streamed) = measure_report(streaming.addr(), k);
    let (ttfb_buffered, full_buffered, body_buffered) = measure_report(buffered.addr(), k);
    assert_eq!(
        body_streamed, body_buffered,
        "both edges must serve the identical page"
    );
    let speedup = ttfb_buffered / ttfb_streamed.max(1e-6);
    suite.record_metric("http_report_bytes", body_streamed as f64);
    suite.record_metric("http_ttfb_streamed_ms", ttfb_streamed);
    suite.record_metric("http_ttfb_buffered_ms", ttfb_buffered);
    suite.record_metric("http_full_streamed_ms", full_streamed);
    suite.record_metric("http_full_buffered_ms", full_buffered);
    suite.record_metric("http_ttfb_speedup", speedup);
    let floor = if quick { 3.0 } else { 10.0 };
    assert!(
        speedup >= floor,
        "streamed TTFB {ttfb_streamed:.2} ms vs buffered {ttfb_buffered:.2} ms: \
         speedup {speedup:.1}x under the {floor}x floor"
    );
    streaming.shutdown();
    buffered.shutdown();

    suite.finish();
}
