//! E13 — digest + passive-ANALYZE overhead guard.
//!
//! The query-digest table and passive plan capture (slow-log EXPLAIN
//! ANALYZE summaries) sit on the per-statement hot path: every execution
//! pays one digest-text scan, an FNV hash, one sharded store update, and —
//! with passive capture on — a collector install plus two clock reads per
//! operator. The acceptance bar is that the whole observability layer costs
//! **under 5% throughput** on the E11 executor workload (hash equi-join
//! with rotating literals), measured on-vs-off in interleaved min-of-k
//! batches so machine noise cannot fake a pass or a fail.
//!
//! Rotating the parameter keeps the SQL result cache missing (every key is
//! new) while the statement cache hits (constant text) and every execution
//! folds into a *single* digest row — which the run also asserts, as a
//! functional check that masking aggregates the workload's shape.

use dbgw_testkit::bench::Suite;
use dbgw_testkit::rng::Rng;
use minisql::{Database, Value};
use std::hint::black_box;
use std::time::Instant;

/// E11's join schema: `cust` (id indexed) joined to `ords` (cust_id
/// indexed), `n` rows each.
fn join_db(n: usize) -> Database {
    let db = Database::new();
    db.run_script(
        "CREATE TABLE cust (id INTEGER, region INTEGER);
         CREATE TABLE ords (cust_id INTEGER, amount INTEGER);
         CREATE INDEX cust_id_idx ON cust (id);
         CREATE INDEX ords_cust_idx ON ords (cust_id)",
    )
    .unwrap();
    let mut rng = Rng::new(0x1996_0206);
    let mut conn = db.connect();
    for i in 0..n {
        conn.execute_with_params(
            "INSERT INTO cust VALUES (?, ?)",
            &[
                Value::Int(i as i64),
                Value::Int((rng.next_u64() % 8) as i64),
            ],
        )
        .unwrap();
    }
    for _ in 0..n {
        conn.execute_with_params(
            "INSERT INTO ords VALUES (?, ?)",
            &[
                Value::Int((rng.next_u64() % n as u64) as i64),
                Value::Int((rng.next_u64() % 500) as i64),
            ],
        )
        .unwrap();
    }
    db
}

const JOIN_SQL: &str = "SELECT cust.region, ords.amount FROM cust \
                        JOIN ords ON cust.id = ords.cust_id \
                        WHERE ords.amount > ? AND cust.id <> ?";

/// Nanoseconds for one batch of `batch` join queries with rotating
/// parameters (`serial` keeps every result-cache key unique across batches).
fn run_batch(db: &Database, batch: usize, serial: &mut i64) -> f64 {
    let mut conn = db.connect();
    let start = Instant::now();
    for _ in 0..batch {
        *serial += 1;
        let rows = conn
            .execute_with_params(
                black_box(JOIN_SQL),
                &[Value::Int(250), Value::Int(-*serial)],
            )
            .unwrap();
        black_box(rows);
    }
    start.elapsed().as_nanos() as f64 / batch as f64
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    // Quick mode trims repetitions, NOT the table size: at n=200 the join
    // runs ~75 µs and the fixed per-statement cost is a noisy 3-9% of it,
    // which would flake a 5% gate. At n=1000 (~360 µs/query) the same cost
    // measures a stable ~1.5% and the whole measured section stays under a
    // second, so CI pays only the seeding time.
    let n = 1_000;
    let batch = 25;
    let reps = if quick { 25 } else { 61 };
    let store = dbgw_obs::digests();
    // Seed with recording off so the measured join is the only shape in the
    // store and `top_by_calls` below is unambiguous.
    store.set_enabled(false);
    let db = join_db(n);
    let mut serial = 0i64;

    let run_off = |serial: &mut i64| {
        store.set_enabled(false);
        minisql::analyze::set_passive_capture(false);
        run_batch(&db, batch, serial)
    };
    let run_on = |serial: &mut i64| {
        store.set_enabled(true);
        minisql::analyze::set_passive_capture(true);
        run_batch(&db, batch, serial)
    };

    // Paired batches, order alternating per rep. The two halves of a pair
    // run milliseconds apart, so machine drift (co-tenant load, frequency
    // shifts — this often runs on a shared 1-core container) hits both
    // sides almost equally and cancels in the per-pair ratio; alternating
    // which mode goes first cancels any residual within-pair slope; the
    // MEDIAN ratio then shrugs off pairs that straddled a hiccup. A plain
    // min-of-k over unpaired batches measured anywhere from -5% to +15%
    // on the same build; this estimator repeats within ~1 point.
    let mut off_ns = f64::INFINITY;
    let mut on_ns = f64::INFINITY;
    let mut ratios = Vec::with_capacity(reps);
    for rep in 0..reps {
        let (off, on) = if rep % 2 == 0 {
            let off = run_off(&mut serial);
            (off, run_on(&mut serial))
        } else {
            let on = run_on(&mut serial);
            (run_off(&mut serial), on)
        };
        off_ns = off_ns.min(off);
        on_ns = on_ns.min(on);
        ratios.push(on / off);
    }
    // Leave the process defaults on for anything that runs after us.
    store.set_enabled(true);
    minisql::analyze::set_passive_capture(false);

    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;

    // Functional sanity: rotating literals must have folded into ONE digest
    // shape, with every instrumented execution accounted for.
    let top = store.top_by_calls(1);
    let shape = top.first().expect("digest recorded");
    assert!(
        shape
            .text
            .contains("where ords.amount > ? and cust.id <> ?"),
        "unexpected top digest shape: {}",
        shape.text
    );
    assert_eq!(
        shape.calls,
        (reps * batch) as u64,
        "every on-mode execution should fold into the single masked shape"
    );

    let mut suite = Suite::new("obs_overhead");
    suite.record_metric("obs_join_rows_per_side", n as f64);
    suite.record_metric("obs_batch_size", batch as f64);
    suite.record_metric("obs_off_ns_per_query", off_ns);
    suite.record_metric("obs_on_ns_per_query", on_ns);
    suite.record_metric("obs_overhead_pct", overhead_pct);
    suite.record_metric("obs_digest_calls", shape.calls as f64);
    suite.finish();
    println!(
        "# obs_overhead: digests+passive-ANALYZE cost {overhead_pct:.2}% \
         (off {off_ns:.0} ns/query, on {on_ns:.0} ns/query)"
    );
    assert!(
        overhead_pct < 5.0,
        "observability layer must cost under 5% on the E11 join workload \
         (off {off_ns:.0} ns, on {on_ns:.0} ns, {overhead_pct:.2}%)"
    );
}
