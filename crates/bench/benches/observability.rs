//! E9 — observability overhead guard.
//!
//! The instrumentation points (spans, counters) live permanently in the hot
//! paths, so the acceptance bar is: with tracing *off*, an end-to-end gateway
//! request must cost the same as before the instrumentation existed (the
//! no-op path is one thread-local flag read per span plus a handful of
//! relaxed atomic adds). With tracing *on*, every span records timestamps
//! and the macro is re-parsed per request, so a real gap is expected — that
//! gap is the price of a trace, not of shipping the feature.
//!
//! Both modes land in BENCH_JSON, followed by the process metric counters
//! under their Prometheus names (via `Suite::record_metric`).

use dbgw_baselines::URLQUERY_MACRO;
use dbgw_cgi::{Gateway, TraceOptions};
use dbgw_testkit::bench::Suite;
use dbgw_workload::UrlDirectory;
use std::hint::black_box;

fn build_gateway(trace: TraceOptions) -> Gateway {
    let db = minisql::Database::new();
    UrlDirectory::generate(1_000, 1996).load(&db).unwrap();
    let gw = Gateway::new(db).with_trace(trace);
    gw.add_macro("urlquery.d2w", URLQUERY_MACRO).unwrap();
    gw
}

const QUERY: &str = "SEARCH=ib&USE_TITLE=yes&DBFIELDS=title";

fn main() {
    let mut suite = Suite::new("observability");
    {
        let mut group = suite.group("E9_trace_overhead");
        group.sample_size(20);

        let off = build_gateway(TraceOptions::disabled());
        group.bench("trace_off", || {
            let resp = off.get("urlquery.d2w", "report", black_box(QUERY));
            assert_eq!(resp.status, 200);
            black_box(resp)
        });

        // Tracing on: spans record, the macro re-parses per request, and the
        // finished trace is rendered into an HTML comment on every response.
        let on = build_gateway(TraceOptions {
            annotate: true,
            trace_file: None,
            slow_ms: None,
        });
        group.bench("trace_on", || {
            let resp = on.get("urlquery.d2w", "report", black_box(QUERY));
            assert_eq!(resp.status, 200);
            black_box(resp)
        });
    }

    // Snapshot the process counters the run just drove, under the same names
    // the /stats Prometheus dump uses.
    let m = dbgw_obs::metrics();
    for (name, value) in [
        ("dbgw_requests_total", m.requests.get()),
        ("dbgw_macro_parses_total", m.macro_parses.get()),
        ("dbgw_substitutions_total", m.substitutions.get()),
        ("dbgw_sql_statements_total", m.sql_statements.get()),
        ("dbgw_rows_rendered_total", m.rows_rendered.get()),
        ("dbgw_traces_recorded_total", m.traces_recorded.get()),
    ] {
        suite.record_metric(name, value as f64);
    }
    suite.finish();
}
