//! E1 — macro processing cost: parse time vs macro size and section count.
//!
//! The paper claims the gateway adds negligible engine overhead over writing
//! a CGI program by hand; parsing the macro file on every request is the
//! first component of that overhead. Series: parse throughput as the number
//! of SQL sections grows (fixed HTML) and as the HTML payload grows (fixed
//! sections).

use dbgw_bench::synthetic_macro;
use dbgw_core::parse_macro;
use dbgw_testkit::bench::{Suite, Throughput};
use std::hint::black_box;

fn main() {
    let mut suite = Suite::new("parse_macro");

    {
        let mut group = suite.group("E1_parse_by_sections");
        for sections in [1usize, 4, 16, 64] {
            let src = synthetic_macro(sections, 2048);
            group.throughput(Throughput::Bytes(src.len() as u64));
            group.bench(&sections.to_string(), || {
                parse_macro(black_box(&src)).unwrap()
            });
        }
    }

    {
        let mut group = suite.group("E1_parse_by_html_bytes");
        for kib in [1usize, 16, 64, 256] {
            let src = synthetic_macro(4, kib * 1024);
            group.throughput(Throughput::Bytes(src.len() as u64));
            group.bench(&kib.to_string(), || parse_macro(black_box(&src)).unwrap());
        }
    }

    {
        // The actual Appendix A application macro: the realistic unit of work.
        let mut group = suite.group("E1_parse_appendix_a");
        group.bench("appendix_a", || {
            parse_macro(black_box(dbgw_baselines::URLQUERY_MACRO)).unwrap()
        });
    }

    suite.finish();
}
