//! E1 — macro processing cost: parse time vs macro size and section count.
//!
//! The paper claims the gateway adds negligible engine overhead over writing
//! a CGI program by hand; parsing the macro file on every request is the
//! first component of that overhead. Series: parse throughput as the number
//! of SQL sections grows (fixed HTML) and as the HTML payload grows (fixed
//! sections).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbgw_bench::synthetic_macro;
use dbgw_core::parse_macro;
use std::hint::black_box;

fn bench_sections(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_parse_by_sections");
    for sections in [1usize, 4, 16, 64] {
        let src = synthetic_macro(sections, 2048);
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(sections), &src, |b, src| {
            b.iter(|| parse_macro(black_box(src)).unwrap());
        });
    }
    group.finish();
}

fn bench_html_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_parse_by_html_bytes");
    for kib in [1usize, 16, 64, 256] {
        let src = synthetic_macro(4, kib * 1024);
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(kib), &src, |b, src| {
            b.iter(|| parse_macro(black_box(src)).unwrap());
        });
    }
    group.finish();
}

fn bench_reference_macro(c: &mut Criterion) {
    // The actual Appendix A application macro: the realistic unit of work.
    c.bench_function("E1_parse_appendix_a", |b| {
        b.iter(|| parse_macro(black_box(dbgw_baselines::URLQUERY_MACRO)).unwrap());
    });
}

criterion_group!(
    benches,
    bench_sections,
    bench_html_size,
    bench_reference_macro
);
criterion_main!(benches);
