//! E15 — cost-based join ordering payoff.
//!
//! Measures the statistics-driven join reordering against the same plan with
//! reordering disabled, on a three-table workload built to punish the
//! syntactic order: the query joins a 10-row dimension table last, so the
//! syntactic plan materializes a ~n²/k-row intermediate before shrinking,
//! while the cost-based order starts from the dimension table and never
//! holds more than a few dozen intermediate rows.
//!
//! Acceptance floor, asserted here so a planner regression fails the run:
//!
//! 1. **Stats-ordered 3-way join ≥ 5× the syntactic order**
//!    (`planner_reorder_speedup`).
//!
//! Also reported (no floor): set-operation and window-function throughput —
//! the new operators ride the same release gate so a quadratic regression
//! in either shows up in the committed JSON.
//!
//! The bench also prints the EXPLAIN of the reordered query; CI greps the
//! output for the chosen `JOIN ORDER:` line as an end-to-end smoke that the
//! printed plan is the cost model's, not the syntactic one.

use dbgw_obs::RequestCtx;
use dbgw_testkit::bench::Suite;
use dbgw_testkit::rng::Rng;
use minisql::ast::Statement;
use minisql::exec::{explain_select, run_select_with_options};
use minisql::state::DbState;
use minisql::{Database, PlanOptions, Value};
use std::hint::black_box;
use std::time::Instant;

/// `a` (n rows, k ∈ 0..fanout), `b` (n rows, unique id, k ∈ 0..fanout), and
/// `c` (10 rows referencing distinct b.id values). The syntactic order
/// `a ⋈ b ⋈ c` peaks at n²/fanout intermediate rows; starting from `c`
/// peaks at ~10.
fn star_db(n: usize, fanout: u64) -> DbState {
    let db = Database::new();
    db.run_script(
        "CREATE TABLE a (k INTEGER, v INTEGER);
         CREATE TABLE b (id INTEGER, k INTEGER);
         CREATE TABLE c (b_id INTEGER, v INTEGER)",
    )
    .unwrap();
    let mut rng = Rng::new(0x1996_0615);
    let mut conn = db.connect();
    for i in 0..n {
        conn.execute_with_params(
            "INSERT INTO a VALUES (?, ?)",
            &[
                Value::Int((rng.next_u64() % fanout) as i64),
                Value::Int(i as i64),
            ],
        )
        .unwrap();
        conn.execute_with_params(
            "INSERT INTO b VALUES (?, ?)",
            &[Value::Int(i as i64), Value::Int((i as u64 % fanout) as i64)],
        )
        .unwrap();
    }
    for i in 0..10 {
        conn.execute_with_params(
            "INSERT INTO c VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i * 100)],
        )
        .unwrap();
    }
    db.snapshot()
}

fn parse_select(sql: &str) -> minisql::ast::Select {
    match minisql::parse(sql).unwrap() {
        Statement::Select(s) => s,
        _ => panic!("not a select: {sql}"),
    }
}

/// Mean nanoseconds per execution of `sql` under `opts`.
fn time_per_exec(state: &DbState, sql: &str, opts: &PlanOptions, iters: u32) -> f64 {
    let sel = parse_select(sql);
    let ctx = RequestCtx::unbounded();
    let start = Instant::now();
    for _ in 0..iters {
        let rows = run_select_with_options(state, black_box(&sel), &[], &ctx, opts).unwrap();
        black_box(rows);
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let (n, fanout) = if quick { (300, 6) } else { (1_000, 10) };
    let st = star_db(n, fanout);
    let reordered = PlanOptions::all();
    let syntactic = PlanOptions {
        reorder: false,
        ..PlanOptions::all()
    };

    let mut suite = Suite::new("planner");

    // 1. The headline: the dimension table is written last; only the cost
    //    model can move it first. Both sides use hash joins — the entire
    //    difference is join order.
    let star_sql = "SELECT a.v, b.id, c.v FROM a \
                    JOIN b ON a.k = b.k JOIN c ON b.id = c.b_id";
    let ordered_ns = time_per_exec(&st, star_sql, &reordered, if quick { 20 } else { 50 });
    let syntactic_ns = time_per_exec(&st, star_sql, &syntactic, if quick { 5 } else { 10 });
    let speedup = syntactic_ns / ordered_ns;
    suite.record_metric("planner_join_rows_per_side", n as f64);
    suite.record_metric("planner_reordered_ns", ordered_ns);
    suite.record_metric("planner_syntactic_ns", syntactic_ns);
    suite.record_metric("planner_reorder_speedup", speedup);
    assert!(
        speedup >= 5.0,
        "stats-driven join order must be at least 5x the syntactic order at n={n} \
         (ordered {ordered_ns:.0} ns, syntactic {syntactic_ns:.0} ns, {speedup:.1}x)"
    );

    // EXPLAIN smoke: the printed plan must carry the cost model's order
    // (dimension table first) and its row estimates. CI greps this output.
    let plan = explain_select(&st, &parse_select(star_sql), &[]).unwrap();
    for line in &plan {
        println!("# planner explain: {line}");
    }
    let order = plan
        .iter()
        .find(|l| l.contains("JOIN ORDER:"))
        .expect("reordered plan prints its join order");
    assert!(
        order.contains("JOIN ORDER: c -> b -> a"),
        "cost model must start from the 10-row dimension table: {order}"
    );
    assert!(
        plan.iter().any(|l| l.contains("est rows=")),
        "plan lines must carry cost estimates"
    );

    // 2. Set-operation throughput (no floor): UNION ALL and EXCEPT ALL over
    //    the two n-row tables.
    for (metric, sql) in [
        (
            "planner_union_all_ns",
            "SELECT k, v FROM a UNION ALL SELECT id, k FROM b",
        ),
        (
            "planner_except_all_ns",
            "SELECT k FROM a EXCEPT ALL SELECT k FROM b",
        ),
    ] {
        let ns = time_per_exec(&st, sql, &reordered, if quick { 10 } else { 30 });
        suite.record_metric(metric, ns);
    }

    // 3. Window-function throughput (no floor): partitioned running sum and
    //    rank over the n-row fact table.
    let window_sql = "SELECT k, v, SUM(v) OVER (PARTITION BY k ORDER BY v), \
                      RANK() OVER (PARTITION BY k ORDER BY v) FROM a";
    let window_ns = time_per_exec(&st, window_sql, &reordered, if quick { 10 } else { 30 });
    suite.record_metric("planner_window_ns", window_ns);

    suite.finish();
    println!(
        "# planner: stats-driven order {speedup:.1}x over syntactic at n={n}, \
         window pass {window_ns:.0} ns"
    );
}
