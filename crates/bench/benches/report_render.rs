//! E5 — report generation: custom `%SQL_REPORT` vs the default table, row
//! and column scaling, and `RPT_MAX_ROWS` truncation.
//!
//! Uses a canned database (FnDatabase) so only rendering is measured.

use dbgw_core::db::{DbRows, FnDatabase};
use dbgw_core::{parse_macro, Engine, MacroFile, Mode};
use dbgw_testkit::bench::{Suite, Throughput};
use std::hint::black_box;

fn canned(rows: usize, cols: usize) -> DbRows {
    DbRows {
        columns: (0..cols).map(|c| format!("col{c}")).collect(),
        rows: (0..rows)
            .map(|r| (0..cols).map(|c| format!("value-{r}-{c}")).collect())
            .collect(),
        affected: 0,
    }
}

fn custom_macro(cols: usize) -> MacroFile {
    let cells: String = (1..=cols).map(|i| format!("<TD>$(V{i})</TD>")).collect();
    parse_macro(&format!(
        "%SQL{{ Q\n%SQL_REPORT{{<TABLE>\n%ROW{{<TR>{cells}</TR>\n%}}</TABLE>\n$(ROW_NUM) rows\n%}}\n%}}\n%HTML_REPORT{{%EXEC_SQL%}}"
    ))
    .unwrap()
}

fn default_macro() -> MacroFile {
    parse_macro("%SQL{ Q %}\n%HTML_REPORT{%EXEC_SQL%}").unwrap()
}

fn render(mac: &MacroFile, data: &DbRows, inputs: &[(String, String)]) -> String {
    let mut db = FnDatabase(|_: &str| Ok(data.clone()));
    Engine::new()
        .process(mac, Mode::Report, inputs, &mut db)
        .unwrap()
}

fn main() {
    let mut suite = Suite::new("report_render");

    {
        let mut group = suite.group("E5_rows_4cols");
        group.sample_size(20);
        for rows in [10usize, 100, 1_000, 10_000] {
            let data = canned(rows, 4);
            let custom = custom_macro(4);
            let default = default_macro();
            group.throughput(Throughput::Elements(rows as u64));
            group.bench(&format!("custom_row_block/{rows}"), || {
                black_box(render(&custom, &data, &[]))
            });
            group.bench(&format!("default_table/{rows}"), || {
                black_box(render(&default, &data, &[]))
            });
        }
    }

    {
        let mut group = suite.group("E5_cols_1000rows");
        group.sample_size(20);
        for cols in [2usize, 8, 16] {
            let data = canned(1000, cols);
            let custom = custom_macro(cols);
            group.throughput(Throughput::Elements((1000 * cols) as u64));
            group.bench(&cols.to_string(), || black_box(render(&custom, &data, &[])));
        }
    }

    {
        // 10k rows fetched; printing truncated at RPT_MAX_ROWS. ROW_NUM must
        // still report 10000, so the fetch loop runs fully — cost should drop
        // with the cap but not to zero.
        let data = canned(10_000, 4);
        let custom = custom_macro(4);
        let mut group = suite.group("E5_rpt_max_rows_of_10k");
        group.sample_size(20);
        for cap in [10usize, 100, 1_000, 10_000] {
            let inputs = vec![("RPT_MAX_ROWS".to_string(), cap.to_string())];
            group.bench(&cap.to_string(), || {
                black_box(render(&custom, &data, &inputs))
            });
        }
    }

    suite.finish();
}
