//! E4 — the DBMS substrate in isolation, so gateway overhead in E3 can be
//! attributed correctly.
//!
//! Series: indexed point lookup vs full scan, LIKE prefix (index range) vs
//! LIKE contains (scan), ORDER BY, and insert throughput — each over table
//! sizes 10² … 10⁵.

use dbgw_testkit::bench::{Suite, Throughput};
use dbgw_workload::UrlDirectory;
use minisql::{Database, Value};
use std::hint::black_box;

fn shop_db(rows: usize) -> Database {
    // A simple integer-keyed table with an index on id.
    let db = Database::new();
    db.run_script(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, grp INTEGER, label VARCHAR(40));
         CREATE INDEX items_grp ON items (grp);",
    )
    .unwrap();
    let mut conn = db.connect();
    conn.execute("BEGIN").unwrap();
    for i in 0..rows {
        conn.execute_with_params(
            "INSERT INTO items VALUES (?, ?, ?)",
            &[
                Value::Int(i as i64),
                Value::Int((i % 100) as i64),
                Value::Text(format!("label-{i}")),
            ],
        )
        .unwrap();
    }
    conn.execute("COMMIT").unwrap();
    db
}

fn main() {
    let mut suite = Suite::new("sql_engine");

    {
        let mut group = suite.group("E4_point_lookup");
        for rows in [100usize, 1_000, 10_000, 100_000] {
            let db = shop_db(rows);
            let target = (rows / 2) as i64;
            let mut conn = db.connect();
            group.bench(&format!("indexed/{rows}"), || {
                black_box(
                    conn.execute_with_params(
                        "SELECT label FROM items WHERE id = ?",
                        &[Value::Int(target)],
                    )
                    .unwrap(),
                )
            });
            let mut conn = db.connect();
            group.bench(&format!("scan/{rows}"), || {
                // id + 0 defeats the access-path planner: forced full scan.
                black_box(
                    conn.execute_with_params(
                        "SELECT label FROM items WHERE id + 0 = ?",
                        &[Value::Int(target)],
                    )
                    .unwrap(),
                )
            });
        }
    }

    {
        let mut group = suite.group("E4_like");
        group.sample_size(20);
        for rows in [1_000usize, 10_000, 100_000] {
            let db = UrlDirectory::generate(rows, 3).into_database();
            let mut conn = db.connect();
            group.bench(&format!("prefix_indexed/{rows}"), || {
                black_box(
                    conn.execute("SELECT url FROM urldb WHERE title LIKE 'Ibm%'")
                        .unwrap(),
                )
            });
            let mut conn = db.connect();
            group.bench(&format!("contains_scan/{rows}"), || {
                black_box(
                    conn.execute("SELECT url FROM urldb WHERE title LIKE '%ibm%'")
                        .unwrap(),
                )
            });
        }
    }

    {
        let mut group = suite.group("E4_order_by");
        group.sample_size(20);
        for rows in [1_000usize, 10_000, 100_000] {
            let db = shop_db(rows);
            let mut conn = db.connect();
            group.throughput(Throughput::Elements(rows as u64));
            group.bench(&rows.to_string(), || {
                black_box(
                    conn.execute("SELECT id FROM items ORDER BY label DESC LIMIT 10")
                        .unwrap(),
                )
            });
        }
    }

    {
        let mut group = suite.group("E4_group_by");
        group.sample_size(20);
        for rows in [1_000usize, 10_000, 100_000] {
            let db = shop_db(rows);
            let mut conn = db.connect();
            group.throughput(Throughput::Elements(rows as u64));
            group.bench(&rows.to_string(), || {
                black_box(
                    conn.execute("SELECT grp, COUNT(*), MAX(id) FROM items GROUP BY grp")
                        .unwrap(),
                )
            });
        }
    }

    {
        let mut group = suite.group("E4_insert_1k");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1000));
        group.bench_with_setup(
            "fresh_table",
            || {
                let db = Database::new();
                db.run_script("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(20))")
                    .unwrap();
                db
            },
            |db| {
                let mut conn = db.connect();
                for i in 0..1000i64 {
                    conn.execute_with_params(
                        "INSERT INTO t VALUES (?, ?)",
                        &[Value::Int(i), Value::Text(format!("v{i}"))],
                    )
                    .unwrap();
                }
                black_box(db)
            },
        );
    }

    suite.finish();
}
