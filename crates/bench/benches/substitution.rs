//! E2 — substitution engine scaling: lazy recursive evaluation cost.
//!
//! Series: reference-chain depth (each variable references the next), list
//! variable size (join of k conditional value strings), output size (one
//! variable splatted many times), and the `$$` escape fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbgw_core::ast::DefineStatement;
use dbgw_core::{DenyRunner, Env, Evaluator};
use std::hint::black_box;

fn env_chain(depth: usize) -> Env {
    let mut env = Env::new();
    for i in 0..depth {
        env.apply(&DefineStatement::Simple {
            name: format!("v{i}"),
            value: if i + 1 < depth {
                format!("x$(v{})", i + 1)
            } else {
                "end".into()
            },
        });
    }
    env
}

fn bench_chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_chain_depth");
    for depth in [1usize, 8, 32, 96] {
        let env = env_chain(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &env, |b, env| {
            b.iter(|| {
                let mut ev = Evaluator::new(env, &DenyRunner);
                black_box(ev.value_of("v0").unwrap())
            });
        });
    }
    group.finish();
}

fn bench_list_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_list_elements");
    for k in [10usize, 100, 1000, 10000] {
        let mut env = Env::new();
        env.apply(&DefineStatement::ListDecl {
            name: "L".into(),
            separator: " OR ".into(),
        });
        for i in 0..k {
            env.apply(&DefineStatement::Simple {
                name: "L".into(),
                value: format!("c = {i}"),
            });
        }
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &env, |b, env| {
            b.iter(|| {
                let mut ev = Evaluator::new(env, &DenyRunner);
                black_box(ev.value_of("L").unwrap())
            });
        });
    }
    group.finish();
}

fn bench_template_size(c: &mut Criterion) {
    // Output size scaling: a template with n references to one variable.
    let mut group = c.benchmark_group("E2_references_in_template");
    for n in [10usize, 100, 1000] {
        let mut env = Env::new();
        env.apply(&DefineStatement::Simple {
            name: "X".into(),
            value: "value-of-x".into(),
        });
        let template = "a $(X) b ".repeat(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &template, |b, t| {
            b.iter(|| {
                let mut ev = Evaluator::new(&env, &DenyRunner);
                black_box(ev.substitute(black_box(t)).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_no_references_fast_path(c: &mut Criterion) {
    let env = Env::new();
    let plain = "just a long line of html with no references at all ".repeat(100);
    let escaped = "price $$ (literal) $$(name) ".repeat(100);
    let mut group = c.benchmark_group("E2_plain_text");
    group.throughput(Throughput::Bytes(plain.len() as u64));
    group.bench_function("no_dollars", |b| {
        b.iter(|| {
            let mut ev = Evaluator::new(&env, &DenyRunner);
            black_box(ev.substitute(black_box(&plain)).unwrap())
        });
    });
    group.throughput(Throughput::Bytes(escaped.len() as u64));
    group.bench_function("dollar_escapes", |b| {
        b.iter(|| {
            let mut ev = Evaluator::new(&env, &DenyRunner);
            black_box(ev.substitute(black_box(&escaped)).unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_chain_depth,
    bench_list_join,
    bench_template_size,
    bench_no_references_fast_path
);
criterion_main!(benches);
