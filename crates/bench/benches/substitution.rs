//! E2 — substitution engine scaling: lazy recursive evaluation cost.
//!
//! Series: reference-chain depth (each variable references the next), list
//! variable size (join of k conditional value strings), output size (one
//! variable splatted many times), and the `$$` escape fast path.

use dbgw_core::ast::DefineStatement;
use dbgw_core::{DenyRunner, Env, Evaluator};
use dbgw_testkit::bench::{Suite, Throughput};
use std::hint::black_box;

fn env_chain(depth: usize) -> Env {
    let mut env = Env::new();
    for i in 0..depth {
        env.apply(&DefineStatement::Simple {
            name: format!("v{i}"),
            value: if i + 1 < depth {
                format!("x$(v{})", i + 1)
            } else {
                "end".into()
            },
        });
    }
    env
}

fn main() {
    let mut suite = Suite::new("substitution");

    {
        let mut group = suite.group("E2_chain_depth");
        for depth in [1usize, 8, 32, 96] {
            let env = env_chain(depth);
            group.bench(&depth.to_string(), || {
                let mut ev = Evaluator::new(&env, &DenyRunner);
                black_box(ev.value_of("v0").unwrap())
            });
        }
    }

    {
        let mut group = suite.group("E2_list_elements");
        for k in [10usize, 100, 1000, 10000] {
            let mut env = Env::new();
            env.apply(&DefineStatement::ListDecl {
                name: "L".into(),
                separator: " OR ".into(),
            });
            for i in 0..k {
                env.apply(&DefineStatement::Simple {
                    name: "L".into(),
                    value: format!("c = {i}"),
                });
            }
            group.throughput(Throughput::Elements(k as u64));
            group.bench(&k.to_string(), || {
                let mut ev = Evaluator::new(&env, &DenyRunner);
                black_box(ev.value_of("L").unwrap())
            });
        }
    }

    {
        // Output size scaling: a template with n references to one variable.
        let mut group = suite.group("E2_references_in_template");
        for n in [10usize, 100, 1000] {
            let mut env = Env::new();
            env.apply(&DefineStatement::Simple {
                name: "X".into(),
                value: "value-of-x".into(),
            });
            let template = "a $(X) b ".repeat(n);
            group.throughput(Throughput::Elements(n as u64));
            group.bench(&n.to_string(), || {
                let mut ev = Evaluator::new(&env, &DenyRunner);
                black_box(ev.substitute(black_box(&template)).unwrap())
            });
        }
    }

    {
        let env = Env::new();
        let plain = "just a long line of html with no references at all ".repeat(100);
        let escaped = "price $$ (literal) $$(name) ".repeat(100);
        let mut group = suite.group("E2_plain_text");
        group.throughput(Throughput::Bytes(plain.len() as u64));
        group.bench("no_dollars", || {
            let mut ev = Evaluator::new(&env, &DenyRunner);
            black_box(ev.substitute(black_box(&plain)).unwrap())
        });
        group.throughput(Throughput::Bytes(escaped.len() as u64));
        group.bench("dollar_escapes", || {
            let mut ev = Evaluator::new(&env, &DenyRunner);
            black_box(ev.substitute(black_box(&escaped)).unwrap())
        });
    }

    suite.finish();
}
