//! E6 — §5 transaction modes: auto-commit vs single-transaction for
//! multi-statement macros, plus the cost of rollback on injected failure.

use dbgw_cgi::MiniSqlDatabase;
use dbgw_core::{parse_macro, Engine, EngineConfig, MacroFile, Mode, TxnMode};
use dbgw_testkit::bench::{Suite, Throughput};
use std::hint::black_box;

/// A macro with `n` INSERT statements (one batch signing).
fn insert_macro(n: usize) -> MacroFile {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!(
            "%SQL{{ INSERT INTO log (seq, msg) VALUES ({i}, 'entry $(TAG)') %}}\n"
        ));
    }
    src.push_str("%HTML_REPORT{%EXEC_SQL%}");
    parse_macro(&src).unwrap()
}

fn fresh_db() -> minisql::Database {
    let db = minisql::Database::new();
    db.run_script("CREATE TABLE log (seq INTEGER, msg VARCHAR(60))")
        .unwrap();
    db
}

fn engine(mode: TxnMode) -> Engine<'static> {
    Engine::with_config(EngineConfig {
        txn_mode: mode,
        ..EngineConfig::default()
    })
}

fn main() {
    let mut suite = Suite::new("transactions");

    {
        let mut group = suite.group("E6_batch_inserts");
        group.sample_size(10);
        for n in [1usize, 16, 128, 1024] {
            let mac = insert_macro(n);
            group.throughput(Throughput::Elements(n as u64));
            for (label, mode) in [
                ("auto_commit", TxnMode::AutoCommit),
                ("single_txn", TxnMode::SingleTransaction),
            ] {
                let eng = engine(mode);
                group.bench_with_setup(&format!("{label}/{n}"), fresh_db, |db| {
                    let mut conn = MiniSqlDatabase::connect(&db);
                    let inputs = vec![("TAG".to_string(), "t".to_string())];
                    black_box(eng.process(&mac, Mode::Report, &inputs, &mut conn).unwrap());
                    db
                });
            }
        }
    }

    {
        // n-1 good inserts then one that violates NOT NULL: single-txn pays
        // the undo of everything, auto-commit only skips the last.
        let mut group = suite.group("E6_failure_at_end");
        group.sample_size(10);
        let n = 256usize;
        let mut src = String::new();
        for i in 0..n - 1 {
            src.push_str(&format!(
                "%SQL{{ INSERT INTO strict (seq, msg) VALUES ({i}, 'x') %}}\n"
            ));
        }
        src.push_str("%SQL{ INSERT INTO strict (seq, msg) VALUES (999, NULL) %}\n");
        src.push_str("%HTML_REPORT{%EXEC_SQL%}");
        let mac = parse_macro(&src).unwrap();
        let make_db = || {
            let db = minisql::Database::new();
            db.run_script("CREATE TABLE strict (seq INTEGER, msg VARCHAR(60) NOT NULL)")
                .unwrap();
            db
        };
        for (label, mode, expect_rows) in [
            ("auto_commit_keeps_255", TxnMode::AutoCommit, n - 1),
            ("single_txn_rolls_back_all", TxnMode::SingleTransaction, 0),
        ] {
            let eng = engine(mode);
            group.bench_with_setup(label, make_db, |db| {
                let mut conn = MiniSqlDatabase::connect(&db);
                let page = eng.process(&mac, Mode::Report, &[], &mut conn).unwrap();
                assert!(page.contains("SQL error"));
                assert_eq!(db.table_len("strict").unwrap(), expect_rows);
                black_box(db)
            });
        }
    }

    suite.finish();
}
