//! E14 — the price of durability: WAL on vs off, and what group commit buys.
//!
//! The durable write path (DESIGN.md §13) holds every committing statement
//! until its redo record is fsync-durable. That is the single most expensive
//! thing the engine does per write, and the group-commit daemon exists to
//! amortize it: while one fsync is in flight, every other committer's record
//! queues into the next batch, so N concurrent writers share ~1 fsync
//! instead of paying N.
//!
//! Three series, single-row UPDATE commits against a hot table:
//!
//! * **wal_off** — the in-memory engine (no persistence), the ceiling;
//! * **wal_on** — durable, fsync on, no linger (`DBGW_GROUP_COMMIT_US=0`):
//!   batching only from natural concurrency;
//! * **wal_on_linger** — durable with a 200 µs group-commit window.
//!
//! Each at 1/4/8 writer threads. The asserted floor is the one that proves
//! group commit works at all: at 8 writers with the linger window, the
//! fsync count must stay **below one per commit** (equivalently, >1 records
//! per fsync) — a WAL that fsyncs every commit individually fails here.

use dbgw_testkit::bench::Suite;
use minisql::wal::DurabilityConfig;
use minisql::{Database, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const HOT_ROWS: i64 = 256;

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Scratch dir under the system temp root; caller removes it.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbgw-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One table per writer thread: writers on the *same* table serialize
/// through its latch (held across log → publish), which would hide the
/// group-commit path entirely — per-writer tables let commits actually
/// arrive at the log concurrently, like independent applications would.
fn seed(db: &Database, tables: usize) {
    let mut conn = db.connect();
    for t in 0..tables {
        conn.execute(&format!(
            "CREATE TABLE hot{t} (k INTEGER PRIMARY KEY, v INTEGER)"
        ))
        .unwrap();
        for k in 0..HOT_ROWS {
            conn.execute_with_params(
                &format!("INSERT INTO hot{t} VALUES (?, ?)"),
                &[Value::Int(k), Value::Int(0)],
            )
            .unwrap();
        }
    }
}

fn durable_db(dir: &std::path::Path, group_commit_us: u64) -> Database {
    let config = DurabilityConfig {
        fsync: true,
        group_commit_us,
        // Never checkpoint mid-run: this measures the append path alone.
        checkpoint_bytes: u64::MAX,
    };
    Database::open_with_config(
        dir,
        &config,
        &dbgw_cache::CacheConfig::default(),
        Arc::new(dbgw_obs::StdClock::new()),
    )
    .unwrap()
}

/// `threads` writers, each committing `ops_per_thread` single-row UPDATEs
/// against its own table. Returns aggregate commits/second.
fn run_commits(db: &Database, threads: usize, ops_per_thread: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = db.clone();
            scope.spawn(move || {
                let mut conn = db.connect();
                let sql = format!("UPDATE hot{t} SET v = v + 1 WHERE k = ?");
                for i in 0..ops_per_thread {
                    conn.execute_with_params(&sql, &[Value::Int(i as i64 % HOT_ROWS)])
                        .unwrap();
                }
            });
        }
    });
    (threads * ops_per_thread) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let mut suite = Suite::new("wal");
    let ops = if quick_mode() { 150 } else { 1_500 };
    let threads_series = [1usize, 4, 8];

    // Ceiling: the same workload with no persistence at all.
    {
        let db = Database::new();
        seed(&db, *threads_series.last().unwrap());
        for threads in threads_series {
            let rate = run_commits(&db, threads, ops);
            suite.record_metric(&format!("wal_off_commits_per_sec_{threads}t"), rate);
        }
    }

    // Durable, no linger: batching only from writers colliding naturally.
    for threads in threads_series {
        let dir = scratch(&format!("nolinger-{threads}"));
        let db = durable_db(&dir, 0);
        seed(&db, threads);
        let rate = run_commits(&db, threads, ops);
        suite.record_metric(&format!("wal_on_commits_per_sec_{threads}t"), rate);
        db.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Durable with a 200 µs group-commit window; the 8-writer point carries
    // the asserted batching floor, measured from the global WAL counters.
    let m = dbgw_obs::metrics();
    for threads in threads_series {
        let dir = scratch(&format!("linger-{threads}"));
        let db = durable_db(&dir, 200);
        seed(&db, threads);
        let records_before = m.wal_records.get();
        let fsyncs_before = m.wal_fsyncs.get();
        let rate = run_commits(&db, threads, ops);
        let records = (m.wal_records.get() - records_before) as f64;
        let fsyncs = (m.wal_fsyncs.get() - fsyncs_before).max(1) as f64;
        suite.record_metric(&format!("wal_linger_commits_per_sec_{threads}t"), rate);
        suite.record_metric(
            &format!("wal_records_per_fsync_{threads}t"),
            records / fsyncs,
        );
        if threads == 8 {
            let fsyncs_per_commit = fsyncs / records;
            suite.record_metric("wal_fsyncs_per_commit_8t", fsyncs_per_commit);
            assert!(
                fsyncs_per_commit < 1.0,
                "group commit is not batching: {fsyncs:.0} fsyncs for {records:.0} \
                 commits at 8 writers (want < 1 fsync per commit)"
            );
        }
        db.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    suite.finish();
}
