//! E8 — the ease-of-construction comparison.
//!
//! Prints (a) the §6 capability matrix as measured from the five working
//! stacks and (b) the size of the artifact the application developer had to
//! author for the same URL-query application on each stack — the paper's
//! "new applications must be easy to build, preferably no significant coding
//! effort" claim, quantified. Run with:
//!
//! ```sh
//! cargo run -p dbgw-bench --bin ease_report
//! ```
//!
//! Pass `--json` for machine-readable output (used when regenerating
//! `EXPERIMENTS.md`).

use dbgw_baselines::{all_stacks, UrlQueryApp};
use dbgw_workload::UrlDirectory;

struct StackReport {
    stack: String,
    artifact_kind: String,
    artifact_lines: usize,
    artifact_bytes: usize,
    native_html_forms: bool,
    native_sql: bool,
    custom_report_layout: bool,
    conditional_where: bool,
    multi_statement: bool,
    no_procedural_code: bool,
    capability_score: u32,
}

fn collect() -> Vec<StackReport> {
    let db = UrlDirectory::generate(50, 1996).into_database();
    all_stacks(&db)
        .iter()
        .map(|stack| -> StackReport {
            let stack: &dyn UrlQueryApp = stack.as_ref();
            let artifact = stack.authored_artifact();
            let caps = stack.capabilities();
            StackReport {
                stack: stack.name().to_owned(),
                artifact_kind: artifact.kind.to_owned(),
                artifact_lines: artifact.lines(),
                artifact_bytes: artifact.bytes(),
                native_html_forms: caps.native_html_forms,
                native_sql: caps.native_sql,
                custom_report_layout: caps.custom_report_layout,
                conditional_where: caps.conditional_where,
                multi_statement: caps.multi_statement,
                no_procedural_code: caps.no_procedural_code,
                capability_score: caps.score(),
            }
        })
        .collect()
}

fn main() {
    let reports = collect();
    if std::env::args().any(|a| a == "--json") {
        // Zero-dependency policy: JSON is emitted by hand (field order is
        // stable because the struct is ours).
        print!("[");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                print!(",");
            }
            print!(
                "{{\"stack\":\"{}\",\"artifact_kind\":\"{}\",\"artifact_lines\":{},\
                 \"artifact_bytes\":{},\"capability_score\":{}}}",
                r.stack, r.artifact_kind, r.artifact_lines, r.artifact_bytes, r.capability_score
            );
        }
        println!("]");
        // Second line: the process metric counters that collecting the
        // capability matrix just drove through the gateway, under the same
        // names /stats exposes — so trajectory tooling sees one vocabulary.
        println!(
            "{{\"gateway_metrics\":{}}}",
            dbgw_obs::metrics_json(dbgw_obs::metrics())
        );
        return;
    }

    println!("E8 — ease of construction: the same URL-query application on five stacks\n");
    println!("Authored artifact (what the developer writes):");
    println!("{:<16} {:>6} {:>7}  kind", "stack", "lines", "bytes");
    let rule = "-".repeat(78);
    println!("{rule}");
    for r in &reports {
        println!(
            "{:<16} {:>6} {:>7}  {}",
            r.stack, r.artifact_lines, r.artifact_bytes, r.artifact_kind
        );
    }

    println!("\nCapability matrix (§6 of the paper, measured):");
    println!(
        "{:<16} {:>10} {:>10} {:>13} {:>12} {:>10} {:>8}",
        "stack", "nativeHTML", "nativeSQL", "customReport", "condWHERE", "multiStmt", "noCode"
    );
    let rule = "-".repeat(86);
    println!("{rule}");
    let tick = |b: bool| if b { "yes" } else { "-" };
    for r in &reports {
        println!(
            "{:<16} {:>10} {:>10} {:>13} {:>12} {:>10} {:>8}",
            r.stack,
            tick(r.native_html_forms),
            tick(r.native_sql),
            tick(r.custom_report_layout),
            tick(r.conditional_where),
            tick(r.multi_statement),
            tick(r.no_procedural_code),
        );
    }
    println!(
        "\nReading: the macro stack is the only one with every capability; WDB \
         authors nothing\nbut controls nothing; GSQL authors little and can express \
         little; code stacks author most."
    );
}
