//! Shared helpers for the benchmark harness (see `EXPERIMENTS.md` at the
//! repository root for the experiment index E1–E8).

#![warn(missing_docs)]

use dbgw_core::MacroFile;

/// Build a synthetic macro with `sections` SQL sections and HTML sections of
/// roughly `html_bytes` bytes, for the parser benchmarks (E1).
pub fn synthetic_macro(sections: usize, html_bytes: usize) -> String {
    let mut src = String::new();
    src.push_str("%DEFINE{\n  dbtbl = \"urldb\"\n  %LIST \" OR \" conds\n");
    for i in 0..sections.max(1) {
        src.push_str(&format!(
            "  conds = F{i} ? \"c{i} LIKE '%$(F{i})%'\" : \"\"\n"
        ));
    }
    src.push_str("  where_clause = ? \"WHERE $(conds)\"\n%}\n");
    for i in 0..sections.max(1) {
        src.push_str(&format!(
            "%SQL(s{i}){{ SELECT c{i} FROM $(dbtbl) $(where_clause)\n\
             %SQL_REPORT{{<UL>\n%ROW{{<LI>$(V1)\n%}}</UL>\n%}}\n%}}\n"
        ));
    }
    let filler_line = "<P>Lorem ipsum filler for the nineties web $(dbtbl) page.</P>\n";
    let repeats = html_bytes / filler_line.len() + 1;
    src.push_str("%HTML_INPUT{<FORM ACTION=\"x\"><INPUT NAME=\"F0\"></FORM>\n");
    for _ in 0..repeats / 2 {
        src.push_str(filler_line);
    }
    src.push_str("%}\n%HTML_REPORT{<H1>R</H1>\n");
    for _ in 0..repeats / 2 {
        src.push_str(filler_line);
    }
    for i in 0..sections.max(1) {
        src.push_str(&format!("%EXEC_SQL(s{i})\n"));
    }
    src.push_str("%}\n");
    src
}

/// Parse or panic (bench setup).
pub fn parsed(src: &str) -> MacroFile {
    dbgw_core::parse_macro(src).expect("synthetic macro parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_macros_parse_at_all_sizes() {
        for sections in [1, 4, 16, 64] {
            for bytes in [256, 4096, 65536] {
                let src = synthetic_macro(sections, bytes);
                let mac = parsed(&src);
                assert!(mac.sql_sections().count() >= sections);
            }
        }
    }
}
