//! The `DBGW_CACHE*` environment knobs, parsed once and passed around.

/// Configuration for the caching subsystem.
///
/// Read from the environment with [`CacheConfig::from_env`]:
///
/// | Variable             | Meaning                                   | Default |
/// |----------------------|-------------------------------------------|---------|
/// | `DBGW_CACHE`         | `0` disables every cache layer            | enabled |
/// | `DBGW_CACHE_BYTES`   | total result-cache byte budget            | 4 MiB   |
/// | `DBGW_CACHE_TTL_MS`  | entry time-to-live in ms (`0` = no TTL)   | no TTL  |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch; when false the gateway behaves exactly as if this
    /// subsystem did not exist (`DBGW_CACHE=0`).
    pub enabled: bool,
    /// Total byte budget across all shards of the result cache.
    pub max_bytes: usize,
    /// Optional time-to-live for cached entries, in milliseconds. `None`
    /// means entries live until evicted or invalidated. Correctness never
    /// depends on this: table-version invalidation is exact.
    pub ttl_ms: Option<u64>,
    /// Number of LRU shards (power of two). Each shard gets an equal slice
    /// of `max_bytes` and its own mutex.
    pub shards: usize,
}

/// Default total byte budget for the result cache: 4 MiB.
pub const DEFAULT_CACHE_BYTES: usize = 4 * 1024 * 1024;

/// Default shard count.
pub const DEFAULT_SHARDS: usize = 8;

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            max_bytes: DEFAULT_CACHE_BYTES,
            ttl_ms: None,
            shards: DEFAULT_SHARDS,
        }
    }
}

impl CacheConfig {
    /// A configuration with every cache layer switched off.
    pub fn disabled() -> CacheConfig {
        CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        }
    }

    /// Read the `DBGW_CACHE*` variables from the process environment.
    pub fn from_env() -> CacheConfig {
        Self::from_lookup(|name| std::env::var(name).ok())
    }

    /// Like [`from_env`](CacheConfig::from_env), but with an injectable
    /// variable source so tests can exercise the parsing without mutating
    /// process-global environment state.
    pub fn from_lookup<F>(lookup: F) -> CacheConfig
    where
        F: Fn(&str) -> Option<String>,
    {
        let mut config = CacheConfig::default();
        if let Some(v) = lookup("DBGW_CACHE") {
            config.enabled = v.trim() != "0";
        }
        if let Some(n) = lookup("DBGW_CACHE_BYTES").and_then(|v| v.trim().parse::<usize>().ok()) {
            config.max_bytes = n;
        }
        if let Some(n) = lookup("DBGW_CACHE_TTL_MS").and_then(|v| v.trim().parse::<u64>().ok()) {
            config.ttl_ms = if n == 0 { None } else { Some(n) };
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| (*v).to_owned())
        }
    }

    #[test]
    fn defaults_when_unset() {
        let c = CacheConfig::from_lookup(|_| None);
        assert!(c.enabled);
        assert_eq!(c.max_bytes, DEFAULT_CACHE_BYTES);
        assert_eq!(c.ttl_ms, None);
        assert_eq!(c.shards, DEFAULT_SHARDS);
    }

    #[test]
    fn dbgw_cache_zero_disables() {
        let c = CacheConfig::from_lookup(lookup(&[("DBGW_CACHE", "0")]));
        assert!(!c.enabled);
        let c = CacheConfig::from_lookup(lookup(&[("DBGW_CACHE", "1")]));
        assert!(c.enabled);
    }

    #[test]
    fn bytes_and_ttl_parse() {
        let c = CacheConfig::from_lookup(lookup(&[
            ("DBGW_CACHE_BYTES", "65536"),
            ("DBGW_CACHE_TTL_MS", "1500"),
        ]));
        assert_eq!(c.max_bytes, 65_536);
        assert_eq!(c.ttl_ms, Some(1_500));
    }

    #[test]
    fn zero_ttl_means_no_ttl_and_garbage_is_ignored() {
        let c = CacheConfig::from_lookup(lookup(&[
            ("DBGW_CACHE_TTL_MS", "0"),
            ("DBGW_CACHE_BYTES", "not a number"),
        ]));
        assert_eq!(c.ttl_ms, None);
        assert_eq!(c.max_bytes, DEFAULT_CACHE_BYTES);
    }
}
