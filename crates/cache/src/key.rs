//! Cache-key canonicalization and content hashing.
//!
//! Statement and result-cache keys must treat `SELECT * FROM t` and
//! `select  *  from T` as the same statement while keeping
//! `SELECT 'a  B'` and `SELECT 'a b'` distinct — the whitespace and case
//! inside a string literal are data, not syntax. The normalizer therefore
//! tracks the tokenizer's quoting rules (single-quoted strings with `''`
//! escapes, double-quoted identifiers, `--` line comments) and only rewrites
//! the text between literals.

/// Canonicalize a SQL statement for use as a cache key.
///
/// Outside quotes: ASCII-lowercase, collapse every whitespace run to a
/// single space, strip `--` line comments (they are whitespace to the
/// tokenizer, and must not survive into the key — otherwise
/// `SELECT 1 -- c⏎+1` and `SELECT 1 -- c +1` would collapse to the same
/// key despite meaning different things), and trim the ends.
///
/// Inside quotes: copy verbatim, including the quote characters. Single
/// quotes honour the `''` escape; double-quoted identifiers have no escape
/// (matching the tokenizer). An unterminated literal is copied through to
/// the end — the parse will fail anyway, but the key stays deterministic.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        match c {
            '\'' | '"' => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push(c);
                while let Some(d) = chars.next() {
                    out.push(d);
                    if d == c {
                        // '' inside a single-quoted literal is an escaped
                        // quote, not a terminator.
                        if c == '\'' && chars.peek() == Some(&'\'') {
                            out.push('\'');
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
            }
            '-' if chars.peek() == Some(&'-') => {
                // Line comment: skip to end of line, acts as whitespace.
                for d in chars.by_ref() {
                    if d == '\n' {
                        break;
                    }
                }
                pending_space = true;
            }
            _ if c.is_ascii_whitespace() => pending_space = true,
            _ => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                // ASCII-only case folding: non-ASCII text passes through
                // verbatim (Unicode folding is locale-fraught, and data in
                // identifiers must not be rewritten more than the tokenizer
                // itself would).
                out.push(c.to_ascii_lowercase());
            }
        }
    }
    out
}

/// Canonicalize a SQL statement into its **digest text**: the shape of the
/// query with every literal masked as `?`.
///
/// Where [`normalize_sql`] preserves literals (two cache entries for two
/// different keys must never alias), the digest text deliberately erases
/// them: `SELECT * FROM t WHERE id = 7` and `... WHERE id = 9` are the same
/// *statement shape*, and — the privacy half — the masked text is safe to
/// write to logs and expose on `/stats` because user-supplied literal data
/// (names, addresses, passwords pasted into a form) never survives masking.
///
/// Rules, layered on the [`normalize_sql`] scanner:
///
/// * single-quoted string literals (with `''` escapes) become a single `?`;
/// * numeric literals (`42`, `3.14`, `.5`, `1e-3`) become `?` — but digits
///   *inside* an identifier (`t1`, `col_2`) are identifier text and stay;
/// * parameter markers (`?`) pass through, so a bound statement and its
///   inlined-literal twin share one digest;
/// * double-quoted identifiers, keywords, operators: normalized exactly as
///   [`normalize_sql`] does (lowercase, whitespace collapsed, comments
///   stripped).
pub fn digest_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut pending_space = false;
    // True while the previous emitted char continues an identifier/number
    // token — used to tell `t1`'s digit from a standalone literal `1`.
    let mut in_word = false;
    let emit = |out: &mut String, pending_space: &mut bool, c: char| {
        if *pending_space && !out.is_empty() {
            out.push(' ');
        }
        *pending_space = false;
        out.push(c);
    };
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // String literal → `?`, consuming the body and '' escapes.
                emit(&mut out, &mut pending_space, '?');
                in_word = false;
                while let Some(d) = chars.next() {
                    if d == '\'' {
                        if chars.peek() == Some(&'\'') {
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
            }
            '"' => {
                // Quoted identifier: schema reference, not user data — keep.
                emit(&mut out, &mut pending_space, '"');
                in_word = false;
                for d in chars.by_ref() {
                    out.push(d);
                    if d == '"' {
                        break;
                    }
                }
            }
            '-' if chars.peek() == Some(&'-') => {
                for d in chars.by_ref() {
                    if d == '\n' {
                        break;
                    }
                }
                pending_space = true;
                in_word = false;
            }
            _ if c.is_ascii_whitespace() => {
                pending_space = true;
                in_word = false;
            }
            _ if !in_word
                && (c.is_ascii_digit()
                    || (c == '.' && chars.peek().is_some_and(char::is_ascii_digit))) =>
            {
                // Numeric literal: digits, one fraction, optional exponent.
                emit(&mut out, &mut pending_space, '?');
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        chars.next();
                    } else if (d == 'e' || d == 'E') && {
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some('+' | '-') => {
                                ahead.next();
                                ahead.peek().is_some_and(|x| x.is_ascii_digit())
                            }
                            Some(x) => x.is_ascii_digit(),
                            None => false,
                        }
                    } {
                        chars.next(); // e / E
                        if matches!(chars.peek(), Some('+' | '-')) {
                            chars.next();
                        }
                    } else {
                        break;
                    }
                }
                in_word = false;
            }
            _ => {
                emit(&mut out, &mut pending_space, c.to_ascii_lowercase());
                in_word = c.is_ascii_alphanumeric() || c == '_';
            }
        }
    }
    out
}

/// 64-bit FNV-1a over a byte string. Stable across platforms and runs —
/// exactly what shard selection and HTTP `ETag`s need, with no dependency.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_whitespace_and_case_outside_literals() {
        assert_eq!(
            normalize_sql("SELECT  *\n FROM\tT  WHERE a =  1"),
            "select * from t where a = 1"
        );
        assert_eq!(normalize_sql("  select 1  "), "select 1");
    }

    #[test]
    fn literals_are_preserved_verbatim() {
        assert_eq!(
            normalize_sql("SELECT 'A  B' FROM T"),
            "select 'A  B' from t"
        );
        // Different literals must never alias.
        assert_ne!(
            normalize_sql("SELECT 'a  b'"),
            normalize_sql("SELECT 'a b'")
        );
        assert_ne!(normalize_sql("SELECT 'ABC'"), normalize_sql("SELECT 'abc'"));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_literal() {
        assert_eq!(
            normalize_sql("SELECT 'it''s  HERE' FROM T"),
            "select 'it''s  HERE' from t"
        );
    }

    #[test]
    fn double_quoted_identifiers_preserved() {
        assert_eq!(
            normalize_sql("SELECT \"Mixed  Case\""),
            "select \"Mixed  Case\""
        );
    }

    #[test]
    fn comments_are_whitespace_not_text() {
        assert_eq!(normalize_sql("SELECT 1 -- note\n+ 1"), "select 1 + 1");
        // A comment swallowing the rest of the line must not make two
        // different statements alias.
        assert_ne!(
            normalize_sql("SELECT 1 -- c\n+1"),
            normalize_sql("SELECT 1 -- c +1")
        );
    }

    #[test]
    fn comment_markers_inside_literals_are_data() {
        assert_eq!(normalize_sql("SELECT '--x' FROM t"), "select '--x' from t");
    }

    #[test]
    fn idempotent() {
        for s in [
            "SELECT  'a  B' -- c\n FROM t",
            "select 1",
            "'unterminated",
            "",
        ] {
            let once = normalize_sql(s);
            assert_eq!(normalize_sql(&once), once);
        }
    }

    #[test]
    fn non_ascii_passes_through_intact() {
        // Regression (found by the property suite): the scanner once worked
        // on bytes and re-encoded each UTF-8 byte as its own char, mangling
        // anything non-ASCII and breaking idempotence.
        assert_eq!(normalize_sql("SELECT '¡Holá!'"), "select '¡Holá!'");
        assert_eq!(normalize_sql("SELECT ¡"), "select ¡");
        let once = normalize_sql("¡");
        assert_eq!(once, "¡");
        assert_eq!(normalize_sql(&once), once);
    }

    #[test]
    fn digest_masks_string_and_numeric_literals() {
        assert_eq!(
            digest_sql("SELECT * FROM t WHERE name = 'Alice'  AND age > 42"),
            "select * from t where name = ? and age > ?"
        );
        // Same shape, different literals → identical digest text.
        assert_eq!(
            digest_sql("SELECT * FROM t WHERE name = 'Bob' AND age > 7"),
            digest_sql("SELECT * FROM t WHERE name = 'Alice'  AND age > 42"),
        );
    }

    #[test]
    fn digest_matches_bound_parameter_shape() {
        assert_eq!(
            digest_sql("SELECT a FROM t WHERE id = ?"),
            digest_sql("SELECT a FROM t WHERE id = 123")
        );
    }

    #[test]
    fn digest_keeps_identifier_digits() {
        assert_eq!(
            digest_sql("SELECT col_2 FROM t1 WHERE t1.x2 = 5"),
            "select col_2 from t1 where t1.x2 = ?"
        );
    }

    #[test]
    fn digest_masks_escaped_and_tricky_literals() {
        assert_eq!(digest_sql("SELECT 'it''s  here'"), "select ?");
        assert_eq!(
            digest_sql("SELECT 3.14, .5, 1e-3, 2E+10"),
            "select ?, ?, ?, ?"
        );
        // Unterminated literal: masked to the end, deterministic.
        assert_eq!(digest_sql("SELECT 'oops"), "select ?");
        // Comment markers inside the literal are data, and still masked.
        assert_eq!(digest_sql("SELECT '--x' FROM t"), "select ? from t");
    }

    #[test]
    fn digest_preserves_quoted_identifiers_and_comments() {
        assert_eq!(
            digest_sql("SELECT \"Mixed  Case\" -- trailing\nFROM t"),
            "select \"Mixed  Case\" from t"
        );
    }

    #[test]
    fn digest_is_idempotent() {
        for s in [
            "SELECT 'a  B' FROM t WHERE x = 1.5e3",
            "select ?",
            "'unterminated",
            "",
        ] {
            let once = digest_sql(s);
            assert_eq!(digest_sql(&once), once);
        }
    }

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }
}
