//! dbgw-cache — the caching substrate shared by the gateway stack.
//!
//! The paper's CGI cost model pays full price on every request: fork, macro
//! parse, database connect, statement compile, query execute. The macro AST
//! is already cached (DESIGN.md §E9); this crate supplies the machinery for
//! the remaining reuse opportunities, wired in by the crates above it:
//!
//! * [`ShardedCache`] — a byte-budgeted, TTL-aware, sharded LRU used by
//!   minisql for both the prepared-statement cache and the SQL result cache.
//! * [`normalize_sql`] — the cache-key canonicalization: lowercases and
//!   collapses whitespace **only outside string literals**, and strips `--`
//!   comments, so `SELECT * FROM t` and `select  *  from T` share a key
//!   while `SELECT 'a  B'` and `SELECT 'a b'` never alias.
//! * [`fnv1a_64`] — a tiny stable content hash, used for shard selection
//!   here and for deterministic HTTP `ETag`s in the gateway.
//! * [`CacheConfig`] — the `DBGW_CACHE*` environment knobs in one place.
//!
//! The crate deliberately depends only on `dbgw-sync` (lock wrappers) and
//! `dbgw-obs` (the injectable [`Clock`](dbgw_obs::Clock) that makes TTL
//! expiry testable); it knows nothing about SQL values, row sets, or HTTP.
//! Callers map cache outcomes onto the global metrics themselves.

#![warn(missing_docs)]

mod config;
mod key;
mod lru;

pub use config::CacheConfig;
pub use key::{digest_sql, fnv1a_64, normalize_sql};
pub use lru::{CacheStatsSnapshot, Lookup, ShardedCache, Stored};
