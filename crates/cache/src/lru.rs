//! A sharded, byte-budgeted LRU cache with optional TTL.
//!
//! Each shard is an independent LRU behind its own mutex, holding an equal
//! slice of the total byte budget. Entries are charged their caller-supplied
//! cost plus key length plus a fixed per-entry overhead; an entry that would
//! not fit in an empty shard is rejected outright, which is what makes the
//! invariant `bytes() <= max_bytes` unconditional — the property test in
//! `tests/properties.rs` leans on it.
//!
//! The LRU list is intrusive: entries live in a slab `Vec` and carry
//! prev/next indices, with a free list for reuse. No allocation happens on
//! the hit path beyond cloning the value out.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dbgw_obs::Clock;
use dbgw_sync::Mutex;

use crate::config::CacheConfig;
use crate::key::fnv1a_64;

/// Fixed per-entry bookkeeping charge added to the caller-supplied cost,
/// approximating the slab + hash-map overhead per entry.
const ENTRY_OVERHEAD: usize = 64;

/// Sentinel index for "no link".
const NIL: usize = usize::MAX;

/// Outcome of a [`ShardedCache::get`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup<V> {
    /// The key was present and fresh; here is a clone of the value.
    Hit(V),
    /// The key was not present.
    Miss,
    /// The key was present but past its TTL; it has been removed.
    Expired,
}

/// Outcome of a [`ShardedCache::put`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stored {
    /// Whether the entry was actually stored (false when it exceeds the
    /// shard budget on its own).
    pub stored: bool,
    /// How many resident entries were evicted to make room.
    pub evicted: u64,
}

/// A point-in-time view of a cache's internal counters, for tests and
/// `/stats`. All counts are since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Fresh lookups that found a value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found a value past its TTL.
    pub expirations: u64,
    /// Entries pushed out to make room for newer ones.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub bytes: usize,
}

struct Entry<V> {
    key: String,
    value: V,
    charge: usize,
    stored_ns: u64,
    prev: usize,
    next: usize,
}

struct Shard<V> {
    map: HashMap<String, usize>,
    slab: Vec<Option<Entry<V>>>,
    free: Vec<usize>,
    /// Most-recently-used entry, or `NIL`.
    head: usize,
    /// Least-recently-used entry, or `NIL`.
    tail: usize,
    bytes: usize,
}

impl<V> Shard<V> {
    fn new() -> Shard<V> {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn entry(&self, idx: usize) -> &Entry<V> {
        self.slab[idx].as_ref().expect("live slab index")
    }

    fn entry_mut(&mut self, idx: usize) -> &mut Entry<V> {
        self.slab[idx].as_mut().expect("live slab index")
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.entry(idx);
            (e.prev, e.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.entry_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entry_mut(next).prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let e = self.entry_mut(idx);
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.entry_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Remove the entry at `idx` entirely, returning its charge.
    fn remove_index(&mut self, idx: usize) -> usize {
        self.unlink(idx);
        let entry = self.slab[idx].take().expect("live slab index");
        self.map.remove(&entry.key);
        self.free.push(idx);
        self.bytes -= entry.charge;
        entry.charge
    }

    fn insert_entry(&mut self, entry: Entry<V>) {
        let charge = entry.charge;
        let key = entry.key.clone();
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(entry);
                i
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.bytes += charge;
    }
}

/// A sharded LRU cache mapping `String` keys to clonable values, with a
/// total byte budget split evenly across shards and an optional TTL driven
/// by an injectable [`Clock`].
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    shard_budget: usize,
    ttl_ns: Option<u64>,
    clock: Arc<dyn Clock>,
    hits: AtomicU64,
    misses: AtomicU64,
    expirations: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ShardedCache<V> {
    /// Build a cache from `config`, with TTL measured on `clock`.
    pub fn new(config: &CacheConfig, clock: Arc<dyn Clock>) -> ShardedCache<V> {
        let n = config.shards.max(1);
        ShardedCache {
            shards: (0..n).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: config.max_bytes / n,
            ttl_ns: config.ttl_ms.map(|ms| ms.saturating_mul(1_000_000)),
            clock,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &str) -> &Mutex<Shard<V>> {
        let h = fnv1a_64(key.as_bytes()) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Look up `key`, refreshing its recency on a hit. An entry past its
    /// TTL is removed and reported as [`Lookup::Expired`].
    pub fn get(&self, key: &str) -> Lookup<V> {
        let now = self.clock.now_ns();
        let mut shard = self.shard_for(key).lock();
        let Some(&idx) = shard.map.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss;
        };
        if let Some(ttl) = self.ttl_ns {
            if now.saturating_sub(shard.entry(idx).stored_ns) >= ttl {
                shard.remove_index(idx);
                self.expirations.fetch_add(1, Ordering::Relaxed);
                return Lookup::Expired;
            }
        }
        shard.unlink(idx);
        shard.push_front(idx);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Lookup::Hit(shard.entry(idx).value.clone())
    }

    /// Insert `key` → `value`, charged at `cost` bytes (plus key length and
    /// fixed overhead). Replaces any existing entry under the same key.
    /// Evicts from the cold end until the entry fits; an entry that cannot
    /// fit in an empty shard is not stored at all.
    pub fn put(&self, key: String, value: V, cost: usize) -> Stored {
        let charge = cost + key.len() + ENTRY_OVERHEAD;
        let mut shard = self.shard_for(&key).lock();
        if let Some(&idx) = shard.map.get(&key) {
            shard.remove_index(idx);
        }
        if charge > self.shard_budget {
            return Stored {
                stored: false,
                evicted: 0,
            };
        }
        let mut evicted = 0;
        while shard.bytes + charge > self.shard_budget {
            let tail = shard.tail;
            debug_assert_ne!(tail, NIL, "charge fits, so eviction must terminate");
            shard.remove_index(tail);
            evicted += 1;
        }
        shard.insert_entry(Entry {
            key,
            value,
            charge,
            stored_ns: self.clock.now_ns(),
            prev: NIL,
            next: NIL,
        });
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        Stored {
            stored: true,
            evicted,
        }
    }

    /// Remove `key` if present; returns whether anything was removed.
    pub fn remove(&self, key: &str) -> bool {
        let mut shard = self.shard_for(key).lock();
        match shard.map.get(key) {
            Some(&idx) => {
                shard.remove_index(idx);
                true
            }
            None => false,
        }
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            *shard = Shard::new();
        }
    }

    /// Bytes currently charged against the budget, across all shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the internal counters. Per-instance, so parallel tests
    /// never race on global metrics.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_obs::TestClock;

    fn cache(max_bytes: usize, ttl_ms: Option<u64>) -> (ShardedCache<String>, Arc<TestClock>) {
        let clock = Arc::new(TestClock::new());
        let config = CacheConfig {
            enabled: true,
            max_bytes,
            ttl_ms,
            // One shard makes LRU order deterministic for these tests.
            shards: 1,
        };
        (ShardedCache::new(&config, clock.clone()), clock)
    }

    #[test]
    fn hit_after_put_miss_before() {
        let (c, _) = cache(4096, None);
        assert_eq!(c.get("k"), Lookup::Miss);
        assert!(c.put("k".into(), "v".into(), 10).stored);
        assert_eq!(c.get("k"), Lookup::Hit("v".into()));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn replaces_existing_key_without_double_charge() {
        let (c, _) = cache(4096, None);
        c.put("k".into(), "a".into(), 100);
        let before = c.bytes();
        c.put("k".into(), "b".into(), 100);
        assert_eq!(c.bytes(), before);
        assert_eq!(c.get("k"), Lookup::Hit("b".into()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // Budget fits exactly two entries of charge 1 + 64 + 100 = 165.
        let (c, _) = cache(330, None);
        c.put("a".into(), "1".into(), 100);
        c.put("b".into(), "2".into(), 100);
        // Touch "a" so "b" is now coldest.
        assert_eq!(c.get("a"), Lookup::Hit("1".into()));
        let stored = c.put("c".into(), "3".into(), 100);
        assert_eq!(stored.evicted, 1);
        assert_eq!(c.get("b"), Lookup::Miss);
        assert_eq!(c.get("a"), Lookup::Hit("1".into()));
        assert_eq!(c.get("c"), Lookup::Hit("3".into()));
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let (c, _) = cache(128, None);
        let stored = c.put("big".into(), "x".into(), 10_000);
        assert!(!stored.stored);
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn bytes_never_exceed_budget() {
        let (c, _) = cache(1000, None);
        for i in 0..100 {
            c.put(format!("key-{i}"), "v".repeat(i % 40), i % 200);
            assert!(c.bytes() <= 1000, "bytes {} > budget", c.bytes());
        }
    }

    #[test]
    fn ttl_expires_entries_on_the_test_clock() {
        let (c, clock) = cache(4096, Some(100));
        c.put("k".into(), "v".into(), 10);
        clock.advance_millis(99);
        assert_eq!(c.get("k"), Lookup::Hit("v".into()));
        clock.advance_millis(1);
        assert_eq!(c.get("k"), Lookup::Expired);
        // Expired entries are gone: next lookup is a plain miss.
        assert_eq!(c.get("k"), Lookup::Miss);
        let s = c.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn remove_and_clear() {
        let (c, _) = cache(4096, None);
        c.put("a".into(), "1".into(), 10);
        c.put("b".into(), "2".into(), 10);
        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let (c, _) = cache(330, None);
        for round in 0..50 {
            c.put(format!("k{}", round % 3), format!("v{round}"), 100);
        }
        // Only ~2 entries ever fit; the slab must not have grown to 50.
        assert!(c.len() <= 2);
    }

    #[test]
    fn sharded_cache_spreads_keys() {
        let clock: Arc<TestClock> = Arc::new(TestClock::new());
        let c: ShardedCache<u32> = ShardedCache::new(&CacheConfig::default(), clock);
        for i in 0..64 {
            c.put(format!("key-{i}"), i, 16);
        }
        assert_eq!(c.len(), 64);
        for i in 0..64 {
            assert_eq!(c.get(&format!("key-{i}")), Lookup::Hit(i));
        }
    }
}
