//! HTTP Basic authentication (§5: the system "works with ... the Web server
//! and the firewall products to provide secure data access").
//!
//! In 1996 the web server, not the gateway, owned authentication: httpd's
//! `.htaccess` guarded `/cgi-bin/db2www/...` paths with Basic auth and the
//! gateway trusted `REMOTE_USER`. This module reproduces that split: the
//! HTTP server checks credentials per protected path prefix and the gateway
//! never sees passwords.
//!
//! Includes a from-scratch base64 codec (RFC 2045 alphabet) since external
//! crates are out of scope.

use std::collections::HashMap;

// ---------------------------------------------------------------------------
// base64
// ---------------------------------------------------------------------------

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as base64 with `=` padding.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode base64 (strict alphabet, `=` padding, whitespace ignored).
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    let mut values = Vec::with_capacity(text.len());
    for ch in text.bytes() {
        match ch {
            b'A'..=b'Z' => values.push(ch - b'A'),
            b'a'..=b'z' => values.push(ch - b'a' + 26),
            b'0'..=b'9' => values.push(ch - b'0' + 52),
            b'+' => values.push(62),
            b'/' => values.push(63),
            b'=' => break,
            b' ' | b'\t' | b'\r' | b'\n' => continue,
            _ => return None,
        }
    }
    if values.len() % 4 == 1 {
        return None; // impossible length
    }
    let mut out = Vec::with_capacity(values.len() * 3 / 4);
    for chunk in values.chunks(4) {
        let mut n: u32 = 0;
        for (i, &v) in chunk.iter().enumerate() {
            n |= (v as u32) << (18 - 6 * i);
        }
        out.push((n >> 16) as u8);
        if chunk.len() > 2 {
            out.push((n >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(n as u8);
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Basic auth
// ---------------------------------------------------------------------------

/// A password table guarding path prefixes.
#[derive(Debug, Clone, Default)]
pub struct BasicAuth {
    realm: String,
    users: HashMap<String, String>,
    protected: Vec<String>,
}

/// Outcome of an authentication check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthDecision {
    /// The path is not protected.
    Open,
    /// Valid credentials; the user name becomes `REMOTE_USER`.
    Allow(String),
    /// Missing or wrong credentials; challenge with this realm.
    Challenge(String),
}

impl BasicAuth {
    /// A guard with a realm name.
    pub fn new(realm: &str) -> BasicAuth {
        BasicAuth {
            realm: realm.to_owned(),
            ..BasicAuth::default()
        }
    }

    /// Register a user.
    pub fn with_user(mut self, name: &str, password: &str) -> BasicAuth {
        self.users.insert(name.to_owned(), password.to_owned());
        self
    }

    /// Protect every path starting with `prefix`.
    pub fn protect_prefix(mut self, prefix: &str) -> BasicAuth {
        self.protected.push(prefix.to_owned());
        self
    }

    /// Check a request path + optional `Authorization` header value.
    pub fn check(&self, path: &str, authorization: Option<&str>) -> AuthDecision {
        if !self.protected.iter().any(|p| path.starts_with(p.as_str())) {
            return AuthDecision::Open;
        }
        let Some(header) = authorization else {
            return AuthDecision::Challenge(self.realm.clone());
        };
        let Some(encoded) = header
            .trim()
            .strip_prefix("Basic ")
            .or_else(|| header.trim().strip_prefix("basic "))
        else {
            return AuthDecision::Challenge(self.realm.clone());
        };
        let Some(decoded) = base64_decode(encoded.trim()) else {
            return AuthDecision::Challenge(self.realm.clone());
        };
        let Ok(text) = String::from_utf8(decoded) else {
            return AuthDecision::Challenge(self.realm.clone());
        };
        let Some((user, password)) = text.split_once(':') else {
            return AuthDecision::Challenge(self.realm.clone());
        };
        match self.users.get(user) {
            Some(expected) if constant_time_eq(expected.as_bytes(), password.as_bytes()) => {
                AuthDecision::Allow(user.to_owned())
            }
            _ => AuthDecision::Challenge(self.realm.clone()),
        }
    }

    /// Build the `Authorization` header value for credentials (client side).
    pub fn header_value(user: &str, password: &str) -> String {
        format!(
            "Basic {}",
            base64_encode(format!("{user}:{password}").as_bytes())
        )
    }
}

/// Length-constant comparison so password checks don't leak prefix length
/// timing (overkill for a reproduction; cheap to do right).
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_testkit::gen::bytes;
    use dbgw_testkit::{prop_assert_eq, props};

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Zg==").unwrap(), b"f");
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(base64_decode("!!!").is_none());
        assert!(base64_decode("A").is_none());
    }

    #[test]
    fn base64_ignores_whitespace() {
        assert_eq!(base64_decode("Zm9v\nYmFy").unwrap(), b"foobar");
    }

    props! {
        fn base64_round_trips(data in bytes(0..=63)) {
            prop_assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
        }
    }

    fn guard() -> BasicAuth {
        BasicAuth::new("DB2WWW")
            .with_user("tam", "secret")
            .protect_prefix("/cgi-bin/db2www/admin")
    }

    #[test]
    fn open_paths_pass() {
        assert_eq!(
            guard().check("/cgi-bin/db2www/urlquery.d2w/input", None),
            AuthDecision::Open
        );
    }

    #[test]
    fn protected_path_challenges_without_credentials() {
        assert_eq!(
            guard().check("/cgi-bin/db2www/admin.d2w/report", None),
            AuthDecision::Challenge("DB2WWW".into())
        );
    }

    #[test]
    fn valid_credentials_allow() {
        let header = BasicAuth::header_value("tam", "secret");
        assert_eq!(
            guard().check("/cgi-bin/db2www/admin.d2w/report", Some(&header)),
            AuthDecision::Allow("tam".into())
        );
    }

    #[test]
    fn wrong_password_challenges() {
        let header = BasicAuth::header_value("tam", "wrong");
        assert!(matches!(
            guard().check("/cgi-bin/db2www/admin.d2w/report", Some(&header)),
            AuthDecision::Challenge(_)
        ));
    }

    #[test]
    fn malformed_header_challenges() {
        for header in ["Bearer xyz", "Basic !!!", "Basic Zm9v"] {
            assert!(matches!(
                guard().check("/cgi-bin/db2www/admin.d2w/report", Some(header)),
                AuthDecision::Challenge(_)
            ));
        }
    }
}
