//! `db2www` — the CGI executable of the paper, as a real program.
//!
//! A CGI-speaking web server (or the test harness) invokes this binary per
//! request with the standard environment (Figure 4):
//!
//! * `REQUEST_METHOD` — GET or POST,
//! * `PATH_INFO` — `/{macro-file}/{input|report}`,
//! * `QUERY_STRING` — GET variables,
//! * `CONTENT_LENGTH` + standard input — POST variables.
//!
//! Configuration comes from two more variables, mirroring the product's
//! initialization file:
//!
//! * `DTW_MACRO_DIR` — directory holding `.d2w` macro files (default
//!   `./macros`),
//! * `DTW_DB_SCRIPT` — path to a SQL script that builds the database,
//! * `DBGW_DATA_DIR` — when set, the database is durable: opened from (and
//!   recovered into) that directory's write-ahead log, with `DTW_DB_SCRIPT`
//!   run only the first time, when the recovered database is empty.
//!
//! Without `DBGW_DATA_DIR` the DBMS substrate is in-process and each
//! invocation rebuilds the database from the script — fine for demonstrating
//! the protocol (the paper's DB2 connection cost per CGI process was
//! likewise per-request); the long-running [`dbgw_cgi::HttpServer`] is the
//! performant path.
//!
//! Output is a CGI response on stdout: `Content-Type` header, blank line,
//! page. Errors still produce a page (status is in the `Status:` header, as
//! CGI prescribes).

use dbgw_cgi::{trace_comment, CgiRequest, CgiResponse, Gateway, Method, TraceOptions};
use std::io::Read;
use std::sync::Arc;

fn main() {
    // The binary owns the request trace (DBGW_TRACE / DBGW_TRACE_FILE), so
    // the spans cover the whole invocation — database build, macro load and
    // parse, then the gateway dispatch nested inside.
    let trace = TraceOptions::from_env();
    let request_id = dbgw_obs::next_request_id();
    let owned = trace.tracing()
        && dbgw_obs::trace::start_trace(Arc::new(dbgw_obs::StdClock::new()), request_id);
    let mut response = run(request_id);
    if owned {
        if let Some(t) = dbgw_obs::trace::finish_trace() {
            if let Some(path) = &trace.trace_file {
                let _ = t.append_jsonl(path);
            }
            if trace.annotate {
                response.body.push_str(&trace_comment(&t));
            }
        }
    }
    let mut head = format!(
        "Status: {} {}\r\nContent-Type: {}; charset=utf-8\r\n",
        response.status,
        response.reason(),
        response.content_type,
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    print!("{head}\r\n{}", response.body);
}

fn run(request_id: u64) -> CgiResponse {
    let env = |name: &str| std::env::var(name).unwrap_or_default();

    let method = match env("REQUEST_METHOD").to_ascii_uppercase().as_str() {
        "POST" => Method::Post,
        _ => Method::Get,
    };
    let body = if method == Method::Post {
        let length: usize = env("CONTENT_LENGTH").parse().unwrap_or(0);
        let mut buf = vec![0u8; length];
        if std::io::stdin().read_exact(&mut buf).is_err() {
            return CgiResponse::error_for_request(400, "short request body", request_id);
        }
        String::from_utf8_lossy(&buf).into_owned()
    } else {
        String::new()
    };
    let request = CgiRequest {
        method,
        path_info: env("PATH_INFO"),
        query_string: env("QUERY_STRING"),
        body,
        request_id,
        if_none_match: std::env::var("HTTP_IF_NONE_MATCH").ok(),
    };

    // Open the database: durable under DBGW_DATA_DIR (recovering any prior
    // log), purely in-memory otherwise. The build script then runs only
    // against a *fresh* database — a recovered one already has its tables.
    let db = match minisql::Database::open_from_env() {
        Ok(db) => db,
        Err(e) => {
            return CgiResponse::error_for_request(
                500,
                &format!("cannot open DBGW_DATA_DIR database: {e}"),
                request_id,
            )
        }
    };
    let script_path = env("DTW_DB_SCRIPT");
    if !script_path.is_empty() && db.pin().tables.is_empty() {
        let _span = dbgw_obs::trace::span("build_database");
        let script = match std::fs::read_to_string(&script_path) {
            Ok(s) => s,
            Err(e) => {
                return CgiResponse::error_for_request(
                    500,
                    &format!("cannot read DTW_DB_SCRIPT {script_path}: {e}"),
                    request_id,
                )
            }
        };
        if let Err(e) = db.run_script(&script) {
            return CgiResponse::error_for_request(
                500,
                &format!("DTW_DB_SCRIPT failed: {e}"),
                request_id,
            );
        }
    }

    // Load the requested macro from the macro directory. The gateway
    // re-validates the name; we only read the one file being asked for.
    let macro_dir = {
        let dir = env("DTW_MACRO_DIR");
        if dir.is_empty() {
            "./macros".to_owned()
        } else {
            dir
        }
    };
    let macro_name = request
        .path_info
        .trim_start_matches('/')
        .split('/')
        .next()
        .unwrap_or("")
        .to_owned();
    if !dbgw_core::security::safe_macro_name(&macro_name) {
        return CgiResponse::error_for_request(400, "invalid macro file name", request_id);
    }
    let gateway = Gateway::new(db);
    let macro_path = std::path::Path::new(&macro_dir).join(&macro_name);
    match std::fs::read_to_string(&macro_path) {
        Ok(source) => {
            if let Err(e) = gateway.add_macro(&macro_name, &source) {
                return CgiResponse::error_for_request(
                    500,
                    &format!("macro parse error: {e}"),
                    request_id,
                );
            }
        }
        Err(_) => {
            return CgiResponse::error_for_request(
                404,
                &format!("no macro named {macro_name}"),
                request_id,
            )
        }
    }
    gateway.handle(&request)
}
