//! `db2www` — the CGI executable of the paper, as a real program.
//!
//! A CGI-speaking web server (or the test harness) invokes this binary per
//! request with the standard environment (Figure 4):
//!
//! * `REQUEST_METHOD` — GET or POST,
//! * `PATH_INFO` — `/{macro-file}/{input|report}`,
//! * `QUERY_STRING` — GET variables,
//! * `CONTENT_LENGTH` + standard input — POST variables.
//!
//! Configuration comes from two more variables, mirroring the product's
//! initialization file:
//!
//! * `DTW_MACRO_DIR` — directory holding `.d2w` macro files (default
//!   `./macros`),
//! * `DTW_DB_SCRIPT` — path to a SQL script that builds the database.
//!
//! Because the DBMS substrate is in-process, each invocation rebuilds the
//! database from the script — fine for demonstrating the protocol (the
//! paper's DB2 connection cost per CGI process was likewise per-request);
//! the long-running [`dbgw_cgi::HttpServer`] is the performant path.
//!
//! Output is a CGI response on stdout: `Content-Type` header, blank line,
//! page. Errors still produce a page (status is in the `Status:` header, as
//! CGI prescribes).

use dbgw_cgi::{CgiRequest, CgiResponse, Gateway, Method};
use std::io::Read;

fn main() {
    let response = run();
    print!(
        "Status: {} {}\r\nContent-Type: {}; charset=utf-8\r\n\r\n{}",
        response.status,
        response.reason(),
        response.content_type,
        response.body
    );
}

fn run() -> CgiResponse {
    let env = |name: &str| std::env::var(name).unwrap_or_default();

    let method = match env("REQUEST_METHOD").to_ascii_uppercase().as_str() {
        "POST" => Method::Post,
        _ => Method::Get,
    };
    let body = if method == Method::Post {
        let length: usize = env("CONTENT_LENGTH").parse().unwrap_or(0);
        let mut buf = vec![0u8; length];
        if std::io::stdin().read_exact(&mut buf).is_err() {
            return CgiResponse::error(400, "short request body");
        }
        String::from_utf8_lossy(&buf).into_owned()
    } else {
        String::new()
    };
    let request = CgiRequest {
        method,
        path_info: env("PATH_INFO"),
        query_string: env("QUERY_STRING"),
        body,
    };

    // Build the database from the configured script.
    let db = minisql::Database::new();
    let script_path = env("DTW_DB_SCRIPT");
    if !script_path.is_empty() {
        let script = match std::fs::read_to_string(&script_path) {
            Ok(s) => s,
            Err(e) => {
                return CgiResponse::error(
                    500,
                    &format!("cannot read DTW_DB_SCRIPT {script_path}: {e}"),
                )
            }
        };
        if let Err(e) = db.run_script(&script) {
            return CgiResponse::error(500, &format!("DTW_DB_SCRIPT failed: {e}"));
        }
    }

    // Load the requested macro from the macro directory. The gateway
    // re-validates the name; we only read the one file being asked for.
    let macro_dir = {
        let dir = env("DTW_MACRO_DIR");
        if dir.is_empty() {
            "./macros".to_owned()
        } else {
            dir
        }
    };
    let macro_name = request
        .path_info
        .trim_start_matches('/')
        .split('/')
        .next()
        .unwrap_or("")
        .to_owned();
    if !dbgw_core::security::safe_macro_name(&macro_name) {
        return CgiResponse::error(400, "invalid macro file name");
    }
    let gateway = Gateway::new(db);
    let macro_path = std::path::Path::new(&macro_dir).join(&macro_name);
    match std::fs::read_to_string(&macro_path) {
        Ok(source) => {
            if let Err(e) = gateway.add_macro(&macro_name, &source) {
                return CgiResponse::error(500, &format!("macro parse error: {e}"));
            }
        }
        Err(_) => return CgiResponse::error(404, &format!("no macro named {macro_name}")),
    }
    gateway.handle(&request)
}
