//! Adapter: drive [`minisql`] through the engine's [`dbgw_core::Database`]
//! trait.
//!
//! Values cross the boundary as display strings (NULL → empty string), which
//! is exactly how the substitution mechanism consumes them.

use dbgw_core::db::{Database, DbError, DbRows};
use dbgw_obs::RequestCtx;
use minisql::{Connection, ExecResult};
use std::sync::Arc;

/// A `dbgw_core::Database` backed by one MiniSQL connection.
pub struct MiniSqlDatabase {
    conn: Connection,
}

impl MiniSqlDatabase {
    /// Wrap a connection.
    pub fn new(conn: Connection) -> MiniSqlDatabase {
        MiniSqlDatabase { conn }
    }

    /// Open a fresh connection on `db` and wrap it.
    pub fn connect(db: &minisql::Database) -> MiniSqlDatabase {
        MiniSqlDatabase::new(db.connect())
    }

    /// Open a fresh connection bound to a request context, so the executor's
    /// scan/join loops observe the request's deadline and cancellation flag.
    pub fn connect_ctx(db: &minisql::Database, ctx: Arc<RequestCtx>) -> MiniSqlDatabase {
        MiniSqlDatabase::new(db.connect_with_ctx(ctx))
    }
}

fn convert_err(e: minisql::SqlError) -> DbError {
    DbError {
        code: e.code.0,
        message: e.message,
    }
}

impl Database for MiniSqlDatabase {
    fn execute(&mut self, sql: &str) -> Result<DbRows, DbError> {
        match self.conn.execute(sql).map_err(convert_err)? {
            ExecResult::Rows(rs) => Ok(DbRows {
                columns: rs.columns,
                rows: rs
                    .rows
                    .into_iter()
                    .map(|row| row.iter().map(|v| v.to_display_string()).collect())
                    .collect(),
                affected: 0,
            }),
            ExecResult::Count(n) => Ok(DbRows {
                affected: n,
                ..DbRows::default()
            }),
            ExecResult::Ddl | ExecResult::TxnControl => Ok(DbRows {
                affected: 1,
                ..DbRows::default()
            }),
        }
    }

    fn begin(&mut self) -> Result<(), DbError> {
        self.conn.execute("BEGIN").map(|_| ()).map_err(convert_err)
    }

    fn commit(&mut self) -> Result<(), DbError> {
        self.conn.execute("COMMIT").map(|_| ()).map_err(convert_err)
    }

    fn rollback(&mut self) -> Result<(), DbError> {
        self.conn
            .execute("ROLLBACK")
            .map(|_| ())
            .map_err(convert_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> minisql::Database {
        let db = minisql::Database::new();
        db.run_script(
            "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80), description VARCHAR(200));
             INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM', 'Big Blue'),
                                      ('http://www.eso.org', 'ESO', NULL);",
        )
        .unwrap();
        db
    }

    #[test]
    fn query_converts_to_strings_with_null_as_empty() {
        let mut bridge = MiniSqlDatabase::connect(&db());
        let rows = bridge
            .execute("SELECT title, description FROM urldb ORDER BY title")
            .unwrap();
        assert_eq!(rows.columns, vec!["title", "description"]);
        assert_eq!(rows.rows[0], vec!["ESO".to_owned(), String::new()]);
        assert_eq!(rows.sqlcode(), 0);
    }

    #[test]
    fn dml_reports_affected() {
        let mut bridge = MiniSqlDatabase::connect(&db());
        let r = bridge
            .execute("DELETE FROM urldb WHERE title = 'IBM'")
            .unwrap();
        assert_eq!(r.affected, 1);
        let none = bridge
            .execute("DELETE FROM urldb WHERE title = 'IBM'")
            .unwrap();
        assert_eq!(none.sqlcode(), 100);
    }

    #[test]
    fn errors_carry_db2_codes() {
        let mut bridge = MiniSqlDatabase::connect(&db());
        let err = bridge.execute("SELECT * FROM nope").unwrap_err();
        assert_eq!(err.code, -204);
        let err = bridge.execute("SELEC").unwrap_err();
        assert_eq!(err.code, -104);
    }

    #[test]
    fn transactions_round_trip() {
        let base = db();
        let mut bridge = MiniSqlDatabase::connect(&base);
        bridge.begin().unwrap();
        bridge
            .execute("INSERT INTO urldb VALUES ('http://x', 'X', NULL)")
            .unwrap();
        bridge.rollback().unwrap();
        assert_eq!(base.table_len("urldb").unwrap(), 2);
    }
}
