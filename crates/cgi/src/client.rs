//! The programmatic "Web browser": an HTTP client plus a form-filling layer.
//!
//! The paper's end user "fills out the forms, points and clicks to navigate"
//! (§1). Tests and benchmarks reproduce that with [`FormFill`], which parses
//! a served `%HTML_INPUT` page, applies the user's selections, and produces
//! exactly the `name=value&…` submission of §2.2 — including checkbox
//! drop-when-unchecked and multi-valued SELECT semantics.

use crate::query::QueryString;
use crate::request::CgiResponse;
use dbgw_html::{Form, FormControl, FormMethod};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A tiny HTTP/1.0 client.
pub struct HttpClient {
    addr: SocketAddr,
}

impl HttpClient {
    /// Client for a server address.
    pub fn new(addr: SocketAddr) -> HttpClient {
        HttpClient { addr }
    }

    /// Send raw bytes, return the raw response text.
    pub fn raw(&self, request: &str) -> std::io::Result<String> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.write_all(request.as_bytes())?;
        stream.flush()?;
        let mut out = String::new();
        stream.read_to_string(&mut out)?;
        Ok(out)
    }

    /// GET a path.
    pub fn get(&self, path: &str) -> std::io::Result<CgiResponse> {
        let raw = self.raw(&format!("GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n"))?;
        Ok(parse_response(&raw))
    }

    /// POST a form body to a path.
    pub fn post(&self, path: &str, body: &str) -> std::io::Result<CgiResponse> {
        let raw = self.raw(&format!(
            "POST {path} HTTP/1.0\r\nHost: localhost\r\n\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ))?;
        Ok(parse_response(&raw))
    }

    /// Fetch a form page and submit it with the given fill, following the
    /// form's own ACTION and METHOD — one full §2.1 interaction.
    pub fn submit_form(&self, form_path: &str, fill: &FormFill) -> std::io::Result<CgiResponse> {
        let page = self.get(form_path)?;
        let form = Form::parse_first(&page.body).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "page has no form")
        })?;
        let wire = fill.submission(&form).to_wire();
        match form.method {
            FormMethod::Post => self.post(&form.action, &wire),
            FormMethod::Get => self.get(&format!("{}?{}", form.action, wire)),
        }
    }
}

fn parse_response(raw: &str) -> CgiResponse {
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw, ""));
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut content_type = String::from("text/html");
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-type") {
                content_type = value.trim().to_owned();
            } else {
                headers.push((name.trim().to_owned(), value.trim().to_owned()));
            }
        }
    }
    CgiResponse {
        status,
        content_type,
        body: body.to_owned(),
        headers,
    }
}

/// The user's interactions with a form before clicking Submit.
#[derive(Debug, Clone, Default)]
pub struct FormFill {
    texts: Vec<(String, String)>,
    checks: Vec<(String, String, bool)>, // (name, value, checked)
    radios: Vec<(String, String)>,       // (name, chosen value)
    selections: Vec<(String, Vec<String>)>,
}

impl FormFill {
    /// No interactions: submit the form's default state.
    pub fn defaults() -> FormFill {
        FormFill::default()
    }

    /// Type into a text field.
    pub fn text(mut self, name: &str, value: &str) -> FormFill {
        self.texts.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Check or uncheck the checkbox `name` whose VALUE is `value`.
    pub fn check(mut self, name: &str, value: &str, checked: bool) -> FormFill {
        self.checks
            .push((name.to_owned(), value.to_owned(), checked));
        self
    }

    /// Pick the radio button of group `name` with VALUE `value`.
    pub fn radio(mut self, name: &str, value: &str) -> FormFill {
        self.radios.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Select exactly these option values in the SELECT named `name`.
    pub fn select(mut self, name: &str, values: &[&str]) -> FormFill {
        self.selections.push((
            name.to_owned(),
            values.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Compute the submission pairs for `form` in document order, per §2.2.
    pub fn submission(&self, form: &Form) -> QueryString {
        let mut q = QueryString::new();
        for control in &form.controls {
            match control {
                FormControl::Input {
                    kind,
                    name,
                    value,
                    checked,
                } => match kind.as_str() {
                    "checkbox" => {
                        let ctl_value = value.clone().unwrap_or_else(|| "on".into());
                        let state = self
                            .checks
                            .iter()
                            .rev()
                            .find(|(n, v, _)| n == name && *v == ctl_value)
                            .map(|(_, _, c)| *c)
                            .unwrap_or(*checked);
                        if state {
                            q.push(name.clone(), ctl_value);
                        }
                    }
                    "radio" => {
                        let ctl_value = value.clone().unwrap_or_default();
                        let chosen = self
                            .radios
                            .iter()
                            .rev()
                            .find(|(n, _)| n == name)
                            .map(|(_, v)| v.as_str());
                        let on = match chosen {
                            Some(v) => v == ctl_value,
                            None => *checked,
                        };
                        if on {
                            q.push(name.clone(), ctl_value);
                        }
                    }
                    "submit" | "reset" | "button" | "image" => {}
                    _ => {
                        // text, hidden, password, ...
                        let typed = self
                            .texts
                            .iter()
                            .rev()
                            .find(|(n, _)| n == name)
                            .map(|(_, v)| v.clone());
                        q.push(
                            name.clone(),
                            typed.unwrap_or_else(|| value.clone().unwrap_or_default()),
                        );
                    }
                },
                FormControl::Select { name, options, .. } => {
                    let chosen = self
                        .selections
                        .iter()
                        .rev()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v.clone());
                    match chosen {
                        Some(values) => {
                            // Submit in option (document) order, like a browser.
                            for (value, _) in options {
                                if values.iter().any(|v| v == value) {
                                    q.push(name.clone(), value.clone());
                                }
                            }
                        }
                        None => {
                            for (value, selected) in options {
                                if *selected {
                                    q.push(name.clone(), value.clone());
                                }
                            }
                        }
                    }
                }
                FormControl::TextArea { name, value } => {
                    let typed = self
                        .texts
                        .iter()
                        .rev()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v.clone());
                    q.push(name.clone(), typed.unwrap_or_else(|| value.clone()));
                }
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE2: &str = r#"
<FORM METHOD="post" ACTION="/cgi-bin/db2www.exe/urlquery.d2w/report">
<INPUT TYPE="text" NAME="SEARCH" SIZE=20>
<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED> URL<br>
<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED> Title<br>
<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes">Description
<SELECT NAME="DBFIELD" SIZE=3 MULTIPLE>
<OPTION VALUE="url">URL
<OPTION VALUE="title" SELECTED> Title
<OPTION VALUE="desc">Description
</SELECT>
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="YES"> Yes
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="" CHECKED> No
<INPUT TYPE="submit" VALUE="Submit Query">
</FORM>"#;

    #[test]
    fn default_submission_matches_paper_figure3() {
        // §2.2 lists the exact variable set for the Figure 3 default state,
        // with the user having additionally selected desc in the SELECT:
        //   SEARCH="" USE_URL="yes" USE_TITLE="yes" USE_DESC=""
        //   DBFIELD="title" DBFIELD="desc" SHOWSQL=""
        let form = Form::parse_first(FIGURE2).unwrap();
        let fill = FormFill::defaults().select("DBFIELD", &["title", "desc"]);
        let q = fill.submission(&form);
        assert_eq!(
            q.to_wire(),
            "SEARCH=&USE_URL=yes&USE_TITLE=yes&DBFIELD=title&DBFIELD=desc&SHOWSQL="
        );
    }

    #[test]
    fn typing_and_unchecking() {
        let form = Form::parse_first(FIGURE2).unwrap();
        let fill = FormFill::defaults()
            .text("SEARCH", "ib")
            .check("USE_TITLE", "yes", false)
            .check("USE_DESC", "yes", true)
            .radio("SHOWSQL", "YES");
        let q = fill.submission(&form);
        assert_eq!(q.get("SEARCH"), Some("ib"));
        assert_eq!(q.get("USE_TITLE"), None); // unchecked sends nothing
        assert_eq!(q.get("USE_DESC"), Some("yes"));
        assert_eq!(q.get("SHOWSQL"), Some("YES"));
    }

    #[test]
    fn radio_group_single_value() {
        let form = Form::parse_first(FIGURE2).unwrap();
        let q = FormFill::defaults().submission(&form);
        assert_eq!(q.get_all("SHOWSQL"), vec![""]);
    }

    #[test]
    fn select_respects_document_order() {
        let form = Form::parse_first(FIGURE2).unwrap();
        let q = FormFill::defaults()
            .select("DBFIELD", &["desc", "url"]) // user clicks in any order
            .submission(&form);
        assert_eq!(q.get_all("DBFIELD"), vec!["url", "desc"]);
    }

    #[test]
    fn parse_response_splits_head_body() {
        let r = parse_response("HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\n<p>hi");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "<p>hi");
    }
}
