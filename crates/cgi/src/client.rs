//! The programmatic "Web browser": an HTTP client plus a form-filling layer.
//!
//! The paper's end user "fills out the forms, points and clicks to navigate"
//! (§1). Tests and benchmarks reproduce that with [`FormFill`], which parses
//! a served `%HTML_INPUT` page, applies the user's selections, and produces
//! exactly the `name=value&…` submission of §2.2 — including checkbox
//! drop-when-unchecked and multi-valued SELECT semantics.

use crate::query::QueryString;
use crate::request::CgiResponse;
use dbgw_html::{Form, FormControl, FormMethod};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A tiny one-shot HTTP/1.1 client: each call opens a fresh connection and
/// asks the server to close it (`Connection: close`). For keep-alive reuse
/// and pipelining, use [`HttpConnection`].
pub struct HttpClient {
    addr: SocketAddr,
}

impl HttpClient {
    /// Client for a server address.
    pub fn new(addr: SocketAddr) -> HttpClient {
        HttpClient { addr }
    }

    /// Send raw bytes, return the raw response text.
    pub fn raw(&self, request: &str) -> std::io::Result<String> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.write_all(request.as_bytes())?;
        stream.flush()?;
        let mut out = String::new();
        stream.read_to_string(&mut out)?;
        Ok(out)
    }

    /// GET a path.
    pub fn get(&self, path: &str) -> std::io::Result<CgiResponse> {
        let raw = self.raw(&format!(
            "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        ))?;
        Ok(parse_response(&raw))
    }

    /// POST a form body to a path.
    pub fn post(&self, path: &str, body: &str) -> std::io::Result<CgiResponse> {
        let raw = self.raw(&format!(
            "POST {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ))?;
        Ok(parse_response(&raw))
    }

    /// Fetch a form page and submit it with the given fill, following the
    /// form's own ACTION and METHOD — one full §2.1 interaction.
    pub fn submit_form(&self, form_path: &str, fill: &FormFill) -> std::io::Result<CgiResponse> {
        let page = self.get(form_path)?;
        let form = Form::parse_first(&page.body).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "page has no form")
        })?;
        let wire = fill.submission(&form).to_wire();
        match form.method {
            FormMethod::Post => self.post(&form.action, &wire),
            FormMethod::Get => self.get(&format!("{}?{}", form.action, wire)),
        }
    }
}

fn parse_response(raw: &str) -> CgiResponse {
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw, ""));
    let (status, content_type, headers, chunked, _) = parse_head(head);
    let body = if chunked {
        match decode_chunked(body.as_bytes()) {
            ChunkStatus::Complete(bytes, _) => String::from_utf8_lossy(&bytes).into_owned(),
            _ => body.to_owned(),
        }
    } else {
        body.to_owned()
    };
    CgiResponse {
        status,
        content_type,
        body,
        headers,
    }
}

/// Parse a status line + header block (no final blank line) into
/// `(status, content type, other headers, chunked?, content length)`.
fn parse_head(head: &str) -> (u16, String, Vec<(String, String)>, bool, Option<usize>) {
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut content_type = String::from("text/html");
    let mut headers = Vec::new();
    let mut chunked = false;
    let mut content_length = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_owned();
                continue;
            }
            if name.eq_ignore_ascii_case("transfer-encoding")
                && value.eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            }
            headers.push((name.trim().to_owned(), value.to_owned()));
        }
    }
    (status, content_type, headers, chunked, content_length)
}

/// The outcome of decoding a chunked transfer-coded stream prefix.
#[derive(Debug, PartialEq, Eq)]
pub enum ChunkStatus {
    /// A complete stream: the decoded body and how many encoded bytes it
    /// consumed (pipelined successors may follow).
    Complete(Vec<u8>, usize),
    /// The stream's terminating chunk has not arrived yet.
    Incomplete,
    /// Not valid chunked coding.
    Invalid,
}

/// Encode `pieces` as one `Transfer-Encoding: chunked` stream. Empty pieces
/// are skipped: a zero-size chunk would terminate the stream early.
pub fn encode_chunked(pieces: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    for piece in pieces {
        if piece.is_empty() {
            continue;
        }
        out.extend_from_slice(format!("{:x}\r\n", piece.len()).as_bytes());
        out.extend_from_slice(piece);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
    out
}

/// Decode a chunked stream from the front of `data`.
pub fn decode_chunked(data: &[u8]) -> ChunkStatus {
    ChunkDecoder::new().advance(data)
}

#[derive(Debug)]
enum DecodeState {
    /// Expecting a hex chunk-size line.
    SizeLine,
    /// Copying chunk payload; `remaining` bytes of it are still to come.
    Data { remaining: usize },
    /// Expecting the CRLF that closes a chunk's payload.
    DataCrlf,
    /// Saw the zero-size chunk; expecting the final bare CRLF (no trailers).
    Terminator,
}

/// A resumable chunked-stream decoder.
///
/// Call [`advance`](ChunkDecoder::advance) with the same buffer as it grows:
/// the decoder remembers how far it got (`pos`) and what it has decoded, so
/// each call only touches bytes that arrived since the last one. The bytes
/// before `pos` must not change between calls.
#[derive(Debug)]
pub struct ChunkDecoder {
    out: Vec<u8>,
    pos: usize,
    state: DecodeState,
}

impl Default for ChunkDecoder {
    fn default() -> ChunkDecoder {
        ChunkDecoder::new()
    }
}

impl ChunkDecoder {
    /// A decoder positioned at the start of a chunked stream.
    pub fn new() -> ChunkDecoder {
        ChunkDecoder {
            out: Vec::new(),
            pos: 0,
            state: DecodeState::SizeLine,
        }
    }

    /// Resume decoding against `data` (a stable, growing buffer). Returns
    /// `Complete` at most once; the decoder is spent afterwards.
    pub fn advance(&mut self, data: &[u8]) -> ChunkStatus {
        loop {
            match self.state {
                DecodeState::SizeLine => {
                    let Some(line_len) = find_crlf(&data[self.pos..]) else {
                        return ChunkStatus::Incomplete;
                    };
                    let Ok(size_text) = std::str::from_utf8(&data[self.pos..self.pos + line_len])
                    else {
                        return ChunkStatus::Invalid;
                    };
                    // Chunk extensions (";ext=…") are allowed and ignored.
                    let size_field = size_text.split(';').next().unwrap_or("").trim();
                    let Ok(size) = usize::from_str_radix(size_field, 16) else {
                        return ChunkStatus::Invalid;
                    };
                    self.pos += line_len + 2;
                    self.state = if size == 0 {
                        DecodeState::Terminator
                    } else {
                        DecodeState::Data { remaining: size }
                    };
                }
                DecodeState::Data { remaining } => {
                    let take = remaining.min(data.len() - self.pos);
                    self.out.extend_from_slice(&data[self.pos..self.pos + take]);
                    self.pos += take;
                    if take < remaining {
                        self.state = DecodeState::Data {
                            remaining: remaining - take,
                        };
                        return ChunkStatus::Incomplete;
                    }
                    self.state = DecodeState::DataCrlf;
                }
                DecodeState::DataCrlf => {
                    if data.len() < self.pos + 2 {
                        return ChunkStatus::Incomplete;
                    }
                    if &data[self.pos..self.pos + 2] != b"\r\n" {
                        return ChunkStatus::Invalid;
                    }
                    self.pos += 2;
                    self.state = DecodeState::SizeLine;
                }
                DecodeState::Terminator => {
                    // No trailers supported: the stream ends with a bare CRLF.
                    if data.len() < self.pos + 2 {
                        return ChunkStatus::Incomplete;
                    }
                    if &data[self.pos..self.pos + 2] != b"\r\n" {
                        return ChunkStatus::Invalid;
                    }
                    self.pos += 2;
                    return ChunkStatus::Complete(std::mem::take(&mut self.out), self.pos);
                }
            }
        }
    }
}

fn find_crlf(data: &[u8]) -> Option<usize> {
    data.windows(2).position(|w| w == b"\r\n")
}

/// A persistent HTTP/1.1 connection: keep-alive reuse, request pipelining,
/// and chunked-response decoding.
///
/// Requests are written with [`HttpConnection::send_get`] and read back (in
/// order) with [`HttpConnection::read_response`]; interleaving several sends
/// before the first read pipelines them on the one connection.
pub struct HttpConnection {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpConnection {
    /// Open a connection to the server.
    pub fn open(addr: SocketAddr) -> std::io::Result<HttpConnection> {
        let stream = TcpStream::connect(addr)?;
        // Requests are single small writes; Nagle would queue the next
        // pipelined request behind the previous response's ACK.
        stream.set_nodelay(true)?;
        Ok(HttpConnection {
            stream,
            buf: Vec::new(),
        })
    }

    /// Write a keep-alive GET without reading the response.
    pub fn send_get(&mut self, path: &str) -> std::io::Result<()> {
        self.stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())?;
        self.stream.flush()
    }

    /// Write several keep-alive GETs in a single TCP write — a true
    /// pipelined burst that reaches the server back-to-back. Responses are
    /// read (in order) with [`HttpConnection::read_response`].
    pub fn send_get_burst(&mut self, paths: &[&str]) -> std::io::Result<()> {
        let mut burst = String::new();
        for path in paths {
            burst.push_str(&format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n"));
        }
        self.stream.write_all(burst.as_bytes())?;
        self.stream.flush()
    }

    /// GET on the persistent connection: send, then read the response.
    pub fn get(&mut self, path: &str) -> std::io::Result<CgiResponse> {
        self.send_get(path)?;
        self.read_response()
    }

    /// Read the next response off the connection.
    pub fn read_response(&mut self) -> std::io::Result<CgiResponse> {
        self.read_response_timed().map(|(resp, _)| resp)
    }

    /// Read the next response, also reporting time-to-first-byte: how long
    /// until the first response byte arrived (zero if already buffered).
    pub fn read_response_timed(&mut self) -> std::io::Result<(CgiResponse, Duration)> {
        let started = Instant::now();
        let mut ttfb = if self.buf.is_empty() {
            None
        } else {
            Some(Duration::ZERO)
        };
        // Once a chunked head is seen, the decoder resumes where it left
        // off on every socket fill instead of rescanning the whole buffer
        // (which is quadratic on multi-megabyte streamed reports).
        let mut streaming: Option<(CgiResponse, usize, ChunkDecoder)> = None;
        loop {
            if streaming.is_none() {
                if let Some(head_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                    let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
                    let (status, content_type, headers, chunked, _) = parse_head(&head);
                    if chunked {
                        let shell = CgiResponse {
                            status,
                            content_type,
                            body: String::new(),
                            headers,
                        };
                        streaming = Some((shell, head_end + 4, ChunkDecoder::new()));
                    }
                }
            }
            if let Some((_, body_start, decoder)) = streaming.as_mut() {
                let status = decoder.advance(&self.buf[*body_start..]);
                match status {
                    ChunkStatus::Complete(bytes, used) => {
                        let (mut resp, body_start, _) = streaming.take().unwrap();
                        resp.body = String::from_utf8_lossy(&bytes).into_owned();
                        self.buf.drain(..body_start + used);
                        return Ok((resp, ttfb.unwrap_or_else(|| started.elapsed())));
                    }
                    ChunkStatus::Incomplete => {}
                    ChunkStatus::Invalid => {
                        // Treat a corrupt stream as consuming the rest.
                        let (mut resp, body_start, _) = streaming.take().unwrap();
                        resp.body = String::from_utf8_lossy(&self.buf[body_start..]).into_owned();
                        self.buf.clear();
                        return Ok((resp, ttfb.unwrap_or_else(|| started.elapsed())));
                    }
                }
            } else if let Some((resp, consumed)) = try_parse_response(&self.buf) {
                self.buf.drain(..consumed);
                return Ok((resp, ttfb.unwrap_or_else(|| started.elapsed())));
            }
            let mut chunk = [0u8; 8192];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                // Connection closed: the body ran to EOF (no framing).
                if self.buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    let text = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    return Ok((
                        parse_response(&text),
                        ttfb.unwrap_or_else(|| started.elapsed()),
                    ));
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a complete response",
                ));
            }
            if ttfb.is_none() {
                ttfb = Some(started.elapsed());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Try to parse one complete, framed response from the front of `buf`,
/// returning it and the bytes it consumed. `None` means more bytes are
/// needed (including the no-framing read-to-EOF case).
fn try_parse_response(buf: &[u8]) -> Option<(CgiResponse, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let (status, content_type, headers, chunked, content_length) = parse_head(&head);
    let body_start = head_end + 4;
    let (body, consumed) = if chunked {
        match decode_chunked(&buf[body_start..]) {
            ChunkStatus::Complete(bytes, used) => (
                String::from_utf8_lossy(&bytes).into_owned(),
                body_start + used,
            ),
            ChunkStatus::Incomplete => return None,
            // Treat a corrupt stream as consuming the rest of the buffer.
            ChunkStatus::Invalid => (
                String::from_utf8_lossy(&buf[body_start..]).into_owned(),
                buf.len(),
            ),
        }
    } else if let Some(n) = content_length.or_else(|| (status == 304).then_some(0)) {
        if buf.len() < body_start + n {
            return None;
        }
        (
            String::from_utf8_lossy(&buf[body_start..body_start + n]).into_owned(),
            body_start + n,
        )
    } else {
        return None; // unframed: only EOF delimits it
    };
    Some((
        CgiResponse {
            status,
            content_type,
            body,
            headers,
        },
        consumed,
    ))
}

/// The user's interactions with a form before clicking Submit.
#[derive(Debug, Clone, Default)]
pub struct FormFill {
    texts: Vec<(String, String)>,
    checks: Vec<(String, String, bool)>, // (name, value, checked)
    radios: Vec<(String, String)>,       // (name, chosen value)
    selections: Vec<(String, Vec<String>)>,
}

impl FormFill {
    /// No interactions: submit the form's default state.
    pub fn defaults() -> FormFill {
        FormFill::default()
    }

    /// Type into a text field.
    pub fn text(mut self, name: &str, value: &str) -> FormFill {
        self.texts.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Check or uncheck the checkbox `name` whose VALUE is `value`.
    pub fn check(mut self, name: &str, value: &str, checked: bool) -> FormFill {
        self.checks
            .push((name.to_owned(), value.to_owned(), checked));
        self
    }

    /// Pick the radio button of group `name` with VALUE `value`.
    pub fn radio(mut self, name: &str, value: &str) -> FormFill {
        self.radios.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Select exactly these option values in the SELECT named `name`.
    pub fn select(mut self, name: &str, values: &[&str]) -> FormFill {
        self.selections.push((
            name.to_owned(),
            values.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Compute the submission pairs for `form` in document order, per §2.2.
    pub fn submission(&self, form: &Form) -> QueryString {
        let mut q = QueryString::new();
        for control in &form.controls {
            match control {
                FormControl::Input {
                    kind,
                    name,
                    value,
                    checked,
                } => match kind.as_str() {
                    "checkbox" => {
                        let ctl_value = value.clone().unwrap_or_else(|| "on".into());
                        let state = self
                            .checks
                            .iter()
                            .rev()
                            .find(|(n, v, _)| n == name && *v == ctl_value)
                            .map(|(_, _, c)| *c)
                            .unwrap_or(*checked);
                        if state {
                            q.push(name.clone(), ctl_value);
                        }
                    }
                    "radio" => {
                        let ctl_value = value.clone().unwrap_or_default();
                        let chosen = self
                            .radios
                            .iter()
                            .rev()
                            .find(|(n, _)| n == name)
                            .map(|(_, v)| v.as_str());
                        let on = match chosen {
                            Some(v) => v == ctl_value,
                            None => *checked,
                        };
                        if on {
                            q.push(name.clone(), ctl_value);
                        }
                    }
                    "submit" | "reset" | "button" | "image" => {}
                    _ => {
                        // text, hidden, password, ...
                        let typed = self
                            .texts
                            .iter()
                            .rev()
                            .find(|(n, _)| n == name)
                            .map(|(_, v)| v.clone());
                        q.push(
                            name.clone(),
                            typed.unwrap_or_else(|| value.clone().unwrap_or_default()),
                        );
                    }
                },
                FormControl::Select { name, options, .. } => {
                    let chosen = self
                        .selections
                        .iter()
                        .rev()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v.clone());
                    match chosen {
                        Some(values) => {
                            // Submit in option (document) order, like a browser.
                            for (value, _) in options {
                                if values.iter().any(|v| v == value) {
                                    q.push(name.clone(), value.clone());
                                }
                            }
                        }
                        None => {
                            for (value, selected) in options {
                                if *selected {
                                    q.push(name.clone(), value.clone());
                                }
                            }
                        }
                    }
                }
                FormControl::TextArea { name, value } => {
                    let typed = self
                        .texts
                        .iter()
                        .rev()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v.clone());
                    q.push(name.clone(), typed.unwrap_or_else(|| value.clone()));
                }
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE2: &str = r#"
<FORM METHOD="post" ACTION="/cgi-bin/db2www.exe/urlquery.d2w/report">
<INPUT TYPE="text" NAME="SEARCH" SIZE=20>
<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED> URL<br>
<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED> Title<br>
<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes">Description
<SELECT NAME="DBFIELD" SIZE=3 MULTIPLE>
<OPTION VALUE="url">URL
<OPTION VALUE="title" SELECTED> Title
<OPTION VALUE="desc">Description
</SELECT>
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="YES"> Yes
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="" CHECKED> No
<INPUT TYPE="submit" VALUE="Submit Query">
</FORM>"#;

    #[test]
    fn default_submission_matches_paper_figure3() {
        // §2.2 lists the exact variable set for the Figure 3 default state,
        // with the user having additionally selected desc in the SELECT:
        //   SEARCH="" USE_URL="yes" USE_TITLE="yes" USE_DESC=""
        //   DBFIELD="title" DBFIELD="desc" SHOWSQL=""
        let form = Form::parse_first(FIGURE2).unwrap();
        let fill = FormFill::defaults().select("DBFIELD", &["title", "desc"]);
        let q = fill.submission(&form);
        assert_eq!(
            q.to_wire(),
            "SEARCH=&USE_URL=yes&USE_TITLE=yes&DBFIELD=title&DBFIELD=desc&SHOWSQL="
        );
    }

    #[test]
    fn typing_and_unchecking() {
        let form = Form::parse_first(FIGURE2).unwrap();
        let fill = FormFill::defaults()
            .text("SEARCH", "ib")
            .check("USE_TITLE", "yes", false)
            .check("USE_DESC", "yes", true)
            .radio("SHOWSQL", "YES");
        let q = fill.submission(&form);
        assert_eq!(q.get("SEARCH"), Some("ib"));
        assert_eq!(q.get("USE_TITLE"), None); // unchecked sends nothing
        assert_eq!(q.get("USE_DESC"), Some("yes"));
        assert_eq!(q.get("SHOWSQL"), Some("YES"));
    }

    #[test]
    fn radio_group_single_value() {
        let form = Form::parse_first(FIGURE2).unwrap();
        let q = FormFill::defaults().submission(&form);
        assert_eq!(q.get_all("SHOWSQL"), vec![""]);
    }

    #[test]
    fn select_respects_document_order() {
        let form = Form::parse_first(FIGURE2).unwrap();
        let q = FormFill::defaults()
            .select("DBFIELD", &["desc", "url"]) // user clicks in any order
            .submission(&form);
        assert_eq!(q.get_all("DBFIELD"), vec!["url", "desc"]);
    }

    #[test]
    fn parse_response_splits_head_body() {
        let r = parse_response("HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\n<p>hi");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "<p>hi");
    }

    #[test]
    fn parse_response_decodes_chunked() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\
                   Transfer-Encoding: chunked\r\n\r\n6\r\n<p>hi \r\n5\r\nthere\r\n0\r\n\r\n";
        let r = parse_response(raw);
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "<p>hi there");
    }

    #[test]
    fn chunked_round_trip_skips_empty_pieces() {
        let enc = encode_chunked(&[b"hello ", b"", b"world"]);
        match decode_chunked(&enc) {
            ChunkStatus::Complete(body, used) => {
                assert_eq!(body, b"hello world");
                assert_eq!(used, enc.len());
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn chunked_decode_wants_more_until_terminated() {
        let enc = encode_chunked(&[b"abc", b"defg"]);
        for cut in 0..enc.len() {
            assert_eq!(
                decode_chunked(&enc[..cut]),
                ChunkStatus::Incomplete,
                "cut {cut}"
            );
        }
        assert_eq!(decode_chunked(b"zz\r\n"), ChunkStatus::Invalid);
    }

    #[test]
    fn framed_responses_parse_incrementally_for_pipelining() {
        let two = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nabc\
                    HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nno";
        let (first, used) = try_parse_response(two).expect("first response");
        assert_eq!(first.status, 200);
        assert_eq!(first.body, "abc");
        let (second, used2) = try_parse_response(&two[used..]).expect("second response");
        assert_eq!(second.status, 404);
        assert_eq!(second.body, "no");
        assert_eq!(used + used2, two.len());
    }
}
