//! The readiness loop that multiplexes idle keep-alive connections.
//!
//! One thread owns the listener and every parked connection, registered with
//! the [`crate::net::Poller`]. A connection only leaves the loop when a
//! complete request has been parsed from its buffer (or it must be rejected),
//! so slow and idle peers cost a file descriptor and a buffer — never a
//! worker thread. Workers hand keep-alive connections back through
//! `ServerInner::returned` plus an eventfd wake.
//!
//! Timeout policy, enforced by a sweep on every loop tick:
//! - empty buffer + idle past `keepalive` → silent close (idle expiry);
//! - partial request past `io_timeout` → `408 Request Timeout` (slowloris);
//! - open connections at `max_conns` → refuse new accepts with 503;
//! - work queue full → shed with `503 Retry-After: 1`, as the thread pool
//!   always has.

use crate::http::{
    parse_request, write_response, HttpRequest, ParseStatus, ServerConfig, ServerInner,
};
use crate::net::{EpollEvent, Poller, EPOLLIN, EPOLLRDHUP};
use crate::request::CgiResponse;
use std::collections::HashMap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The listener's epoll token; parked connections get tokens from 1 up.
const LISTENER_TOKEN: u64 = 0;

/// One client connection and its accumulated, not-yet-parsed bytes.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Bytes read but not yet consumed by the parser (partial request, or
    /// pipelined successors).
    pub(crate) buf: Vec<u8>,
    /// Requests already served on this connection.
    pub(crate) served: u64,
    /// Last accept, read, or hand-back; drives the idle/slowloris sweeps.
    pub(crate) last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            served: 0,
            last_activity: Instant::now(),
        }
    }

    /// Switch the socket to blocking mode with the worker IO timeouts; the
    /// event loop runs it nonblocking, workers run it blocking.
    pub(crate) fn prepare_blocking(&self, config: &ServerConfig) -> std::io::Result<()> {
        self.stream.set_nonblocking(false)?;
        self.stream.set_read_timeout(Some(config.io_timeout))?;
        self.stream.set_write_timeout(Some(config.io_timeout))?;
        Ok(())
    }
}

/// What the event loop hands the worker pool.
pub(crate) enum Work {
    /// A fully parsed request on its connection.
    Request(Conn, HttpRequest),
    /// A protocol rejection (400/408/413) to write before closing.
    Reject(Conn, CgiResponse),
}

/// Close a tracked connection, keeping the open-connections gauge honest.
/// Every `Conn` must end here (or in [`shed_conn`]).
pub(crate) fn close_conn(conn: Conn) {
    dbgw_obs::metrics().open_connections.dec();
    drop(conn);
}

/// Queue-full shed: best-effort 503 with `Retry-After`, then close.
fn shed_conn(conn: Conn) {
    let _ = conn.stream.set_nonblocking(false);
    let _ = conn
        .stream
        .set_write_timeout(Some(Duration::from_millis(250)));
    dbgw_obs::metrics().open_connections.dec();
    let mut stream = conn.stream;
    let resp = CgiResponse::error(503, "server busy, try again shortly");
    let _ = write_response(&mut stream, &resp, None, Some(1), false);
}

/// Connection-cap refusal for sockets never admitted into the loop.
fn refuse(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let resp = CgiResponse::error(503, "connection limit reached, try again shortly");
    let _ = write_response(&mut stream, &resp, None, Some(1), false);
}

/// Hand work to the pool, or shed it if the bounded queue is full.
fn submit(inner: &Arc<ServerInner>, work: Work) {
    let notify = {
        let mut q = inner.work.lock();
        if q.len() >= inner.config.queue {
            drop(q);
            dbgw_obs::metrics().requests_shed.inc();
            let conn = match work {
                Work::Request(conn, _) => conn,
                Work::Reject(conn, _) => conn,
            };
            shed_conn(conn);
            false
        } else {
            q.push_back(work);
            dbgw_obs::metrics().queue_depth.set(q.len() as i64);
            true
        }
    };
    if notify {
        inner.ready.notify_one();
    }
}

enum Driven {
    /// Still waiting for a complete request; return it to epoll.
    Park(Conn),
    /// Submitted to the pool, rejected, or closed — the loop is done with it.
    Done,
}

/// Read whatever the socket has, then try to parse one request.
fn drive(inner: &Arc<ServerInner>, mut conn: Conn) -> Driven {
    // A request with a max-size body plus its headers must fit; anything
    // still incomplete past this is a flood.
    let buf_cap = inner.config.max_body + 64 * 1024;
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                if conn.buf.is_empty() {
                    close_conn(conn); // clean close between requests
                } else {
                    let resp = CgiResponse::error(400, "malformed request");
                    submit(inner, Work::Reject(conn, resp));
                }
                return Driven::Done;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
                if conn.buf.len() > buf_cap {
                    break;
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                close_conn(conn);
                return Driven::Done;
            }
        }
    }
    match parse_request(&mut conn.buf, &inner.config) {
        ParseStatus::Incomplete => {
            if conn.buf.len() > buf_cap {
                let resp = CgiResponse::error(413, "request larger than the configured limit");
                submit(inner, Work::Reject(conn, resp));
                Driven::Done
            } else {
                Driven::Park(conn)
            }
        }
        ParseStatus::Request(req) => {
            submit(inner, Work::Request(conn, req));
            Driven::Done
        }
        ParseStatus::Malformed => {
            let resp = CgiResponse::error(400, "malformed request");
            submit(inner, Work::Reject(conn, resp));
            Driven::Done
        }
        ParseStatus::TooLarge => {
            let resp = CgiResponse::error(413, "request larger than the configured limit");
            submit(inner, Work::Reject(conn, resp));
            Driven::Done
        }
    }
}

/// Register the connection for readiness under a fresh token.
fn park(
    inner: &Arc<ServerInner>,
    conn: Conn,
    parked: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    let token = *next_token;
    *next_token += 1;
    if *next_token == Poller::WAKE_TOKEN {
        *next_token = 1;
    }
    match inner
        .poller
        .register(conn.stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP)
    {
        Ok(()) => {
            parked.insert(token, conn);
        }
        Err(_) => close_conn(conn),
    }
}

/// Accept until the listener would block.
fn accept_burst(
    inner: &Arc<ServerInner>,
    listener: &TcpListener,
    parked: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    let m = dbgw_obs::metrics();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if m.open_connections.get() >= inner.config.max_conns as i64 {
                    refuse(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Responses are written in few large segments; disabling
                // Nagle keeps keep-alive turnarounds off the delayed-ACK
                // clock (~40 ms per stall otherwise).
                let _ = stream.set_nodelay(true);
                m.open_connections.inc();
                match drive(inner, Conn::new(stream)) {
                    Driven::Park(conn) => park(inner, conn, parked, next_token),
                    Driven::Done => {}
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Expire idle keep-alive connections and time out half-sent requests.
fn sweep(inner: &Arc<ServerInner>, parked: &mut HashMap<u64, Conn>) {
    let now = Instant::now();
    let mut expired = Vec::new();
    for (token, conn) in parked.iter() {
        let idle = now.duration_since(conn.last_activity);
        let limit = if conn.buf.is_empty() {
            inner.config.keepalive
        } else {
            inner.config.io_timeout
        };
        if idle >= limit {
            expired.push(*token);
        }
    }
    for token in expired {
        let Some(conn) = parked.remove(&token) else {
            continue;
        };
        let _ = inner.poller.deregister(conn.stream.as_raw_fd());
        if conn.buf.is_empty() {
            close_conn(conn); // idle expiry: nothing owed to the peer
        } else {
            // Slowloris: a partial request outlived the IO timeout.
            let resp = CgiResponse::error(408, "request timed out");
            submit(inner, Work::Reject(conn, resp));
        }
    }
}

/// The loop body: owned by one thread for the server's lifetime.
pub(crate) fn event_loop(inner: &Arc<ServerInner>, listener: TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    if inner
        .poller
        .register(listener.as_raw_fd(), LISTENER_TOKEN, EPOLLIN)
        .is_err()
    {
        return;
    }
    let m = dbgw_obs::metrics();
    let mut parked: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut events = [EpollEvent::zeroed(); 64];
    loop {
        // 50 ms tick bounds both sweep latency and stop-flag latency.
        let n = inner.poller.wait(&mut events, 50).unwrap_or(0);
        for ev in events.iter().take(n) {
            let token = ev.data; // copy out: the struct is packed on x86-64
            if token == LISTENER_TOKEN {
                accept_burst(inner, &listener, &mut parked, &mut next_token);
            } else if token == Poller::WAKE_TOKEN {
                inner.poller.drain_wake();
            } else if let Some(conn) = parked.remove(&token) {
                let _ = inner.poller.deregister(conn.stream.as_raw_fd());
                match drive(inner, conn) {
                    Driven::Park(conn) => park(inner, conn, &mut parked, &mut next_token),
                    Driven::Done => {}
                }
            }
        }
        // Re-park (or re-drive) keep-alive connections workers handed back.
        let returned: Vec<Conn> = inner.returned.lock().drain(..).collect();
        for mut conn in returned {
            conn.last_activity = Instant::now();
            match drive(inner, conn) {
                Driven::Park(conn) => park(inner, conn, &mut parked, &mut next_token),
                Driven::Done => {}
            }
        }
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        sweep(inner, &mut parked);
        m.idle_connections
            .set(parked.values().filter(|c| c.buf.is_empty()).count() as i64);
    }
    let _ = inner.poller.deregister(listener.as_raw_fd());
    for (_, conn) in parked.drain() {
        let _ = inner.poller.deregister(conn.stream.as_raw_fd());
        close_conn(conn);
    }
    m.idle_connections.set(0);
}
