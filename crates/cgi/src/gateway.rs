//! The gateway program itself: the `db2www` CGI application of §4.
//!
//! Invoked as `/cgi-bin/db2www/{macro-file}/{cmd}[?name=val&…]`, it loads the
//! named macro, processes it in `input` or `report` mode with the HTML input
//! variables from the request, and returns the generated page.

use crate::bridge::MiniSqlDatabase;
use crate::log::{SlowQuery, SlowQueryLog};
use crate::request::{CgiRequest, CgiResponse, Method};
use crate::session::{SessionManager, END_VAR, SESSION_ID_VAR, SESSION_VAR};
use crate::sync::RwLock;
use dbgw_core::db::{Database, DbError, DbRows};
use dbgw_core::security::safe_macro_name;
use dbgw_core::{
    parse_macro, Engine, EngineConfig, MacroError, MacroFile, Mode, PageSink, TxnMode,
};
use dbgw_obs::{CancelReason, Clock, RequestCtx, StdClock, Trace};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Reserved input variable carrying the request's correlation id into macro
/// text: `$(DTW_REQUEST_ID)` works in `%SQL_MESSAGE` handlers and reports.
pub const REQUEST_ID_VAR: &str = "DTW_REQUEST_ID";

/// A [`PageSink`] the gateway can hand to the HTTP server's streaming
/// response writer: besides accepting page text it reports whether response
/// bytes have already been committed to the wire, and surrenders the buffered
/// text when they have not (so the caller can fall back to an ordinary
/// complete response with `ETag`/`Content-Length` semantics).
pub trait BodySink: PageSink {
    /// Have any response bytes already been sent to the client?
    fn committed(&self) -> bool;
    /// Take the text buffered so far (only meaningful while uncommitted).
    fn take(&mut self) -> String;
}

/// The trivial buffered sink: never commits, accumulates everything.
impl BodySink for String {
    fn committed(&self) -> bool {
        false
    }
    fn take(&mut self) -> String {
        std::mem::take(self)
    }
}

/// How [`Gateway::handle_streaming`] answered a request.
#[derive(Debug)]
pub enum Handled {
    /// The page stayed under the sink's watermark (or errored before any
    /// byte went out): a complete response for the caller to frame and send.
    Full(CgiResponse),
    /// The response body went out incrementally through the sink. `failed`
    /// means rendering aborted after bytes were committed, so the stream is
    /// truncated and the connection must not be reused.
    Streamed {
        /// Rendering aborted mid-stream (the page is incomplete).
        failed: bool,
    },
}

/// Supplies a fresh DBMS connection per request, the way the CGI model
/// re-connected in every process.
pub trait ConnectionSource: Send + Sync {
    /// Open a connection.
    fn connect(&self) -> Box<dyn Database + Send>;

    /// Open a connection bound to a request context. Sources whose executor
    /// supports cooperative cancellation override this; the default ignores
    /// the context (the engine's own cancellation points still apply).
    fn connect_ctx(&self, ctx: &Arc<RequestCtx>) -> Box<dyn Database + Send> {
        let _ = ctx;
        self.connect()
    }
}

impl ConnectionSource for minisql::Database {
    fn connect(&self) -> Box<dyn Database + Send> {
        Box::new(MiniSqlDatabase::connect(self))
    }

    fn connect_ctx(&self, ctx: &Arc<RequestCtx>) -> Box<dyn Database + Send> {
        Box::new(MiniSqlDatabase::connect_ctx(self, ctx.clone()))
    }
}

/// Closure-based source for tests.
pub struct FnSource<F>(pub F);

impl<F> ConnectionSource for FnSource<F>
where
    F: Fn() -> Box<dyn Database + Send> + Send + Sync,
{
    fn connect(&self) -> Box<dyn Database + Send> {
        (self.0)()
    }
}

/// Per-request tracing and slow-query configuration.
///
/// The defaults come from the environment, so the stock binaries honor:
///
/// * `DBGW_TRACE=1` — append each request's trace to the page as an HTML
///   comment (and record it at all);
/// * `DBGW_TRACE_FILE=<path>` — also append every trace to `<path>` as
///   JSON lines (implies tracing even without `DBGW_TRACE`);
/// * `DBGW_SLOW_MS=<n>` — log SQL statements slower than `n` milliseconds
///   to the gateway's slow-query log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceOptions {
    /// Append the rendered trace tree to report output as an HTML comment.
    pub annotate: bool,
    /// Append every trace to this file as JSON lines.
    pub trace_file: Option<PathBuf>,
    /// Slow-query threshold in milliseconds; `None` disables the slow log.
    pub slow_ms: Option<u64>,
}

impl TraceOptions {
    /// Read `DBGW_TRACE`, `DBGW_TRACE_FILE`, and `DBGW_SLOW_MS`.
    pub fn from_env() -> TraceOptions {
        TraceOptions {
            annotate: std::env::var("DBGW_TRACE")
                .map(|v| v == "1")
                .unwrap_or(false),
            trace_file: std::env::var("DBGW_TRACE_FILE").ok().map(PathBuf::from),
            slow_ms: std::env::var("DBGW_SLOW_MS")
                .ok()
                .and_then(|v| v.parse().ok()),
        }
    }

    /// Everything off, regardless of the environment.
    pub fn disabled() -> TraceOptions {
        TraceOptions::default()
    }

    /// Should requests record a trace at all?
    pub fn tracing(&self) -> bool {
        self.annotate || self.trace_file.is_some()
    }

    fn slow_ns(&self) -> Option<u64> {
        self.slow_ms.map(|ms| ms.saturating_mul(1_000_000))
    }
}

/// A macro as installed: the parsed form served on the fast path, plus the
/// include-expanded source so trace mode can re-parse per request (surfacing
/// the parse cost every CGI invocation actually paid in 1996).
struct StoredMacro {
    parsed: Arc<MacroFile>,
    source: Arc<String>,
}

/// Wraps a request's connection to time every statement: latency goes to the
/// `sql_latency_ns` histogram, statements over the threshold go to the
/// slow-query log tagged with the current request id.
struct SqlMeter {
    inner: Box<dyn Database + Send>,
    clock: Arc<dyn Clock>,
    slow_ns: Option<u64>,
    slow_log: SlowQueryLog,
}

impl Database for SqlMeter {
    fn execute(&mut self, sql: &str) -> Result<DbRows, DbError> {
        let start = self.clock.now_ns();
        let result = self.inner.execute(sql);
        let dur_ns = self.clock.now_ns().saturating_sub(start);
        dbgw_obs::metrics().sql_latency_ns.observe_ns(dur_ns);
        // Taken unconditionally so one statement's actuals never leak into a
        // later statement's slow-log entry.
        let plan = minisql::analyze::take_last_summary();
        if self.slow_ns.is_some_and(|t| dur_ns >= t) {
            dbgw_obs::metrics().slow_queries.inc();
            self.slow_log.record(SlowQuery {
                request_id: dbgw_obs::current_request_id(),
                statement: dbgw_cache::digest_sql(sql),
                dur_ns,
                sqlcode: match &result {
                    Ok(rows) => rows.sqlcode(),
                    Err(e) => e.code,
                },
                plan,
            });
        }
        result
    }

    fn begin(&mut self) -> Result<(), DbError> {
        self.inner.begin()
    }

    fn commit(&mut self) -> Result<(), DbError> {
        self.inner.commit()
    }

    fn rollback(&mut self) -> Result<(), DbError> {
        self.inner.rollback()
    }
}

/// The macro store + engine: one of these serves all requests.
pub struct Gateway {
    macros: RwLock<HashMap<String, StoredMacro>>,
    config: EngineConfig,
    source: Box<dyn ConnectionSource>,
    sessions: Option<SessionManager>,
    trace: TraceOptions,
    clock: Arc<dyn Clock>,
    slow_log: SlowQueryLog,
    deadline_ms: Option<u64>,
    /// Answer conditional GETs with deterministic `ETag`s / `304`s and emit
    /// `Cache-Control` derived from the macro's cacheability. Follows
    /// `DBGW_CACHE` (the whole subsystem's master switch) by default.
    http_cache: bool,
    /// `DBGW_CACHE_TTL_MS`, echoed to clients as `Cache-Control: max-age`.
    cache_ttl_ms: Option<u64>,
    /// Metric time series, ticked opportunistically after each request on
    /// the gateway's clock (`DBGW_SAMPLE_MS` / `DBGW_SAMPLE_CAP`).
    sampler: Arc<dbgw_obs::series::Sampler>,
    /// SLO objectives evaluated against the sampler's ring on `/stats`
    /// (`DBGW_SLO_P99_MS` / `DBGW_SLO_ERROR_BUDGET`).
    slo: dbgw_obs::slo::SloConfig,
}

impl Gateway {
    /// Gateway over a connection source with default engine config.
    pub fn new(source: impl ConnectionSource + 'static) -> Gateway {
        Gateway::with_config(source, EngineConfig::default())
    }

    /// Gateway with explicit engine configuration. Trace options come from
    /// the environment (see [`TraceOptions::from_env`]).
    pub fn with_config(source: impl ConnectionSource + 'static, config: EngineConfig) -> Gateway {
        let cache_config = dbgw_cache::CacheConfig::from_env();
        let trace = TraceOptions::from_env();
        if trace.slow_ms.is_some() {
            // Collect plan actuals for every SELECT so slow-log entries can
            // carry an EXPLAIN ANALYZE summary. Enable-only: another gateway
            // in the process may rely on it too.
            minisql::analyze::set_passive_capture(true);
        }
        Gateway {
            macros: RwLock::new(HashMap::new()),
            config,
            source: Box::new(source),
            sessions: None,
            trace,
            clock: Arc::new(StdClock::new()),
            slow_log: SlowQueryLog::new(),
            deadline_ms: deadline_ms_from_env(),
            http_cache: cache_config.enabled,
            cache_ttl_ms: cache_config.ttl_ms,
            sampler: Arc::new(dbgw_obs::series::Sampler::from_env()),
            slo: dbgw_obs::slo::SloConfig::from_env(),
        }
    }

    /// Override the HTTP conditional-GET layer (`ETag`/`304`/`Cache-Control`)
    /// independently of the environment.
    pub fn with_http_cache(mut self, enabled: bool) -> Gateway {
        self.http_cache = enabled;
        self
    }

    /// Override the per-request wall-clock deadline (`None` disables it).
    /// The default comes from `DBGW_DEADLINE_MS`.
    pub fn with_deadline_ms(mut self, deadline_ms: Option<u64>) -> Gateway {
        self.deadline_ms = deadline_ms;
        self
    }

    /// The per-request deadline in milliseconds, if one is configured.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Override the trace/slow-query configuration (benches force
    /// [`TraceOptions::disabled`]; tests force specific settings).
    pub fn with_trace(mut self, trace: TraceOptions) -> Gateway {
        if trace.slow_ms.is_some() {
            minisql::analyze::set_passive_capture(true);
        }
        self.trace = trace;
        self
    }

    /// Override the metric sampler (tests pin the interval/capacity and
    /// drive it with a [`dbgw_obs::TestClock`] via [`Gateway::with_clock`]).
    pub fn with_sampler(mut self, sampler: Arc<dbgw_obs::series::Sampler>) -> Gateway {
        self.sampler = sampler;
        self
    }

    /// Override the SLO objectives independently of the environment.
    pub fn with_slo(mut self, slo: dbgw_obs::slo::SloConfig) -> Gateway {
        self.slo = slo;
        self
    }

    /// The metric time-series sampler (rendered as sparklines on `/stats`).
    pub fn sampler(&self) -> &Arc<dbgw_obs::series::Sampler> {
        &self.sampler
    }

    /// The active SLO objectives.
    pub fn slo_config(&self) -> dbgw_obs::slo::SloConfig {
        self.slo
    }

    /// Override the monotonic clock (tests inject a [`dbgw_obs::TestClock`]
    /// for deterministic span durations and slow-query detection).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Gateway {
        self.clock = clock;
        self
    }

    /// The active trace/slow-query configuration.
    pub fn trace_options(&self) -> &TraceOptions {
        &self.trace
    }

    /// The slow-query log (statements over `DBGW_SLOW_MS`).
    pub fn slow_queries(&self) -> SlowQueryLog {
        self.slow_log.clone()
    }

    /// Enable conversational transactions (§5's future work): requests may
    /// open a cross-request transaction with `DTW_SESSION=new`, continue it
    /// with `DTW_SESSION=<id>`, and finish with `DTW_END=commit|abort`.
    /// Idle sessions roll back after `ttl`.
    pub fn enable_sessions(mut self, ttl: Duration) -> Gateway {
        self.sessions = Some(SessionManager::new(ttl));
        self
    }

    /// The session manager, when conversations are enabled.
    pub fn sessions(&self) -> Option<&SessionManager> {
        self.sessions.as_ref()
    }

    /// Install (or replace) a macro under `name` — the application developer
    /// "stores them in files (called macros) at the Web server".
    pub fn add_macro(&self, name: &str, source: &str) -> Result<(), MacroError> {
        let parsed = parse_macro(source)?;
        self.macros.write().insert(
            name.to_owned(),
            StoredMacro {
                parsed: Arc::new(parsed),
                source: Arc::new(source.to_owned()),
            },
        );
        Ok(())
    }

    /// Names of installed macros, sorted.
    pub fn macro_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.macros.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Load every `*.d2w` file in a directory as a macro, with `%INCLUDE`
    /// fragments resolved against the `*.hti` files in the same directory —
    /// the product's macro-directory deployment model. Returns the macro
    /// names loaded (sorted).
    pub fn load_macro_dir(&self, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
        use dbgw_core::MapResolver;
        let mut resolver = MapResolver::new();
        let mut macro_files = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if name.ends_with(".hti") {
                resolver.insert(&name, &std::fs::read_to_string(&path)?);
            } else if name.ends_with(".d2w") {
                macro_files.push((name, std::fs::read_to_string(&path)?));
            }
        }
        let mut loaded = Vec::new();
        for (name, source) in macro_files {
            // Expand includes once, so the stored source is self-contained
            // (trace mode re-parses it with no resolver in reach).
            let expanded = dbgw_core::expand_includes(&source, &resolver).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{name}: {e}"))
            })?;
            let parsed = parse_macro(&expanded).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{name}: {e}"))
            })?;
            self.macros.write().insert(
                name.clone(),
                StoredMacro {
                    parsed: Arc::new(parsed),
                    source: Arc::new(expanded),
                },
            );
            loaded.push(name);
        }
        loaded.sort();
        Ok(loaded)
    }

    /// Build the execution context for one request: correlation id, the
    /// gateway's clock, and the configured deadline.
    pub fn make_ctx(&self, request_id: u64) -> Arc<RequestCtx> {
        let mut ctx = RequestCtx::new(request_id, self.clock.clone());
        if let Some(ms) = self.deadline_ms {
            ctx = ctx.with_deadline_ms(ms);
        }
        Arc::new(ctx)
    }

    /// Handle one CGI invocation under a fresh request context.
    pub fn handle(&self, req: &CgiRequest) -> CgiResponse {
        self.handle_with_ctx(req, &self.make_ctx(req.request_id))
    }

    /// Handle one CGI invocation under the caller's request context (the
    /// HTTP server builds the context at the edge so cancellation covers the
    /// whole request, not just macro processing): dispatch under metrics +
    /// (optionally) a trace owned by this call, unless an enclosing binary
    /// already owns one.
    pub fn handle_with_ctx(&self, req: &CgiRequest, ctx: &Arc<RequestCtx>) -> CgiResponse {
        let m = dbgw_obs::metrics();
        m.requests.inc();
        let _id_guard = dbgw_obs::set_request_id(req.request_id);
        let start_ns = self.clock.now_ns();
        let owned = self.trace.tracing()
            && dbgw_obs::trace::start_trace(self.clock.clone(), req.request_id);
        let mut response = {
            let _span = dbgw_obs::trace::span("request");
            dbgw_obs::trace::note("path", &req.path_info);
            self.dispatch(req, ctx)
        };
        self.apply_http_caching(req, &mut response);
        let end_ns = self.clock.now_ns();
        m.request_latency_ns
            .observe_ns(end_ns.saturating_sub(start_ns));
        if response.status >= 400 {
            m.request_errors.inc();
        }
        // Offer the sampler the current time; it snapshots at most once per
        // configured interval (no background thread — the request path is
        // the scheduler, exactly like the 1996 CGI model's "do work only
        // when a request arrives").
        self.sampler.tick(end_ns / 1_000_000, m);
        if owned {
            if let Some(trace) = dbgw_obs::trace::finish_trace() {
                self.emit_trace(&trace, &mut response);
            }
        }
        response
    }

    /// Handle one CGI invocation with a streaming body sink: the same
    /// bookkeeping as [`Gateway::handle_with_ctx`], but report rows flush to
    /// the client as the executor yields them once the sink's watermark is
    /// crossed. Pages that stay under the watermark — and every error that
    /// strikes before the first flush — come back as [`Handled::Full`] with
    /// the usual caching/`ETag` treatment, so small pages are byte-identical
    /// to the buffered path.
    pub fn handle_streaming<S: BodySink>(
        &self,
        req: &CgiRequest,
        ctx: &Arc<RequestCtx>,
        sink: &mut S,
    ) -> Handled {
        let m = dbgw_obs::metrics();
        m.requests.inc();
        let _id_guard = dbgw_obs::set_request_id(req.request_id);
        let start_ns = self.clock.now_ns();
        let owned = self.trace.tracing()
            && dbgw_obs::trace::start_trace(self.clock.clone(), req.request_id);
        let outcome = {
            let _span = dbgw_obs::trace::span("request");
            dbgw_obs::trace::note("path", &req.path_info);
            self.dispatch_into(req, ctx, sink)
        };
        let trace = if owned {
            dbgw_obs::trace::finish_trace()
        } else {
            None
        };
        let mut handled = match outcome {
            Ok(()) if !sink.committed() => {
                let mut response = CgiResponse::html(sink.take());
                self.apply_http_caching(req, &mut response);
                Handled::Full(response)
            }
            Ok(()) => Handled::Streamed { failed: false },
            Err(response) if !sink.committed() => {
                // Discard any partial render; the error page replaces it.
                let _ = sink.take();
                Handled::Full(response)
            }
            Err(response) => {
                // Too late for an error page: bytes are on the wire. Mark
                // the truncation so the page is visibly incomplete, and let
                // the server close the connection.
                let _ = sink.push(&format!(
                    "\n<!-- request {} aborted mid-stream: error {} -->\n",
                    req.request_id, response.status
                ));
                Handled::Streamed { failed: true }
            }
        };
        let end_ns = self.clock.now_ns();
        m.request_latency_ns
            .observe_ns(end_ns.saturating_sub(start_ns));
        let status = match &handled {
            Handled::Full(response) => response.status,
            Handled::Streamed { failed } => {
                if *failed {
                    500
                } else {
                    200
                }
            }
        };
        if status >= 400 {
            m.request_errors.inc();
        }
        self.sampler.tick(end_ns / 1_000_000, m);
        if let Some(trace) = trace {
            match &mut handled {
                Handled::Full(response) => self.emit_trace(&trace, response),
                Handled::Streamed { .. } => {
                    if let Some(path) = &self.trace.trace_file {
                        let _ = trace.append_jsonl(path);
                    }
                    if self.trace.annotate {
                        let _ = sink.push(&trace_comment(&trace));
                    }
                }
            }
        }
        handled
    }

    /// Export one finished trace per the configured sinks.
    fn emit_trace(&self, trace: &Trace, response: &mut CgiResponse) {
        if let Some(path) = &self.trace.trace_file {
            let _ = trace.append_jsonl(path);
        }
        // A 304 must stay body-less; the JSONL sink above still records it.
        if self.trace.annotate && response.status != 304 {
            response.body.push_str(&trace_comment(trace));
        }
    }

    /// The HTTP caching layer: on a cacheable 200 GET, attach a deterministic
    /// `ETag` (FNV-1a over the rendered page) and a `Cache-Control` derived
    /// from the TTL knob; when the client's `If-None-Match` still matches,
    /// collapse the response to `304 Not Modified`. Non-cacheable macro pages
    /// are marked `no-store`.
    fn apply_http_caching(&self, req: &CgiRequest, response: &mut CgiResponse) {
        if !self.http_cache || req.method != Method::Get || response.status != 200 {
            return;
        }
        let Some(cacheable) = self.macro_cacheability(req) else {
            return;
        };
        if !cacheable {
            response
                .headers
                .push(("Cache-Control".into(), "no-store".into()));
            return;
        }
        let etag = format!(
            "\"{:016x}\"",
            dbgw_cache::fnv1a_64(response.body.as_bytes())
        );
        let cache_control = match self.cache_ttl_ms {
            Some(ms) => format!("max-age={}", ms.div_ceil(1000)),
            // Without a TTL the entry is always revalidated — which the
            // ETag makes a cheap 304 round trip.
            None => "no-cache".to_owned(),
        };
        if req
            .if_none_match
            .as_deref()
            .is_some_and(|header| etag_matches(header, &etag))
        {
            dbgw_obs::metrics().http_not_modified.inc();
            *response = CgiResponse::not_modified(&etag);
            response
                .headers
                .push(("Cache-Control".into(), cache_control));
            return;
        }
        response.headers.push(("ETag".into(), etag));
        response
            .headers
            .push(("Cache-Control".into(), cache_control));
    }

    /// Whether the page this request renders may be cached by clients:
    /// input forms always; report pages only when every `%SQL` section is a
    /// plain SELECT (a report that writes must re-execute on every GET);
    /// conversational-transaction requests never. `None` when the request
    /// does not resolve to an installed macro.
    fn macro_cacheability(&self, req: &CgiRequest) -> Option<bool> {
        let mut parts = req.path_info.trim_start_matches('/').splitn(2, '/');
        let macro_name = parts.next().unwrap_or("");
        let cmd = parts.next().unwrap_or("");
        let mode = Mode::from_command(cmd)?;
        if req
            .variables()
            .get(SESSION_VAR)
            .is_some_and(|v| !v.is_empty())
        {
            return Some(false);
        }
        let mac = self.macros.read().get(macro_name)?.parsed.clone();
        Some(match mode {
            Mode::Input => true,
            Mode::Report => mac.sql_sections().all(|s| is_select(&s.command)),
        })
    }

    fn dispatch(&self, req: &CgiRequest, ctx: &Arc<RequestCtx>) -> CgiResponse {
        let mut body = String::new();
        match self.dispatch_into(req, ctx, &mut body) {
            Ok(()) => CgiResponse::html(body),
            Err(response) => response,
        }
    }

    /// Resolve and process the requested macro, rendering into `sink`.
    /// `Err` is a complete prebuilt response (resolution failure, macro
    /// error, …); the caller decides what to do with any partial render the
    /// sink received before the error.
    fn dispatch_into(
        &self,
        req: &CgiRequest,
        ctx: &Arc<RequestCtx>,
        sink: &mut dyn PageSink,
    ) -> Result<(), CgiResponse> {
        // PATH_INFO = /{macro-file}/{cmd}
        let mut parts = req.path_info.trim_start_matches('/').splitn(2, '/');
        let macro_name = parts.next().unwrap_or("");
        let cmd = parts.next().unwrap_or("");
        if !safe_macro_name(macro_name) {
            return Err(CgiResponse::error_for_request(
                400,
                "invalid macro file name",
                req.request_id,
            ));
        }
        let Some(mode) = Mode::from_command(cmd) else {
            return Err(CgiResponse::error_for_request(
                400,
                &format!("unknown command {cmd:?}: expected input or report"),
                req.request_id,
            ));
        };
        let Some((mac, source)) = self
            .macros
            .read()
            .get(macro_name)
            .map(|s| (s.parsed.clone(), s.source.clone()))
        else {
            return Err(CgiResponse::error_for_request(
                404,
                &format!("no macro named {macro_name}"),
                req.request_id,
            ));
        };
        // Under a trace, re-parse the macro from source so the trace shows
        // the `parse_macro` cost every CGI invocation paid in 1996; the fast
        // path serves the parse done at install time.
        let mac = if dbgw_obs::trace::trace_active() {
            match parse_macro(&source) {
                Ok(parsed) => Arc::new(parsed),
                Err(_) => mac,
            }
        } else {
            mac
        };
        let mut inputs: Vec<(String, String)> = req
            .variables()
            .pairs()
            .iter()
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect();
        inputs.push((REQUEST_ID_VAR.to_owned(), req.request_id.to_string()));

        // Conversational transactions (reserved DTW_* variables).
        let session_request = inputs
            .iter()
            .find(|(n, _)| n == SESSION_VAR)
            .map(|(_, v)| v.clone())
            .filter(|v| !v.is_empty());
        if let (Some(mgr), Some(session)) = (self.sessions.as_ref(), session_request) {
            // Inside a conversation the engine must not open its own
            // transaction — the session holds the open one.
            let config = EngineConfig {
                txn_mode: TxnMode::AutoCommit,
                ..self.config.clone()
            };
            let engine = Engine::with_config(config).with_request_ctx(ctx.clone());
            let id = if session == "new" {
                match mgr.start(self.metered_connect(ctx)) {
                    Ok(id) => id,
                    Err(e) => {
                        return Err(CgiResponse::error_for_request(
                            500,
                            &e.to_string(),
                            req.request_id,
                        ))
                    }
                }
            } else {
                session
            };
            inputs.push((SESSION_ID_VAR.to_owned(), id.clone()));
            let outcome = mgr.with_session(&id, |conn| engine.process(&mac, mode, &inputs, conn));
            let Some(result) = outcome else {
                return Err(CgiResponse::error_for_request(
                    400,
                    &format!("unknown or expired session {id}"),
                    req.request_id,
                ));
            };
            // Conversations stay fully buffered: the transaction's fate
            // (below) can still replace the page with an error.
            let body = match result {
                Ok(body) => body,
                Err(e) => {
                    // A failed request aborts the whole conversation.
                    let _ = mgr.end(&id, false);
                    return Err(macro_error_response(&e, req.request_id));
                }
            };
            let end = inputs
                .iter()
                .find(|(n, _)| n == END_VAR)
                .map(|(_, v)| v.to_ascii_lowercase());
            match end.as_deref() {
                Some("commit") => {
                    if let Some(Err(e)) = mgr.end(&id, true) {
                        return Err(CgiResponse::error_for_request(
                            500,
                            &e.to_string(),
                            req.request_id,
                        ));
                    }
                }
                Some("abort") => {
                    let _ = mgr.end(&id, false);
                }
                _ => {}
            }
            return sink
                .push(&body)
                .map_err(|reason| cancel_response(reason, req.request_id));
        }

        let engine = Engine::with_config(self.config.clone()).with_request_ctx(ctx.clone());
        let mut conn = self.metered_connect(ctx);
        engine
            .process_into(&mac, mode, &inputs, conn.as_mut(), sink)
            .map_err(|e| macro_error_response(&e, req.request_id))
    }

    /// A fresh context-bound connection wrapped in the statement-timing meter.
    fn metered_connect(&self, ctx: &Arc<RequestCtx>) -> Box<dyn Database + Send> {
        Box::new(SqlMeter {
            inner: self.source.connect_ctx(ctx),
            clock: self.clock.clone(),
            slow_ns: self.trace.slow_ns(),
            slow_log: self.slow_log.clone(),
        })
    }

    /// Convenience for tests and benches: handle a GET.
    pub fn get(&self, macro_name: &str, cmd: &str, query: &str) -> CgiResponse {
        self.handle(&CgiRequest::get(&format!("/{macro_name}/{cmd}"), query))
    }
}

/// Does the statement's first keyword make it a read (SELECT)?
fn is_select(command: &str) -> bool {
    command
        .split_whitespace()
        .next()
        .is_some_and(|w| w.eq_ignore_ascii_case("select"))
}

/// `If-None-Match` comparison: `*` matches anything; otherwise any member of
/// the comma-separated validator list may match our `ETag` exactly.
fn etag_matches(header: &str, etag: &str) -> bool {
    header.trim() == "*" || header.split(',').any(|candidate| candidate.trim() == etag)
}

/// `DBGW_DEADLINE_MS`: per-request wall-clock deadline; unset or 0 disables.
fn deadline_ms_from_env() -> Option<u64> {
    std::env::var("DBGW_DEADLINE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&ms| ms > 0)
}

/// Map a macro-processing error to a response. Cancellation gets its own
/// page and status; everything else stays a 500 with the error's message.
fn macro_error_response(e: &MacroError, request_id: u64) -> CgiResponse {
    match e {
        MacroError::Cancelled { reason } => cancel_response(*reason, request_id),
        _ => CgiResponse::error_for_request(500, &e.to_string(), request_id),
    }
}

/// The page a cancelled request renders: the same `<B>SQL error</B>` banner a
/// `%SQL_MESSAGE`-less SQLCODE failure produces (code -952, DB2's
/// "processing cancelled due to interrupt"), carrying the request id so the
/// failure can be matched to its trace and slow-query entries.
fn cancel_response(reason: CancelReason, request_id: u64) -> CgiResponse {
    let status = match reason {
        CancelReason::DeadlineExceeded { .. } => {
            dbgw_obs::metrics().request_timeouts.inc();
            504
        }
        CancelReason::Cancelled => 503,
        CancelReason::RowBudgetExceeded { .. } | CancelReason::ByteBudgetExceeded { .. } => 500,
    };
    CgiResponse {
        status,
        content_type: "text/html".into(),
        body: format!(
            "<HTML><HEAD><TITLE>Error {status}</TITLE></HEAD>\n\
             <BODY><H1>Error {status}</H1>\n\
             <P><B>SQL error {}</B>: {}</P>\n\
             <P><SMALL>request {request_id}</SMALL></P></BODY></HTML>\n",
            dbgw_obs::CANCELLED_SQLCODE,
            dbgw_html::escape_text(&reason.to_string()),
        ),
        headers: Vec::new(),
    }
}

/// Render `trace` as an HTML comment safe to append to a page: `--` is not
/// allowed inside comments (and `>` after it would end one early), so any
/// run of hyphens from SQL text is broken up.
pub fn trace_comment(trace: &Trace) -> String {
    let mut tree = trace.render_tree();
    // One pass leaves a pair behind in odd runs ("---" → "- --"), so repeat.
    while tree.contains("--") {
        tree = tree.replace("--", "- -");
    }
    format!("\n<!-- dbgw trace\n{tree}-->\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gateway() -> Gateway {
        let db = minisql::Database::new();
        db.run_script(
            "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80), description VARCHAR(200));
             INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM', 'Big Blue'),
                                      ('http://www.eso.org', 'ESO', 'Observatory');",
        )
        .unwrap();
        let gw = Gateway::new(db);
        gw.add_macro(
            "urlquery.d2w",
            r#"%DEFINE dbtbl = "urldb"
%SQL{ SELECT url, title FROM $(dbtbl) WHERE title LIKE '%$(SEARCH)%' ORDER BY title
%SQL_REPORT{<UL>
%ROW{<LI><A HREF="$(V1)">$(V2)</A>
%}</UL>
%}
%}
%HTML_INPUT{<FORM METHOD="post" ACTION="/cgi-bin/db2www/urlquery.d2w/report">
<INPUT TYPE="text" NAME="SEARCH">
<INPUT TYPE="submit" VALUE="Submit Query">
</FORM>%}
%HTML_REPORT{<H1>URL Query Result</H1>
%EXEC_SQL
%}"#,
        )
        .unwrap();
        gw
    }

    #[test]
    fn input_mode_serves_form() {
        let gw = gateway();
        let resp = gw.get("urlquery.d2w", "input", "");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("<INPUT TYPE=\"text\" NAME=\"SEARCH\">"));
        assert!(dbgw_html::check_balanced(&resp.body).is_ok());
    }

    #[test]
    fn report_mode_runs_query_end_to_end() {
        let gw = gateway();
        let resp = gw.get("urlquery.d2w", "report", "SEARCH=IB");
        assert_eq!(resp.status, 200);
        assert!(resp
            .body
            .contains(r#"<A HREF="http://www.ibm.com">IBM</A>"#));
        assert!(!resp.body.contains("eso"));
    }

    #[test]
    fn post_body_variables_work() {
        let gw = gateway();
        let resp = gw.handle(&CgiRequest::post("/urlquery.d2w/report", "SEARCH=ESO"));
        assert!(resp.body.contains("eso.org"));
    }

    #[test]
    fn unknown_macro_404() {
        let gw = gateway();
        assert_eq!(gw.get("nope.d2w", "input", "").status, 404);
    }

    #[test]
    fn bad_command_400() {
        let gw = gateway();
        assert_eq!(gw.get("urlquery.d2w", "destroy", "").status, 400);
    }

    #[test]
    fn path_traversal_rejected() {
        let gw = gateway();
        let resp = gw.handle(&CgiRequest::get("/../etc/passwd/input", ""));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn sql_injection_attempt_is_contained() {
        // A hostile SEARCH value cannot escape the LIKE literal thanks to the
        // engine passing it through one string context; a quote breaks the
        // statement and surfaces as a SQL error page, not data loss.
        let gw = gateway();
        let resp = gw.get(
            "urlquery.d2w",
            "report",
            "SEARCH=%27%3B%20DROP%20TABLE%20urldb%3B%20--",
        );
        assert_eq!(resp.status, 200); // error rendered inside the report page
        assert!(resp.body.contains("SQL error"));
    }

    #[test]
    fn macro_names_listed() {
        let gw = gateway();
        assert_eq!(gw.macro_names(), vec!["urlquery.d2w"]);
    }

    #[test]
    fn deadline_expiry_renders_timeout_page() {
        // The DB "blocks" past the deadline by advancing the injected test
        // clock inside execute; the response must be the 504 timeout page
        // styled like a %SQL_MESSAGE-less SQLCODE banner, with the request id.
        let clock = Arc::new(dbgw_obs::TestClock::new());
        let db_clock = clock.clone();
        let gw = Gateway::new(FnSource(move || {
            let c = db_clock.clone();
            Box::new(dbgw_core::db::FnDatabase(move |_sql: &str| {
                c.advance_millis(100);
                Ok(DbRows {
                    columns: vec!["n".into()],
                    rows: vec![vec!["1".into()]],
                    affected: 0,
                })
            })) as Box<dyn Database + Send>
        }))
        .with_trace(TraceOptions::disabled())
        .with_clock(clock)
        .with_deadline_ms(Some(20));
        gw.add_macro("t.d2w", "%SQL{ SLOW %}\n%HTML_REPORT{%EXEC_SQL%}")
            .unwrap();
        let before = dbgw_obs::metrics().request_timeouts.get();
        let req = CgiRequest::get("/t.d2w/report", "");
        let resp = gw.handle(&req);
        assert_eq!(resp.status, 504);
        assert!(resp.body.contains("SQL error -952"), "{}", resp.body);
        assert!(resp.body.contains("deadline of 20 ms"), "{}", resp.body);
        assert!(
            resp.body.contains(&format!("request {}", req.request_id)),
            "{}",
            resp.body
        );
        assert!(dbgw_obs::metrics().request_timeouts.get() > before);
    }

    #[test]
    fn sql_message_handler_can_intercept_timeout() {
        // A macro with a %SQL_MESSAGE{-952} handler renders its own page and
        // the response stays 200: cancellation surfaces through the same
        // SQLCODE machinery as any DBMS error.
        let clock = Arc::new(dbgw_obs::TestClock::new());
        let db_clock = clock.clone();
        let gw = Gateway::new(FnSource(move || {
            let c = db_clock.clone();
            Box::new(dbgw_core::db::FnDatabase(move |_sql: &str| {
                c.advance_millis(100);
                Err(dbgw_core::db::DbError {
                    code: dbgw_obs::CANCELLED_SQLCODE,
                    message: "processing cancelled due to interrupt".into(),
                })
            })) as Box<dyn Database + Send>
        }))
        .with_trace(TraceOptions::disabled())
        .with_clock(clock)
        .with_deadline_ms(Some(20));
        gw.add_macro(
            "t.d2w",
            "%SQL{ SLOW\n%SQL_MESSAGE{ -952 : \"<P>query interrupted on request $(DTW_REQUEST_ID)</P>\" : exit %}\n%}\n\
             %HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let resp = gw.get("t.d2w", "report", "");
        assert_eq!(resp.status, 200);
        assert!(
            resp.body.contains("query interrupted on request"),
            "{}",
            resp.body
        );
    }

    #[test]
    fn load_macro_dir_resolves_hti_includes() {
        let dir = std::env::temp_dir().join(format!("dbgw-macro-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("header.hti"), "<TITLE>Shared</TITLE>").unwrap();
        std::fs::write(
            dir.join("app.d2w"),
            "%HTML_INPUT{\n%INCLUDE \"header.hti\"\n<FORM ACTION=\"x\"></FORM>%}\n%SQL{ SELECT 1 %}\n%HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let gw = Gateway::new(minisql::Database::new());
        let loaded = gw.load_macro_dir(&dir).unwrap();
        assert_eq!(loaded, vec!["app.d2w"]);
        let resp = gw.get("app.d2w", "input", "");
        assert!(resp.body.contains("<TITLE>Shared</TITLE>"), "{}", resp.body);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
