//! The gateway program itself: the `db2www` CGI application of §4.
//!
//! Invoked as `/cgi-bin/db2www/{macro-file}/{cmd}[?name=val&…]`, it loads the
//! named macro, processes it in `input` or `report` mode with the HTML input
//! variables from the request, and returns the generated page.

use crate::bridge::MiniSqlDatabase;
use crate::request::{CgiRequest, CgiResponse};
use crate::session::{SessionManager, END_VAR, SESSION_ID_VAR, SESSION_VAR};
use crate::sync::RwLock;
use dbgw_core::db::Database;
use dbgw_core::security::safe_macro_name;
use dbgw_core::{parse_macro, Engine, EngineConfig, MacroError, MacroFile, Mode, TxnMode};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Supplies a fresh DBMS connection per request, the way the CGI model
/// re-connected in every process.
pub trait ConnectionSource: Send + Sync {
    /// Open a connection.
    fn connect(&self) -> Box<dyn Database + Send>;
}

impl ConnectionSource for minisql::Database {
    fn connect(&self) -> Box<dyn Database + Send> {
        Box::new(MiniSqlDatabase::connect(self))
    }
}

/// Closure-based source for tests.
pub struct FnSource<F>(pub F);

impl<F> ConnectionSource for FnSource<F>
where
    F: Fn() -> Box<dyn Database + Send> + Send + Sync,
{
    fn connect(&self) -> Box<dyn Database + Send> {
        (self.0)()
    }
}

/// The macro store + engine: one of these serves all requests.
pub struct Gateway {
    macros: RwLock<HashMap<String, Arc<MacroFile>>>,
    config: EngineConfig,
    source: Box<dyn ConnectionSource>,
    sessions: Option<SessionManager>,
}

impl Gateway {
    /// Gateway over a connection source with default engine config.
    pub fn new(source: impl ConnectionSource + 'static) -> Gateway {
        Gateway::with_config(source, EngineConfig::default())
    }

    /// Gateway with explicit engine configuration.
    pub fn with_config(source: impl ConnectionSource + 'static, config: EngineConfig) -> Gateway {
        Gateway {
            macros: RwLock::new(HashMap::new()),
            config,
            source: Box::new(source),
            sessions: None,
        }
    }

    /// Enable conversational transactions (§5's future work): requests may
    /// open a cross-request transaction with `DTW_SESSION=new`, continue it
    /// with `DTW_SESSION=<id>`, and finish with `DTW_END=commit|abort`.
    /// Idle sessions roll back after `ttl`.
    pub fn enable_sessions(mut self, ttl: Duration) -> Gateway {
        self.sessions = Some(SessionManager::new(ttl));
        self
    }

    /// The session manager, when conversations are enabled.
    pub fn sessions(&self) -> Option<&SessionManager> {
        self.sessions.as_ref()
    }

    /// Install (or replace) a macro under `name` — the application developer
    /// "stores them in files (called macros) at the Web server".
    pub fn add_macro(&self, name: &str, source: &str) -> Result<(), MacroError> {
        let parsed = parse_macro(source)?;
        self.macros
            .write()
            .insert(name.to_owned(), Arc::new(parsed));
        Ok(())
    }

    /// Names of installed macros, sorted.
    pub fn macro_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.macros.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Load every `*.d2w` file in a directory as a macro, with `%INCLUDE`
    /// fragments resolved against the `*.hti` files in the same directory —
    /// the product's macro-directory deployment model. Returns the macro
    /// names loaded (sorted).
    pub fn load_macro_dir(&self, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
        use dbgw_core::MapResolver;
        let mut resolver = MapResolver::new();
        let mut macro_files = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if name.ends_with(".hti") {
                resolver.insert(&name, &std::fs::read_to_string(&path)?);
            } else if name.ends_with(".d2w") {
                macro_files.push((name, std::fs::read_to_string(&path)?));
            }
        }
        let mut loaded = Vec::new();
        for (name, source) in macro_files {
            let parsed = dbgw_core::parse_macro_with_includes(&source, &resolver).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{name}: {e}"))
            })?;
            self.macros.write().insert(name.clone(), Arc::new(parsed));
            loaded.push(name);
        }
        loaded.sort();
        Ok(loaded)
    }

    /// Handle one CGI invocation.
    pub fn handle(&self, req: &CgiRequest) -> CgiResponse {
        // PATH_INFO = /{macro-file}/{cmd}
        let mut parts = req.path_info.trim_start_matches('/').splitn(2, '/');
        let macro_name = parts.next().unwrap_or("");
        let cmd = parts.next().unwrap_or("");
        if !safe_macro_name(macro_name) {
            return CgiResponse::error(400, "invalid macro file name");
        }
        let Some(mode) = Mode::from_command(cmd) else {
            return CgiResponse::error(
                400,
                &format!("unknown command {cmd:?}: expected input or report"),
            );
        };
        let Some(mac) = self.macros.read().get(macro_name).cloned() else {
            return CgiResponse::error(404, &format!("no macro named {macro_name}"));
        };
        let mut inputs: Vec<(String, String)> = req
            .variables()
            .pairs()
            .iter()
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect();

        // Conversational transactions (reserved DTW_* variables).
        let session_request = inputs
            .iter()
            .find(|(n, _)| n == SESSION_VAR)
            .map(|(_, v)| v.clone())
            .filter(|v| !v.is_empty());
        if let (Some(mgr), Some(session)) = (self.sessions.as_ref(), session_request) {
            // Inside a conversation the engine must not open its own
            // transaction — the session holds the open one.
            let config = EngineConfig {
                txn_mode: TxnMode::AutoCommit,
                ..self.config.clone()
            };
            let engine = Engine::with_config(config);
            let id = if session == "new" {
                match mgr.start(self.source.connect()) {
                    Ok(id) => id,
                    Err(e) => return CgiResponse::error(500, &e.to_string()),
                }
            } else {
                session
            };
            inputs.push((SESSION_ID_VAR.to_owned(), id.clone()));
            let outcome = mgr.with_session(&id, |conn| engine.process(&mac, mode, &inputs, conn));
            let Some(result) = outcome else {
                return CgiResponse::error(400, &format!("unknown or expired session {id}"));
            };
            let mut response = match result {
                Ok(body) => CgiResponse::html(body),
                Err(e) => {
                    // A failed request aborts the whole conversation.
                    let _ = mgr.end(&id, false);
                    return CgiResponse::error(500, &e.to_string());
                }
            };
            let end = inputs
                .iter()
                .find(|(n, _)| n == END_VAR)
                .map(|(_, v)| v.to_ascii_lowercase());
            match end.as_deref() {
                Some("commit") => {
                    if let Some(Err(e)) = mgr.end(&id, true) {
                        response = CgiResponse::error(500, &e.to_string());
                    }
                }
                Some("abort") => {
                    let _ = mgr.end(&id, false);
                }
                _ => {}
            }
            return response;
        }

        let engine = Engine::with_config(self.config.clone());
        let mut conn = self.source.connect();
        match engine.process(&mac, mode, &inputs, conn.as_mut()) {
            Ok(body) => CgiResponse::html(body),
            Err(e) => CgiResponse::error(500, &e.to_string()),
        }
    }

    /// Convenience for tests and benches: handle a GET.
    pub fn get(&self, macro_name: &str, cmd: &str, query: &str) -> CgiResponse {
        self.handle(&CgiRequest::get(&format!("/{macro_name}/{cmd}"), query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gateway() -> Gateway {
        let db = minisql::Database::new();
        db.run_script(
            "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80), description VARCHAR(200));
             INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM', 'Big Blue'),
                                      ('http://www.eso.org', 'ESO', 'Observatory');",
        )
        .unwrap();
        let gw = Gateway::new(db);
        gw.add_macro(
            "urlquery.d2w",
            r#"%DEFINE dbtbl = "urldb"
%SQL{ SELECT url, title FROM $(dbtbl) WHERE title LIKE '%$(SEARCH)%' ORDER BY title
%SQL_REPORT{<UL>
%ROW{<LI><A HREF="$(V1)">$(V2)</A>
%}</UL>
%}
%}
%HTML_INPUT{<FORM METHOD="post" ACTION="/cgi-bin/db2www/urlquery.d2w/report">
<INPUT TYPE="text" NAME="SEARCH">
<INPUT TYPE="submit" VALUE="Submit Query">
</FORM>%}
%HTML_REPORT{<H1>URL Query Result</H1>
%EXEC_SQL
%}"#,
        )
        .unwrap();
        gw
    }

    #[test]
    fn input_mode_serves_form() {
        let gw = gateway();
        let resp = gw.get("urlquery.d2w", "input", "");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("<INPUT TYPE=\"text\" NAME=\"SEARCH\">"));
        assert!(dbgw_html::check_balanced(&resp.body).is_ok());
    }

    #[test]
    fn report_mode_runs_query_end_to_end() {
        let gw = gateway();
        let resp = gw.get("urlquery.d2w", "report", "SEARCH=IB");
        assert_eq!(resp.status, 200);
        assert!(resp
            .body
            .contains(r#"<A HREF="http://www.ibm.com">IBM</A>"#));
        assert!(!resp.body.contains("eso"));
    }

    #[test]
    fn post_body_variables_work() {
        let gw = gateway();
        let resp = gw.handle(&CgiRequest::post("/urlquery.d2w/report", "SEARCH=ESO"));
        assert!(resp.body.contains("eso.org"));
    }

    #[test]
    fn unknown_macro_404() {
        let gw = gateway();
        assert_eq!(gw.get("nope.d2w", "input", "").status, 404);
    }

    #[test]
    fn bad_command_400() {
        let gw = gateway();
        assert_eq!(gw.get("urlquery.d2w", "destroy", "").status, 400);
    }

    #[test]
    fn path_traversal_rejected() {
        let gw = gateway();
        let resp = gw.handle(&CgiRequest::get("/../etc/passwd/input", ""));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn sql_injection_attempt_is_contained() {
        // A hostile SEARCH value cannot escape the LIKE literal thanks to the
        // engine passing it through one string context; a quote breaks the
        // statement and surfaces as a SQL error page, not data loss.
        let gw = gateway();
        let resp = gw.get(
            "urlquery.d2w",
            "report",
            "SEARCH=%27%3B%20DROP%20TABLE%20urldb%3B%20--",
        );
        assert_eq!(resp.status, 200); // error rendered inside the report page
        assert!(resp.body.contains("SQL error"));
    }

    #[test]
    fn macro_names_listed() {
        let gw = gateway();
        assert_eq!(gw.macro_names(), vec!["urlquery.d2w"]);
    }

    #[test]
    fn load_macro_dir_resolves_hti_includes() {
        let dir = std::env::temp_dir().join(format!("dbgw-macro-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("header.hti"), "<TITLE>Shared</TITLE>").unwrap();
        std::fs::write(
            dir.join("app.d2w"),
            "%HTML_INPUT{\n%INCLUDE \"header.hti\"\n<FORM ACTION=\"x\"></FORM>%}\n%SQL{ SELECT 1 %}\n%HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let gw = Gateway::new(minisql::Database::new());
        let loaded = gw.load_macro_dir(&dir).unwrap();
        assert_eq!(loaded, vec!["app.d2w"]);
        let resp = gw.get("app.d2w", "input", "");
        assert!(resp.body.contains("<TITLE>Shared</TITLE>"), "{}", resp.body);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
