//! The evented HTTP/1.1 edge fronting the gateway.
//!
//! Stands in for the NCSA/IBM httpd of Figure 1, but upgraded past the 1996
//! close-per-request model: connections are **persistent** (`keep-alive`) and
//! parked in an epoll-driven event loop ([`crate::evloop`]) while idle, so
//! ten thousand open browsers cost file descriptors, not threads. Only a
//! connection with a *fully parsed* request occupies one of the fixed pool of
//! workers (`DBGW_WORKERS`); the bounded work queue (`DBGW_QUEUE`) still
//! sheds overload with `503 Retry-After`, and shutdown still drains queued
//! and in-flight requests before joining the pool.
//!
//! Responses are HTTP/1.1. Small pages go out with `Content-Length` exactly
//! as before; a CGI report that crosses the streaming watermark
//! (`DBGW_STREAM_WATERMARK`) switches to `Transfer-Encoding: chunked` and
//! flushes rows as the executor yields them, so time-to-first-byte on a large
//! report no longer pays the full render. HTTP/1.0 clients (and conditional
//! GETs, which need the whole body for the `ETag`) keep the buffered path.

use crate::auth::{AuthDecision, BasicAuth};
use crate::evloop::{Conn, Work};
use crate::gateway::{BodySink, Gateway, Handled};
use crate::log::{AccessLog, LogEntry};
use crate::net::Poller;
use crate::request::{CgiRequest, CgiResponse, Method};
use crate::sync::{Mutex, RwLock};
use dbgw_core::PageSink;
use dbgw_obs::{CancelReason, RequestCtx};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The CGI program mount point, as in the paper's URLs.
pub const CGI_PREFIX: &str = "/cgi-bin/db2www";

/// The admin metrics page: HTML by default, Prometheus-style text with
/// `?format=prometheus`.
pub const STATS_PATH: &str = "/stats";

/// Worker-pool, connection, and socket limits.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving requests (`DBGW_WORKERS`).
    pub workers: usize,
    /// Parsed requests waiting for a worker before the server sheds load
    /// with 503 (`DBGW_QUEUE`).
    pub queue: usize,
    /// Largest request body accepted before answering 413 (`DBGW_MAX_BODY`).
    pub max_body: usize,
    /// Largest number of request headers accepted.
    pub max_headers: usize,
    /// Socket read/write timeout while a worker serves a request, and the
    /// patience for a *partial* request parked in the event loop (a slowloris
    /// peer gets 408 when it expires).
    pub io_timeout: Duration,
    /// How long an idle keep-alive connection may stay parked before the
    /// server closes it (`DBGW_KEEPALIVE_MS`).
    pub keepalive: Duration,
    /// Requests served on one connection before it is closed
    /// (`DBGW_MAX_REQUESTS`).
    pub max_requests: u64,
    /// Open-connection cap (`DBGW_MAX_CONNS`); connections beyond it are
    /// refused with 503 at accept time.
    pub max_conns: usize,
    /// Bytes of rendered page buffered before a CGI response commits to
    /// chunked streaming (`DBGW_STREAM_WATERMARK`). Pages that finish under
    /// the watermark are sent with `Content-Length` as before.
    pub stream_watermark: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue: 64,
            max_body: 1 << 20,
            max_headers: 100,
            io_timeout: Duration::from_secs(10),
            keepalive: Duration::from_secs(5),
            max_requests: 1000,
            max_conns: 10_000,
            stream_watermark: 16 * 1024,
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by `DBGW_WORKERS`, `DBGW_QUEUE`, `DBGW_MAX_BODY`,
    /// `DBGW_KEEPALIVE_MS`, `DBGW_MAX_REQUESTS`, `DBGW_MAX_CONNS`, and
    /// `DBGW_STREAM_WATERMARK`.
    pub fn from_env() -> ServerConfig {
        let mut config = ServerConfig::default();
        if let Some(n) = env_usize("DBGW_WORKERS") {
            config.workers = n.max(1);
        }
        if let Some(n) = env_usize("DBGW_QUEUE") {
            config.queue = n.max(1);
        }
        if let Some(n) = env_usize("DBGW_MAX_BODY") {
            config.max_body = n;
        }
        if let Some(ms) = env_usize("DBGW_KEEPALIVE_MS") {
            config.keepalive = Duration::from_millis(ms as u64);
        }
        if let Some(n) = env_usize("DBGW_MAX_REQUESTS") {
            config.max_requests = (n as u64).max(1);
        }
        if let Some(n) = env_usize("DBGW_MAX_CONNS") {
            config.max_conns = n.max(1);
        }
        if let Some(n) = env_usize("DBGW_STREAM_WATERMARK") {
            config.stream_watermark = n.max(1);
        }
        config
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// A running server.
pub struct HttpServer {
    inner: Arc<ServerInner>,
    addr: std::net::SocketAddr,
    evloop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

pub(crate) struct ServerInner {
    pub(crate) gateway: Gateway,
    pub(crate) config: ServerConfig,
    pub(crate) static_pages: RwLock<HashMap<String, String>>,
    pub(crate) auth: RwLock<Option<BasicAuth>>,
    pub(crate) log: AccessLog,
    pub(crate) stop: AtomicBool,
    /// Parsed requests (and protocol rejects) awaiting a worker.
    pub(crate) work: Mutex<VecDeque<Work>>,
    pub(crate) ready: Condvar,
    /// The event loop's readiness multiplexer; workers and shutdown use its
    /// eventfd to wake the loop.
    pub(crate) poller: Poller,
    /// Keep-alive connections workers hand back for re-parking.
    pub(crate) returned: Mutex<Vec<Conn>>,
}

impl HttpServer {
    /// Bind to `127.0.0.1:port` (0 picks a free port) and start accepting,
    /// with the pool configuration from the environment.
    pub fn start(gateway: Gateway, port: u16) -> std::io::Result<HttpServer> {
        HttpServer::start_with_config(gateway, port, ServerConfig::from_env())
    }

    /// Bind and start with an explicit pool configuration.
    pub fn start_with_config(
        gateway: Gateway,
        port: u16,
        config: ServerConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let inner = Arc::new(ServerInner {
            gateway,
            config,
            static_pages: RwLock::new(HashMap::new()),
            auth: RwLock::new(None),
            log: AccessLog::new(),
            stop: AtomicBool::new(false),
            work: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            poller,
            returned: Mutex::new(Vec::new()),
        });
        let mut workers = Vec::with_capacity(inner.config.workers);
        for _ in 0..inner.config.workers {
            let worker_inner = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || worker_loop(&worker_inner)));
        }
        let ev_inner = Arc::clone(&inner);
        let evloop_thread =
            std::thread::spawn(move || crate::evloop::event_loop(&ev_inner, listener));
        Ok(HttpServer {
            inner,
            addr,
            evloop_thread: Some(evloop_thread),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Register a static page at `path` (must start with `/`).
    pub fn add_static_page(&self, path: &str, html: &str) {
        self.inner
            .static_pages
            .write()
            .insert(path.to_owned(), html.to_owned());
    }

    /// The gateway being served.
    pub fn gateway(&self) -> &Gateway {
        &self.inner.gateway
    }

    /// Install HTTP Basic authentication (httpd-style path protection, §5).
    pub fn set_auth(&self, auth: BasicAuth) {
        *self.inner.auth.write() = Some(auth);
    }

    /// The shared access log (Common Log Format entries).
    pub fn access_log(&self) -> AccessLog {
        self.inner.log.clone()
    }

    /// Stop accepting, drain queued and in-flight requests, and join the
    /// event loop and worker pool.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // The event loop re-checks `stop` after every wakeup.
        self.inner.poller.wake();
        if let Some(handle) = self.evloop_thread.take() {
            let _ = handle.join();
        }
        // Wake every waiting worker; each drains the queue, finishes its
        // in-flight request, and exits.
        drop(self.inner.work.lock());
        self.inner.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Connections a worker handed back after the loop exited.
        for conn in self.inner.returned.lock().drain(..) {
            crate::evloop::close_conn(conn);
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One pool worker: serve queued work until stopped *and* the queue is
/// drained.
fn worker_loop(inner: &Arc<ServerInner>) {
    loop {
        let work = {
            let mut q = inner.work.lock();
            loop {
                if let Some(w) = q.pop_front() {
                    dbgw_obs::metrics().queue_depth.set(q.len() as i64);
                    break Some(w);
                }
                if inner.stop.load(Ordering::SeqCst) {
                    break None;
                }
                // Bounded wait so a missed wakeup can never wedge shutdown.
                q = match inner.ready.wait_timeout(q, Duration::from_millis(50)) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        let Some(work) = work else { return };
        match work {
            Work::Reject(mut conn, response) => {
                let _ = conn.prepare_blocking(&inner.config);
                let _ = write_response(&mut conn.stream, &response, None, None, false);
                let remote = peer_ip(&conn.stream);
                inner.log.record(LogEntry {
                    remote,
                    user: "-".to_owned(),
                    timestamp: 0,
                    request_line: "- - -".to_owned(),
                    status: response.status,
                    bytes: response.body.len(),
                });
                crate::evloop::close_conn(conn);
            }
            Work::Request(conn, req) => {
                if conn.prepare_blocking(&inner.config).is_err() {
                    crate::evloop::close_conn(conn);
                    continue;
                }
                serve_connection(inner, conn, req);
            }
        }
    }
}

/// Serve one parsed request, then any complete pipelined requests already
/// buffered on the connection, then either close it or hand it back to the
/// event loop to await the next request.
fn serve_connection(inner: &ServerInner, mut conn: Conn, mut req: HttpRequest) {
    let m = dbgw_obs::metrics();
    loop {
        if conn.served > 0 {
            m.keepalive_reuses.inc();
        }
        m.requests_in_flight.inc();
        let keep = serve_request(inner, &mut conn, req);
        m.requests_in_flight.dec();
        conn.served += 1;
        if !keep || conn.served >= inner.config.max_requests || inner.stop.load(Ordering::SeqCst) {
            crate::evloop::close_conn(conn);
            return;
        }
        // Pipelined peer: the next request may already be buffered whole.
        match parse_request(&mut conn.buf, &inner.config) {
            ParseStatus::Request(next) => {
                m.pipelined_requests.inc();
                req = next;
            }
            ParseStatus::Incomplete => break,
            ParseStatus::Malformed => {
                let resp = CgiResponse::error(400, "malformed request");
                let _ = write_response(&mut conn.stream, &resp, None, None, false);
                crate::evloop::close_conn(conn);
                return;
            }
            ParseStatus::TooLarge => {
                let resp = CgiResponse::error(413, "request larger than the configured limit");
                let _ = write_response(&mut conn.stream, &resp, None, None, false);
                crate::evloop::close_conn(conn);
                return;
            }
        }
    }
    // Park the connection back in the event loop until its next request.
    conn.last_activity = Instant::now();
    if conn.stream.set_nonblocking(true).is_ok() {
        inner.returned.lock().push(conn);
        inner.poller.wake();
    } else {
        crate::evloop::close_conn(conn);
    }
}

fn peer_ip(stream: &TcpStream) -> String {
    stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "-".into())
}

/// How the CGI path answered (local to [`serve_request`]; exists so the
/// streaming sink's borrow of the connection ends before the buffered write).
enum CgiOutcome {
    Full(CgiResponse),
    Streamed {
        failed: bool,
        finished: bool,
        bytes: usize,
    },
}

/// Serve one request on `conn`. Returns whether the connection may be kept
/// alive for another request.
fn serve_request(inner: &ServerInner, conn: &mut Conn, req: HttpRequest) -> bool {
    let started = Instant::now();
    let remote = peer_ip(&conn.stream);
    let request_line = format!("{} {} {}", req.method, req.target, req.version.as_str());
    let wants_keep = req.keep_alive()
        && conn.served + 1 < inner.config.max_requests
        && !inner.stop.load(Ordering::SeqCst);
    let streamable = req.version == Version::H11;
    match route(inner, req) {
        Routed::Done {
            response,
            user,
            realm,
        } => {
            let sent = write_response_timed(
                &mut conn.stream,
                &response,
                realm.as_deref(),
                None,
                wants_keep,
                started,
            )
            .is_ok();
            inner.log.record(LogEntry {
                remote,
                user,
                timestamp: 0,
                request_line,
                status: response.status,
                bytes: response.body.len(),
            });
            wants_keep && sent
        }
        Routed::Cgi { cgi, user } => {
            // The request context is created here, at the HTTP edge, so the
            // deadline covers the whole request.
            let ctx = inner.gateway.make_ctx(cgi.request_id);
            // Conditional GETs need the complete body for the ETag check,
            // and HTTP/1.0 clients cannot parse chunked framing: both keep
            // the fully buffered path.
            let watermark = if cgi.if_none_match.is_some() || !streamable {
                usize::MAX
            } else {
                inner.config.stream_watermark
            };
            let outcome = {
                let mut sink =
                    ResponseSink::new(&mut conn.stream, &ctx, watermark, wants_keep, started);
                match inner.gateway.handle_streaming(&cgi, &ctx, &mut sink) {
                    Handled::Full(response) => CgiOutcome::Full(response),
                    Handled::Streamed { failed } => {
                        let finished = sink.finish().is_ok();
                        CgiOutcome::Streamed {
                            failed,
                            finished,
                            bytes: sink.bytes_out(),
                        }
                    }
                }
            };
            match outcome {
                CgiOutcome::Full(response) => {
                    let sent = write_response_timed(
                        &mut conn.stream,
                        &response,
                        None,
                        None,
                        wants_keep,
                        started,
                    )
                    .is_ok();
                    inner.log.record(LogEntry {
                        remote,
                        user,
                        timestamp: 0,
                        request_line,
                        status: response.status,
                        bytes: response.body.len(),
                    });
                    wants_keep && sent
                }
                CgiOutcome::Streamed {
                    failed,
                    finished,
                    bytes,
                } => {
                    inner.log.record(LogEntry {
                        remote,
                        user,
                        timestamp: 0,
                        request_line,
                        status: 200,
                        bytes,
                    });
                    // A truncated stream must not be reused: the client would
                    // misparse the next response as the tail of this one.
                    wants_keep && finished && !failed
                }
            }
        }
    }
}

/// The protocol version of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Version {
    /// HTTP/1.0 — close-per-request unless `Connection: keep-alive`.
    H10,
    /// HTTP/1.1 — persistent unless `Connection: close`.
    H11,
}

impl Version {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Version::H10 => "HTTP/1.0",
            Version::H11 => "HTTP/1.1",
        }
    }
}

/// A parsed HTTP request.
pub(crate) struct HttpRequest {
    pub(crate) method: String,
    pub(crate) target: String,
    pub(crate) version: Version,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) body: String,
}

impl HttpRequest {
    pub(crate) fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Persistent-connection semantics: an explicit `Connection` header wins;
    /// otherwise HTTP/1.1 defaults to keep-alive and HTTP/1.0 to close.
    pub(crate) fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == Version::H11,
        }
    }
}

/// What one parse attempt over the connection's buffer produced.
pub(crate) enum ParseStatus {
    /// Not enough bytes yet; keep the connection parked.
    Incomplete,
    /// One complete request, consumed from the buffer (pipelined successors
    /// stay buffered).
    Request(HttpRequest),
    /// Not parseable as HTTP.
    Malformed,
    /// Headers or declared body size exceed the configured limits.
    TooLarge,
}

/// Try to parse one complete request from the front of `buf`, consuming it on
/// success. Incremental: callers append bytes as they arrive and re-try.
pub(crate) fn parse_request(buf: &mut Vec<u8>, config: &ServerConfig) -> ParseStatus {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > 64 * 1024 {
            return ParseStatus::TooLarge; // header flood
        }
        return ParseStatus::Incomplete;
    };
    let header_text = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = header_text.lines();
    let request_line = lines.next().unwrap_or_default().to_owned();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let target = parts.next().unwrap_or("").to_owned();
    let version = match parts.next() {
        Some("HTTP/1.1") => Version::H11,
        _ => Version::H10,
    };
    if method.is_empty() || target.is_empty() {
        return ParseStatus::Malformed;
    }
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if headers.len() >= config.max_headers {
                return ParseStatus::TooLarge;
            }
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
    }
    // Refuse oversized bodies up front instead of trusting Content-Length to
    // size a buffer: the declared length is a client-controlled number.
    if content_length > config.max_body {
        return ParseStatus::TooLarge;
    }
    let body_start = header_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return ParseStatus::Incomplete;
    }
    let body = String::from_utf8_lossy(&buf[body_start..total]).into_owned();
    buf.drain(..total);
    ParseStatus::Request(HttpRequest {
        method,
        target,
        version,
        headers,
        body,
    })
}

pub(crate) fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Where a request goes after auth and method checks.
enum Routed {
    /// Fully answered locally (static page, `/stats`, auth challenge, error).
    Done {
        response: CgiResponse,
        user: String,
        realm: Option<String>,
    },
    /// A CGI invocation for the gateway (the streaming-capable path).
    Cgi { cgi: CgiRequest, user: String },
}

fn route(inner: &ServerInner, req: HttpRequest) -> Routed {
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.target.as_str(), ""),
    };
    // Authentication before anything else, like httpd's access checks.
    let mut user = "-".to_owned();
    if let Some(guard) = inner.auth.read().as_ref() {
        match guard.check(path, req.header("authorization")) {
            AuthDecision::Open => {}
            AuthDecision::Allow(name) => user = name,
            AuthDecision::Challenge(realm) => {
                return Routed::Done {
                    response: CgiResponse::error(401, "authorization required"),
                    user,
                    realm: Some(realm),
                };
            }
        }
    }
    let method = match req.method.as_str() {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => {
            return Routed::Done {
                response: CgiResponse::error(405, "only GET and POST are supported"),
                user,
                realm: None,
            }
        }
    };
    // CGI dispatch (also accept the paper's db2www.exe spelling; the longer
    // prefix must be tried first, and the remainder must be a real subpath).
    for prefix in ["/cgi-bin/db2www.exe", CGI_PREFIX] {
        if let Some(path_info) = path.strip_prefix(prefix).filter(|p| p.starts_with('/')) {
            let cgi = CgiRequest {
                method,
                path_info: path_info.to_owned(),
                query_string: query.to_owned(),
                if_none_match: req.header("if-none-match").map(str::to_owned),
                body: req.body,
                request_id: dbgw_obs::next_request_id(),
            };
            return Routed::Cgi { cgi, user };
        }
    }
    if path == STATS_PATH {
        return Routed::Done {
            response: stats_response(inner, query),
            user,
            realm: None,
        };
    }
    if let Some(page) = inner.static_pages.read().get(path) {
        return Routed::Done {
            response: CgiResponse::html(page.clone()),
            user,
            realm: None,
        };
    }
    Routed::Done {
        response: CgiResponse::error(404, &format!("no page at {path}")),
        user,
        realm: None,
    }
}

/// How many digests the `/stats` views show (top-N by total time).
const STATS_DIGEST_TOP_N: usize = 20;

/// The `/stats` admin page: process metrics, the query-digest table, the
/// sampled time series with SLO attainment, and the slow-query log as HTML —
/// or the raw Prometheus-style text with `?format=prometheus`.
fn stats_response(inner: &ServerInner, query: &str) -> CgiResponse {
    let m = dbgw_obs::metrics();
    let points = inner.gateway.sampler().points();
    let slo = dbgw_obs::slo::evaluate(&points, &inner.gateway.slo_config());
    if query
        .split('&')
        .any(|pair| pair == "format=prometheus" || pair == "format=text")
    {
        let mut body = dbgw_obs::export::render_prometheus(m);
        body.push_str(&dbgw_obs::export::digest_prometheus(
            dbgw_obs::digests(),
            STATS_DIGEST_TOP_N,
        ));
        body.push_str(&dbgw_obs::export::slo_prometheus(&slo));
        return CgiResponse {
            status: 200,
            content_type: "text/plain".into(),
            body,
            headers: Vec::new(),
        };
    }
    let mut body = String::from(
        "<HTML><HEAD><TITLE>Gateway Statistics</TITLE></HEAD>\n<BODY><H1>Gateway Statistics</H1>\n",
    );
    body.push_str("<H2>Counters</H2>\n<TABLE BORDER=1>\n");
    for (name, value) in [
        ("requests", m.requests.get()),
        ("request errors", m.request_errors.get()),
        ("requests shed", m.requests_shed.get()),
        ("request timeouts", m.request_timeouts.get()),
        ("keep-alive reuses", m.keepalive_reuses.get()),
        ("pipelined requests", m.pipelined_requests.get()),
        ("responses streamed", m.responses_streamed.get()),
        ("client disconnects", m.client_disconnects.get()),
        ("macro parses", m.macro_parses.get()),
        ("substitutions", m.substitutions.get()),
        ("SQL statements", m.sql_statements.get()),
        ("rows rendered", m.rows_rendered.get()),
        ("slow queries", m.slow_queries.get()),
        ("traces recorded", m.traces_recorded.get()),
        ("cache hits", m.cache_hits.get()),
        ("cache misses", m.cache_misses.get()),
        ("cache evictions", m.cache_evictions.get()),
        ("cache invalidations", m.cache_invalidations.get()),
        ("statement cache hits", m.stmt_cache_hits.get()),
        ("statement cache misses", m.stmt_cache_misses.get()),
        ("HTTP 304 not modified", m.http_not_modified.get()),
        ("hash joins", m.join_hash.get()),
        ("nested-loop joins", m.join_nested.get()),
        ("pushdown applied", m.pushdown_applied.get()),
        ("rows scanned", m.rows_scanned.get()),
        ("latch waits", m.latch_waits.get()),
        ("stats refreshes", m.stats_refreshes.get()),
        ("join reorders", m.join_reorders.get()),
        ("snapshots published", m.snapshots_published.get()),
        ("WAL records", m.wal_records.get()),
        ("WAL fsyncs", m.wal_fsyncs.get()),
        ("WAL bytes", m.wal_bytes.get()),
        ("checkpoints", m.checkpoints.get()),
    ] {
        body.push_str(&format!("<TR><TD>{name}</TD><TD>{value}</TD></TR>\n"));
    }
    body.push_str("</TABLE>\n<H2>Pool</H2>\n<TABLE BORDER=1>\n");
    for (name, value) in [
        ("requests in flight", m.requests_in_flight.get()),
        ("queue depth", m.queue_depth.get()),
        ("open connections", m.open_connections.get()),
        ("idle connections", m.idle_connections.get()),
        ("cache bytes", m.cache_bytes.get()),
        ("snapshot epoch", m.snapshot_epoch.get()),
        (
            "snapshot age ms",
            dbgw_obs::export::snapshot_age_ms(m) as i64,
        ),
        ("WAL size bytes", m.wal_size_bytes.get()),
        ("checkpoint last bytes", m.checkpoint_last_bytes.get()),
    ] {
        body.push_str(&format!("<TR><TD>{name}</TD><TD>{value}</TD></TR>\n"));
    }
    body.push_str("</TABLE>\n<H2>Latency</H2>\n<TABLE BORDER=1>\n");
    for (name, h) in [
        ("request", &m.request_latency_ns),
        ("ttfb", &m.ttfb_ns),
        ("sql", &m.sql_latency_ns),
        ("latch wait", &m.latch_wait_ns),
        ("group-commit wait", &m.group_commit_wait_ns),
    ] {
        let count = h.count();
        let mean_ms = if count == 0 {
            0.0
        } else {
            h.sum_ns() as f64 / count as f64 / 1e6
        };
        body.push_str(&format!(
            "<TR><TD>{name}</TD><TD>{count} observations</TD><TD>mean {mean_ms:.3} ms</TD></TR>\n"
        ));
    }
    body.push_str("</TABLE>\n");
    push_digest_table(&mut body);
    push_series_section(&mut body, &points, inner.gateway.sampler().interval_ms());
    push_slo_section(&mut body, &slo);
    let codes = m.sqlcode_errors.snapshot();
    if !codes.is_empty() {
        body.push_str("<H2>SQLCODEs</H2>\n<TABLE BORDER=1>\n");
        for (code, count) in codes {
            body.push_str(&format!("<TR><TD>{code}</TD><TD>{count}</TD></TR>\n"));
        }
        body.push_str("</TABLE>\n");
    }
    let slow = inner.gateway.slow_queries().entries();
    if !slow.is_empty() {
        body.push_str("<H2>Slow queries</H2>\n<UL>\n");
        for q in slow.iter().rev().take(20) {
            body.push_str(&format!(
                "<LI><CODE>{}</CODE>\n",
                dbgw_html::escape_text(&q.to_line())
            ));
        }
        body.push_str("</UL>\n");
    }
    body.push_str("<P><A HREF=\"/stats?format=prometheus\">prometheus text</A></P>\n");
    body.push_str("</BODY></HTML>\n");
    CgiResponse::html(body)
}

/// The pg_stat_statements-style digest table: top-N normalized statements by
/// total execution time, with latency quantiles from each digest's histogram.
fn push_digest_table(body: &mut String) {
    let store = dbgw_obs::digests();
    let top = store.top_by_total_time(STATS_DIGEST_TOP_N);
    if top.is_empty() {
        return;
    }
    body.push_str(
        "<H2>Query digests</H2>\n<TABLE BORDER=1>\n\
         <TR><TH>digest</TH><TH>statement</TH><TH>calls</TH><TH>errors</TH>\
         <TH>rows ret</TH><TH>rows scan</TH><TH>cache hit%</TH>\
         <TH>mean ms</TH><TH>p99 ms</TH><TH>total ms</TH><TH>latch ms</TH></TR>\n",
    );
    for d in &top {
        let lookups = d.cache_hits + d.cache_misses;
        let hit_pct = if lookups == 0 {
            "-".to_owned()
        } else {
            format!("{:.0}", d.cache_hits as f64 * 100.0 / lookups as f64)
        };
        let mean_ms = d.total_ns as f64 / d.calls.max(1) as f64 / 1e6;
        let p99_ms = dbgw_obs::digest::quantile_from_buckets(&d.buckets, 0.99) as f64 / 1e6;
        body.push_str(&format!(
            "<TR><TD><CODE>{:016x}</CODE></TD><TD><CODE>{}</CODE></TD>\
             <TD>{}</TD><TD>{}</TD><TD>{}</TD><TD>{}</TD><TD>{hit_pct}</TD>\
             <TD>{mean_ms:.3}</TD><TD>{p99_ms:.3}</TD><TD>{:.3}</TD><TD>{:.3}</TD></TR>\n",
            d.key,
            dbgw_html::escape_text(&d.text),
            d.calls,
            d.errors,
            d.rows_returned,
            d.rows_scanned,
            d.total_ns as f64 / 1e6,
            d.latch_wait_ns as f64 / 1e6,
        ));
    }
    body.push_str(&format!(
        "</TABLE>\n<P>{} digest{} tracked.</P>\n",
        store.len(),
        if store.len() == 1 { "" } else { "s" }
    ));
}

/// Sparkline history from the sampled ring: request rate, p99, error rate,
/// and cache hit ratio per interval, oldest to newest.
fn push_series_section(
    body: &mut String,
    points: &[dbgw_obs::series::SamplePoint],
    interval_ms: u64,
) {
    if points.is_empty() {
        return;
    }
    use dbgw_obs::series::sparkline;
    body.push_str(&format!(
        "<H2>History</H2>\n<P>{} sample{} at {interval_ms} ms intervals (oldest first)</P>\n\
         <TABLE BORDER=1>\n",
        points.len(),
        if points.len() == 1 { "" } else { "s" }
    ));
    let latest = points.last().expect("non-empty");
    let rows: [(&str, Vec<f64>, String); 4] = [
        (
            "req/s",
            points.iter().map(|p| p.req_rate).collect(),
            format!("{:.1}", latest.req_rate),
        ),
        (
            "p99 ms",
            points.iter().map(|p| p.p99_ms).collect(),
            format!("{:.3}", latest.p99_ms),
        ),
        (
            "error rate",
            points.iter().map(|p| p.error_rate).collect(),
            format!("{:.3}", latest.error_rate),
        ),
        (
            "cache hit ratio",
            points.iter().map(|p| p.cache_hit_ratio).collect(),
            format!("{:.2}", latest.cache_hit_ratio),
        ),
    ];
    for (name, values, latest) in rows {
        body.push_str(&format!(
            "<TR><TD>{name}</TD><TD><CODE>{}</CODE></TD><TD>latest {latest}</TD></TR>\n",
            sparkline(&values)
        ));
    }
    body.push_str("</TABLE>\n");
}

/// SLO attainment and burn rate over the sampled window.
fn push_slo_section(body: &mut String, slo: &dbgw_obs::slo::SloReport) {
    if slo.p99_target_ms.is_none() && slo.error_budget.is_none() {
        return;
    }
    body.push_str("<H2>SLO</H2>\n<TABLE BORDER=1>\n");
    body.push_str(&format!(
        "<TR><TD>window</TD><TD>{} samples ({} busy), {} requests, {} errors</TD></TR>\n",
        slo.samples, slo.busy_samples, slo.requests, slo.errors
    ));
    if let Some(target) = slo.p99_target_ms {
        let att = match slo.latency_attainment_pct {
            Some(pct) => format!("{pct:.1}% of busy samples met it"),
            None => "no traffic yet".to_owned(),
        };
        body.push_str(&format!(
            "<TR><TD>p99 target</TD><TD>{target} ms &mdash; {att}</TD></TR>\n"
        ));
    }
    if let Some(budget) = slo.error_budget {
        let burn = slo.burn_rate.unwrap_or(0.0);
        let remaining = slo.budget_remaining_pct.unwrap_or(100.0);
        body.push_str(&format!(
            "<TR><TD>error budget</TD><TD>{budget} &mdash; burn rate {burn:.2}&times; \
             ({remaining:.1}% of budget remaining)</TD></TR>\n",
        ));
    }
    body.push_str("</TABLE>\n");
}

/// How a response body is framed on the wire.
pub(crate) enum Framing {
    /// `Content-Length: n` — the complete-body path.
    Length(usize),
    /// `Transfer-Encoding: chunked` — the streaming path.
    Chunked,
}

/// The one place status lines and standard headers are emitted: every
/// response — success, error, shed, streamed — goes through
/// [`ResponseHead::emit`], so the protocol version and `Connection` semantics
/// cannot drift between paths.
pub(crate) struct ResponseHead<'r> {
    status: u16,
    reason: &'r str,
    content_type: &'r str,
    keep_alive: bool,
    realm: Option<&'r str>,
    retry_after: Option<u64>,
    extra: &'r [(String, String)],
}

impl<'r> ResponseHead<'r> {
    pub(crate) fn new(
        status: u16,
        reason: &'r str,
        content_type: &'r str,
        keep_alive: bool,
    ) -> ResponseHead<'r> {
        ResponseHead {
            status,
            reason,
            content_type,
            keep_alive,
            realm: None,
            retry_after: None,
            extra: &[],
        }
    }

    /// Render the status line and headers, terminated by the blank line.
    pub(crate) fn emit(&self, framing: Framing) -> String {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}; charset=utf-8\r\n",
            self.status, self.reason, self.content_type
        );
        match framing {
            Framing::Length(n) => head.push_str(&format!("Content-Length: {n}\r\n")),
            Framing::Chunked => head.push_str("Transfer-Encoding: chunked\r\n"),
        }
        head.push_str(if self.keep_alive {
            "Connection: keep-alive\r\n"
        } else {
            "Connection: close\r\n"
        });
        if let Some(realm) = self.realm {
            head.push_str(&format!("WWW-Authenticate: Basic realm=\"{realm}\"\r\n"));
        }
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        for (name, value) in self.extra {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        head
    }
}

/// Write a complete response with `Content-Length` framing.
pub(crate) fn write_response(
    stream: &mut TcpStream,
    resp: &CgiResponse,
    challenge_realm: Option<&str>,
    retry_after: Option<u64>,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = ResponseHead::new(resp.status, resp.reason(), &resp.content_type, keep_alive);
    head.realm = challenge_realm;
    head.retry_after = retry_after;
    head.extra = &resp.headers;
    let head = head.emit(Framing::Length(resp.body.len()));
    // Head and body leave in one write so a keep-alive peer never waits a
    // delayed-ACK round for the tail segment (Nagle holds back the second
    // small write until the first is acknowledged).
    let mut wire = Vec::with_capacity(head.len() + resp.body.len());
    wire.extend_from_slice(head.as_bytes());
    wire.extend_from_slice(resp.body.as_bytes());
    stream.write_all(&wire)?;
    stream.flush()
}

/// [`write_response`] plus the time-to-first-byte observation.
fn write_response_timed(
    stream: &mut TcpStream,
    resp: &CgiResponse,
    challenge_realm: Option<&str>,
    retry_after: Option<u64>,
    keep_alive: bool,
    started: Instant,
) -> std::io::Result<()> {
    dbgw_obs::metrics()
        .ttfb_ns
        .observe_ns(started.elapsed().as_nanos() as u64);
    write_response(stream, resp, challenge_realm, retry_after, keep_alive)
}

/// The streaming response writer: a [`PageSink`] over the connection.
///
/// Buffers rendered text until the watermark, then commits the response as
/// `Transfer-Encoding: chunked` and flushes a chunk per watermark-full
/// thereafter. A page that finishes under the watermark never commits — the
/// gateway takes the buffer back and the response goes out with
/// `Content-Length` (and full `ETag` semantics) instead. A failed socket
/// write cancels the request context, so the executor stops paging rows for
/// a browser that hung up.
pub(crate) struct ResponseSink<'a> {
    stream: &'a mut TcpStream,
    ctx: &'a Arc<RequestCtx>,
    watermark: usize,
    keep_alive: bool,
    started: Instant,
    buf: String,
    committed: bool,
    dead: bool,
    bytes_out: usize,
}

impl<'a> ResponseSink<'a> {
    pub(crate) fn new(
        stream: &'a mut TcpStream,
        ctx: &'a Arc<RequestCtx>,
        watermark: usize,
        keep_alive: bool,
        started: Instant,
    ) -> ResponseSink<'a> {
        ResponseSink {
            stream,
            ctx,
            watermark,
            keep_alive,
            started,
            buf: String::new(),
            committed: false,
            dead: false,
            bytes_out: 0,
        }
    }

    /// Body bytes flushed to the socket so far (for the access log).
    pub(crate) fn bytes_out(&self) -> usize {
        self.bytes_out
    }

    /// Commit (if not yet) and flush the buffered text as one chunk.
    fn flush_pending(&mut self) -> std::io::Result<()> {
        // One write per flush: head + chunk framing + data go out in a
        // single segment so Nagle/delayed-ACK never stalls the stream.
        let mut wire = Vec::with_capacity(self.buf.len() + 256);
        if !self.committed {
            let m = dbgw_obs::metrics();
            m.ttfb_ns
                .observe_ns(self.started.elapsed().as_nanos() as u64);
            m.responses_streamed.inc();
            let head = ResponseHead::new(200, "OK", "text/html", self.keep_alive);
            wire.extend_from_slice(head.emit(Framing::Chunked).as_bytes());
            self.committed = true;
        }
        if !self.buf.is_empty() {
            wire.extend_from_slice(format!("{:x}\r\n", self.buf.len()).as_bytes());
            wire.extend_from_slice(self.buf.as_bytes());
            wire.extend_from_slice(b"\r\n");
            self.bytes_out += self.buf.len();
            self.buf.clear();
        }
        self.stream.write_all(&wire)?;
        self.stream.flush()
    }

    /// A socket write failed: the client is gone. Cancel the request so the
    /// executor stops producing rows nobody will read.
    fn mark_dead(&mut self) -> CancelReason {
        self.dead = true;
        self.ctx.cancel();
        dbgw_obs::metrics().client_disconnects.inc();
        CancelReason::Cancelled
    }

    /// Flush any tail and terminate the chunked stream.
    pub(crate) fn finish(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client disconnected mid-stream",
            ));
        }
        self.flush_pending()?;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

impl PageSink for ResponseSink<'_> {
    fn push(&mut self, text: &str) -> Result<(), CancelReason> {
        if self.dead {
            return Err(CancelReason::Cancelled);
        }
        self.buf.push_str(text);
        if self.buf.len() >= self.watermark {
            self.flush_pending().map_err(|_| self.mark_dead())?;
        }
        Ok(())
    }
}

impl BodySink for ResponseSink<'_> {
    fn committed(&self) -> bool {
        self.committed
    }

    fn take(&mut self) -> String {
        std::mem::take(&mut self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    fn server() -> HttpServer {
        let db = minisql::Database::new();
        db.run_script(
            "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
             INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM');",
        )
        .unwrap();
        let gw = Gateway::new(db);
        gw.add_macro(
            "q.d2w",
            "%SQL{ SELECT url, title FROM urldb %}\n\
             %HTML_INPUT{<FORM METHOD=\"post\" ACTION=\"/cgi-bin/db2www/q.d2w/report\">\
             <INPUT NAME=\"SEARCH\"></FORM>%}\n\
             %HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let server = HttpServer::start_with_config(gw, 0, ServerConfig::default()).unwrap();
        server.add_static_page("/", "<HTML><BODY>home</BODY></HTML>");
        server
    }

    #[test]
    fn serves_static_and_cgi() {
        let server = server();
        let client = HttpClient::new(server.addr());
        let home = client.get("/").unwrap();
        assert_eq!(home.status, 200);
        assert!(home.body.contains("home"));

        let form = client.get("/cgi-bin/db2www/q.d2w/input").unwrap();
        assert!(form.body.contains("NAME=\"SEARCH\""));

        let report = client
            .post("/cgi-bin/db2www/q.d2w/report", "SEARCH=ib")
            .unwrap();
        assert!(report.body.contains("http://www.ibm.com"));
        server.shutdown();
    }

    #[test]
    fn missing_page_404_and_bad_method() {
        let server = server();
        let client = HttpClient::new(server.addr());
        assert_eq!(client.get("/nowhere").unwrap().status, 404);
        let raw = client
            .raw("PUT /cgi-bin/db2www/q.d2w/input HTTP/1.0\r\n\r\n")
            .unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn exe_spelling_accepted() {
        let server = server();
        let client = HttpClient::new(server.addr());
        let resp = client.get("/cgi-bin/db2www.exe/q.d2w/input").unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }

    #[test]
    fn concurrent_requests() {
        let server = server();
        let addr = server.addr();
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(move || {
                let client = HttpClient::new(addr);
                let resp = client.get("/cgi-bin/db2www/q.d2w/report").unwrap();
                assert_eq!(resp.status, 200);
                assert!(resp.body.contains("IBM"));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413() {
        let server = server();
        let client = HttpClient::new(server.addr());
        // Declared length far over the limit: refused before any body read.
        let raw = client
            .raw("POST /cgi-bin/db2www/q.d2w/report HTTP/1.0\r\nContent-Length: 99999999\r\n\r\n")
            .unwrap();
        assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn too_many_headers_rejected() {
        let server = server();
        let client = HttpClient::new(server.addr());
        let mut req = String::from("GET / HTTP/1.0\r\n");
        for i in 0..200 {
            req.push_str(&format!("X-Pad-{i}: x\r\n"));
        }
        req.push_str("\r\n");
        let raw = client.raw(&req).unwrap();
        assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn config_from_env_defaults() {
        let config = ServerConfig::default();
        assert_eq!(config.workers, 4);
        assert_eq!(config.queue, 64);
        assert_eq!(config.max_body, 1 << 20);
        assert_eq!(config.keepalive, Duration::from_secs(5));
        assert_eq!(config.max_requests, 1000);
        assert_eq!(config.max_conns, 10_000);
        assert_eq!(config.stream_watermark, 16 * 1024);
    }

    #[test]
    fn parser_is_incremental_and_pipelined() {
        let config = ServerConfig::default();
        let mut buf = b"GET /a HT".to_vec();
        assert!(matches!(
            parse_request(&mut buf, &config),
            ParseStatus::Incomplete
        ));
        buf.extend_from_slice(b"TP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        let ParseStatus::Request(a) = parse_request(&mut buf, &config) else {
            panic!("first request should parse");
        };
        assert_eq!(a.target, "/a");
        assert_eq!(a.version, Version::H11);
        assert!(a.keep_alive());
        let ParseStatus::Request(b) = parse_request(&mut buf, &config) else {
            panic!("second (pipelined) request should parse");
        };
        assert_eq!(b.target, "/b");
        assert!(!b.keep_alive());
        assert!(buf.is_empty());
        assert!(matches!(
            parse_request(&mut buf, &config),
            ParseStatus::Incomplete
        ));
    }

    #[test]
    fn parser_reads_body_and_honors_version_defaults() {
        let config = ServerConfig::default();
        let mut buf = b"POST /p HTTP/1.0\r\nContent-Length: 3\r\n\r\nab".to_vec();
        assert!(matches!(
            parse_request(&mut buf, &config),
            ParseStatus::Incomplete
        ));
        buf.push(b'c');
        let ParseStatus::Request(req) = parse_request(&mut buf, &config) else {
            panic!("request should parse once the body arrives");
        };
        assert_eq!(req.body, "abc");
        assert_eq!(req.version, Version::H10);
        assert!(!req.keep_alive(), "HTTP/1.0 defaults to close");
    }

    #[test]
    fn response_head_centralizes_framing() {
        let head = ResponseHead::new(200, "OK", "text/html", true).emit(Framing::Chunked);
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("Transfer-Encoding: chunked\r\n"));
        assert!(head.contains("Connection: keep-alive\r\n"));
        assert!(head.ends_with("\r\n\r\n"));
        let head = ResponseHead::new(503, "Service Unavailable", "text/html", false)
            .emit(Framing::Length(5));
        assert!(head.contains("Content-Length: 5\r\n"));
        assert!(head.contains("Connection: close\r\n"));
    }
}
