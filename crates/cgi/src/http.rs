//! A minimal HTTP/1.0 server fronting the gateway.
//!
//! Stands in for the NCSA/IBM httpd of Figure 1: it accepts connections,
//! parses one request each (HTTP/1.0 close-per-request, as in 1996), routes
//! `/cgi-bin/db2www/…` to the [`Gateway`], serves registered static pages
//! (the "home page" of §1), and closes.
//!
//! Unlike the 1996 fork-per-request model, connections are served by a fixed
//! pool of workers (`DBGW_WORKERS`) fed from a bounded accept queue
//! (`DBGW_QUEUE`). When the queue is full the server sheds load with
//! `503 Retry-After` instead of accumulating threads, and
//! [`HttpServer::shutdown`] drains queued and in-flight requests before
//! joining the pool.

use crate::auth::{AuthDecision, BasicAuth};
use crate::gateway::Gateway;
use crate::log::{AccessLog, LogEntry};
use crate::request::{CgiRequest, CgiResponse, Method};
use crate::sync::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::Duration;

/// The CGI program mount point, as in the paper's URLs.
pub const CGI_PREFIX: &str = "/cgi-bin/db2www";

/// The admin metrics page: HTML by default, Prometheus-style text with
/// `?format=prometheus`.
pub const STATS_PATH: &str = "/stats";

/// Worker-pool and socket limits.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving requests (`DBGW_WORKERS`).
    pub workers: usize,
    /// Accepted connections waiting for a worker before the server sheds
    /// load with 503 (`DBGW_QUEUE`).
    pub queue: usize,
    /// Largest request body accepted before answering 413 (`DBGW_MAX_BODY`).
    pub max_body: usize,
    /// Largest number of request headers accepted.
    pub max_headers: usize,
    /// Socket read/write timeout, so a stalled peer cannot pin a worker.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue: 64,
            max_body: 1 << 20,
            max_headers: 100,
            io_timeout: Duration::from_secs(10),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by `DBGW_WORKERS`, `DBGW_QUEUE`, and
    /// `DBGW_MAX_BODY`.
    pub fn from_env() -> ServerConfig {
        let mut config = ServerConfig::default();
        if let Some(n) = env_usize("DBGW_WORKERS") {
            config.workers = n.max(1);
        }
        if let Some(n) = env_usize("DBGW_QUEUE") {
            config.queue = n.max(1);
        }
        if let Some(n) = env_usize("DBGW_MAX_BODY") {
            config.max_body = n;
        }
        config
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// A running server.
pub struct HttpServer {
    inner: Arc<ServerInner>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

struct ServerInner {
    gateway: Gateway,
    config: ServerConfig,
    static_pages: RwLock<HashMap<String, String>>,
    auth: RwLock<Option<BasicAuth>>,
    log: AccessLog,
    stop: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl HttpServer {
    /// Bind to `127.0.0.1:port` (0 picks a free port) and start accepting,
    /// with the pool configuration from the environment.
    pub fn start(gateway: Gateway, port: u16) -> std::io::Result<HttpServer> {
        HttpServer::start_with_config(gateway, port, ServerConfig::from_env())
    }

    /// Bind and start with an explicit pool configuration.
    pub fn start_with_config(
        gateway: Gateway,
        port: u16,
        config: ServerConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ServerInner {
            gateway,
            config,
            static_pages: RwLock::new(HashMap::new()),
            auth: RwLock::new(None),
            log: AccessLog::new(),
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(inner.config.workers);
        for _ in 0..inner.config.workers {
            let worker_inner = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || worker_loop(&worker_inner)));
        }
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                enqueue(&accept_inner, stream);
            }
        });
        Ok(HttpServer {
            inner,
            addr,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Register a static page at `path` (must start with `/`).
    pub fn add_static_page(&self, path: &str, html: &str) {
        self.inner
            .static_pages
            .write()
            .insert(path.to_owned(), html.to_owned());
    }

    /// The gateway being served.
    pub fn gateway(&self) -> &Gateway {
        &self.inner.gateway
    }

    /// Install HTTP Basic authentication (httpd-style path protection, §5).
    pub fn set_auth(&self, auth: BasicAuth) {
        *self.inner.auth.write() = Some(auth);
    }

    /// The shared access log (Common Log Format entries).
    pub fn access_log(&self) -> AccessLog {
        self.inner.log.clone()
    }

    /// Stop accepting, drain queued and in-flight requests, and join the
    /// accept thread and worker pool.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Kick the blocked accept() with a throwaway connection; the accept
        // loop re-checks `stop` before queueing it.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Wake every waiting worker; each drains the queue, finishes its
        // in-flight request, and exits.
        drop(self.inner.queue.lock());
        self.inner.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Queue an accepted connection for the pool, or shed it with 503 when the
/// queue is full.
fn enqueue(inner: &ServerInner, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.config.io_timeout));
    let _ = stream.set_write_timeout(Some(inner.config.io_timeout));
    let rejected = {
        let mut q = inner.queue.lock();
        if q.len() >= inner.config.queue {
            Some(stream)
        } else {
            q.push_back(stream);
            dbgw_obs::metrics().queue_depth.set(q.len() as i64);
            None
        }
    };
    match rejected {
        Some(stream) => {
            dbgw_obs::metrics().requests_shed.inc();
            let _ = shed_connection(stream);
        }
        None => inner.ready.notify_one(),
    }
}

/// Tell an over-queue client to come back: read (and discard) its request so
/// the response is not lost to a connection reset, then answer 503 with a
/// `Retry-After` hint.
fn shed_connection(mut stream: TcpStream) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut buf = [0u8; 4096];
    let mut data = Vec::new();
    while find_header_end(&data).is_none() && data.len() < 16 * 1024 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => data.extend_from_slice(&buf[..n]),
            Err(_) => break, // timed out; answer anyway
        }
    }
    let resp = CgiResponse::error(503, "server busy, try again shortly");
    write_response(&mut stream, &resp, None, Some(1))
}

/// One pool worker: serve queued connections until stopped *and* the queue
/// is drained.
fn worker_loop(inner: &ServerInner) {
    loop {
        let stream = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(s) = q.pop_front() {
                    dbgw_obs::metrics().queue_depth.set(q.len() as i64);
                    break Some(s);
                }
                if inner.stop.load(Ordering::SeqCst) {
                    break None;
                }
                // Bounded wait so a missed wakeup can never wedge shutdown.
                q = match inner.ready.wait_timeout(q, Duration::from_millis(50)) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        let Some(stream) = stream else { return };
        let m = dbgw_obs::metrics();
        m.requests_in_flight.inc();
        let _ = handle_connection(inner, stream);
        m.requests_in_flight.dec();
    }
}

fn handle_connection(inner: &ServerInner, mut stream: TcpStream) -> std::io::Result<()> {
    let remote = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "-".into());
    let request = read_request(&mut stream, &inner.config)?;
    let (response, user, realm, request_line) = match request {
        ReadOutcome::Request(req) => {
            let line = format!("{} {} HTTP/1.0", req.method, req.target);
            let (resp, user, realm) = dispatch(inner, req);
            (resp, user, realm, line)
        }
        ReadOutcome::Disconnected => return Ok(()),
        ReadOutcome::Malformed => (
            CgiResponse::error(400, "malformed request"),
            "-".to_owned(),
            None,
            "- - -".to_owned(),
        ),
        ReadOutcome::TooLarge => (
            CgiResponse::error(413, "request larger than the configured limit"),
            "-".to_owned(),
            None,
            "- - -".to_owned(),
        ),
    };
    inner.log.record(LogEntry {
        remote,
        user,
        timestamp: 0, // stamped by the log's clock in record()
        request_line,
        status: response.status,
        bytes: response.body.len(),
    });
    write_response(&mut stream, &response, realm.as_deref(), None)
}

/// A parsed HTTP request.
struct HttpRequest {
    method: String,
    target: String,
    headers: Vec<(String, String)>,
    body: String,
}

impl HttpRequest {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// What came off the wire.
enum ReadOutcome {
    /// A complete request.
    Request(HttpRequest),
    /// The peer closed without sending anything (e.g. the shutdown kick).
    Disconnected,
    /// Not parseable as HTTP.
    Malformed,
    /// Headers or declared body size exceed the configured limits.
    TooLarge,
}

fn read_request(stream: &mut TcpStream, config: &ServerConfig) -> std::io::Result<ReadOutcome> {
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    // Read until we have the full header block.
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Ok(ReadOutcome::TooLarge); // header flood
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(if buf.is_empty() {
                ReadOutcome::Disconnected
            } else {
                ReadOutcome::Malformed
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let header_text = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = header_text.lines();
    let request_line = lines.next().unwrap_or_default().to_owned();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let target = parts.next().unwrap_or("").to_owned();
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if headers.len() >= config.max_headers {
                return Ok(ReadOutcome::TooLarge);
            }
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
    }
    // Refuse oversized bodies up front instead of trusting Content-Length to
    // size a buffer: the declared length is a client-controlled number.
    if content_length > config.max_body {
        return Ok(ReadOutcome::TooLarge);
    }
    // Body bytes already buffered, plus whatever remains on the wire.
    let body_start = header_end + 4;
    let mut body: Vec<u8> = buf.get(body_start.min(buf.len())..).unwrap_or(&[]).to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > config.max_body {
            return Ok(ReadOutcome::TooLarge);
        }
    }
    body.truncate(content_length);
    Ok(ReadOutcome::Request(HttpRequest {
        method,
        target,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    }))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Returns (response, authenticated user for the log, challenge realm).
fn dispatch(inner: &ServerInner, req: HttpRequest) -> (CgiResponse, String, Option<String>) {
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.target.as_str(), ""),
    };
    // Authentication before anything else, like httpd's access checks.
    let mut user = "-".to_owned();
    if let Some(guard) = inner.auth.read().as_ref() {
        match guard.check(path, req.header("authorization")) {
            AuthDecision::Open => {}
            AuthDecision::Allow(name) => user = name,
            AuthDecision::Challenge(realm) => {
                return (
                    CgiResponse::error(401, "authorization required"),
                    user,
                    Some(realm),
                );
            }
        }
    }
    let method = match req.method.as_str() {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => {
            return (
                CgiResponse::error(405, "only GET and POST are supported"),
                user,
                None,
            )
        }
    };
    // CGI dispatch (also accept the paper's db2www.exe spelling; the longer
    // prefix must be tried first, and the remainder must be a real subpath).
    for prefix in ["/cgi-bin/db2www.exe", CGI_PREFIX] {
        if let Some(path_info) = path.strip_prefix(prefix).filter(|p| p.starts_with('/')) {
            let cgi = CgiRequest {
                method,
                path_info: path_info.to_owned(),
                query_string: query.to_owned(),
                if_none_match: req.header("if-none-match").map(str::to_owned),
                body: req.body,
                request_id: dbgw_obs::next_request_id(),
            };
            // The request context is created here, at the HTTP edge, so the
            // deadline covers the whole request.
            let ctx = inner.gateway.make_ctx(cgi.request_id);
            return (inner.gateway.handle_with_ctx(&cgi, &ctx), user, None);
        }
    }
    if path == STATS_PATH {
        return (stats_response(inner, query), user, None);
    }
    if let Some(page) = inner.static_pages.read().get(path) {
        return (CgiResponse::html(page.clone()), user, None);
    }
    (
        CgiResponse::error(404, &format!("no page at {path}")),
        user,
        None,
    )
}

/// How many digests the `/stats` views show (top-N by total time).
const STATS_DIGEST_TOP_N: usize = 20;

/// The `/stats` admin page: process metrics, the query-digest table, the
/// sampled time series with SLO attainment, and the slow-query log as HTML —
/// or the raw Prometheus-style text with `?format=prometheus`.
fn stats_response(inner: &ServerInner, query: &str) -> CgiResponse {
    let m = dbgw_obs::metrics();
    let points = inner.gateway.sampler().points();
    let slo = dbgw_obs::slo::evaluate(&points, &inner.gateway.slo_config());
    if query
        .split('&')
        .any(|pair| pair == "format=prometheus" || pair == "format=text")
    {
        let mut body = dbgw_obs::export::render_prometheus(m);
        body.push_str(&dbgw_obs::export::digest_prometheus(
            dbgw_obs::digests(),
            STATS_DIGEST_TOP_N,
        ));
        body.push_str(&dbgw_obs::export::slo_prometheus(&slo));
        return CgiResponse {
            status: 200,
            content_type: "text/plain".into(),
            body,
            headers: Vec::new(),
        };
    }
    let mut body = String::from(
        "<HTML><HEAD><TITLE>Gateway Statistics</TITLE></HEAD>\n<BODY><H1>Gateway Statistics</H1>\n",
    );
    body.push_str("<H2>Counters</H2>\n<TABLE BORDER=1>\n");
    for (name, value) in [
        ("requests", m.requests.get()),
        ("request errors", m.request_errors.get()),
        ("requests shed", m.requests_shed.get()),
        ("request timeouts", m.request_timeouts.get()),
        ("macro parses", m.macro_parses.get()),
        ("substitutions", m.substitutions.get()),
        ("SQL statements", m.sql_statements.get()),
        ("rows rendered", m.rows_rendered.get()),
        ("slow queries", m.slow_queries.get()),
        ("traces recorded", m.traces_recorded.get()),
        ("cache hits", m.cache_hits.get()),
        ("cache misses", m.cache_misses.get()),
        ("cache evictions", m.cache_evictions.get()),
        ("cache invalidations", m.cache_invalidations.get()),
        ("statement cache hits", m.stmt_cache_hits.get()),
        ("statement cache misses", m.stmt_cache_misses.get()),
        ("HTTP 304 not modified", m.http_not_modified.get()),
        ("hash joins", m.join_hash.get()),
        ("nested-loop joins", m.join_nested.get()),
        ("pushdown applied", m.pushdown_applied.get()),
        ("rows scanned", m.rows_scanned.get()),
        ("latch waits", m.latch_waits.get()),
        ("stats refreshes", m.stats_refreshes.get()),
        ("join reorders", m.join_reorders.get()),
        ("snapshots published", m.snapshots_published.get()),
        ("WAL records", m.wal_records.get()),
        ("WAL fsyncs", m.wal_fsyncs.get()),
        ("WAL bytes", m.wal_bytes.get()),
        ("checkpoints", m.checkpoints.get()),
    ] {
        body.push_str(&format!("<TR><TD>{name}</TD><TD>{value}</TD></TR>\n"));
    }
    body.push_str("</TABLE>\n<H2>Pool</H2>\n<TABLE BORDER=1>\n");
    for (name, value) in [
        ("requests in flight", m.requests_in_flight.get()),
        ("queue depth", m.queue_depth.get()),
        ("cache bytes", m.cache_bytes.get()),
        ("snapshot epoch", m.snapshot_epoch.get()),
        (
            "snapshot age ms",
            dbgw_obs::export::snapshot_age_ms(m) as i64,
        ),
        ("WAL size bytes", m.wal_size_bytes.get()),
        ("checkpoint last bytes", m.checkpoint_last_bytes.get()),
    ] {
        body.push_str(&format!("<TR><TD>{name}</TD><TD>{value}</TD></TR>\n"));
    }
    body.push_str("</TABLE>\n<H2>Latency</H2>\n<TABLE BORDER=1>\n");
    for (name, h) in [
        ("request", &m.request_latency_ns),
        ("sql", &m.sql_latency_ns),
        ("latch wait", &m.latch_wait_ns),
        ("group-commit wait", &m.group_commit_wait_ns),
    ] {
        let count = h.count();
        let mean_ms = if count == 0 {
            0.0
        } else {
            h.sum_ns() as f64 / count as f64 / 1e6
        };
        body.push_str(&format!(
            "<TR><TD>{name}</TD><TD>{count} observations</TD><TD>mean {mean_ms:.3} ms</TD></TR>\n"
        ));
    }
    body.push_str("</TABLE>\n");
    push_digest_table(&mut body);
    push_series_section(&mut body, &points, inner.gateway.sampler().interval_ms());
    push_slo_section(&mut body, &slo);
    let codes = m.sqlcode_errors.snapshot();
    if !codes.is_empty() {
        body.push_str("<H2>SQLCODEs</H2>\n<TABLE BORDER=1>\n");
        for (code, count) in codes {
            body.push_str(&format!("<TR><TD>{code}</TD><TD>{count}</TD></TR>\n"));
        }
        body.push_str("</TABLE>\n");
    }
    let slow = inner.gateway.slow_queries().entries();
    if !slow.is_empty() {
        body.push_str("<H2>Slow queries</H2>\n<UL>\n");
        for q in slow.iter().rev().take(20) {
            body.push_str(&format!(
                "<LI><CODE>{}</CODE>\n",
                dbgw_html::escape_text(&q.to_line())
            ));
        }
        body.push_str("</UL>\n");
    }
    body.push_str("<P><A HREF=\"/stats?format=prometheus\">prometheus text</A></P>\n");
    body.push_str("</BODY></HTML>\n");
    CgiResponse::html(body)
}

/// The pg_stat_statements-style digest table: top-N normalized statements by
/// total execution time, with latency quantiles from each digest's histogram.
fn push_digest_table(body: &mut String) {
    let store = dbgw_obs::digests();
    let top = store.top_by_total_time(STATS_DIGEST_TOP_N);
    if top.is_empty() {
        return;
    }
    body.push_str(
        "<H2>Query digests</H2>\n<TABLE BORDER=1>\n\
         <TR><TH>digest</TH><TH>statement</TH><TH>calls</TH><TH>errors</TH>\
         <TH>rows ret</TH><TH>rows scan</TH><TH>cache hit%</TH>\
         <TH>mean ms</TH><TH>p99 ms</TH><TH>total ms</TH><TH>latch ms</TH></TR>\n",
    );
    for d in &top {
        let lookups = d.cache_hits + d.cache_misses;
        let hit_pct = if lookups == 0 {
            "-".to_owned()
        } else {
            format!("{:.0}", d.cache_hits as f64 * 100.0 / lookups as f64)
        };
        let mean_ms = d.total_ns as f64 / d.calls.max(1) as f64 / 1e6;
        let p99_ms = dbgw_obs::digest::quantile_from_buckets(&d.buckets, 0.99) as f64 / 1e6;
        body.push_str(&format!(
            "<TR><TD><CODE>{:016x}</CODE></TD><TD><CODE>{}</CODE></TD>\
             <TD>{}</TD><TD>{}</TD><TD>{}</TD><TD>{}</TD><TD>{hit_pct}</TD>\
             <TD>{mean_ms:.3}</TD><TD>{p99_ms:.3}</TD><TD>{:.3}</TD><TD>{:.3}</TD></TR>\n",
            d.key,
            dbgw_html::escape_text(&d.text),
            d.calls,
            d.errors,
            d.rows_returned,
            d.rows_scanned,
            d.total_ns as f64 / 1e6,
            d.latch_wait_ns as f64 / 1e6,
        ));
    }
    body.push_str(&format!(
        "</TABLE>\n<P>{} digest{} tracked.</P>\n",
        store.len(),
        if store.len() == 1 { "" } else { "s" }
    ));
}

/// Sparkline history from the sampled ring: request rate, p99, error rate,
/// and cache hit ratio per interval, oldest to newest.
fn push_series_section(
    body: &mut String,
    points: &[dbgw_obs::series::SamplePoint],
    interval_ms: u64,
) {
    if points.is_empty() {
        return;
    }
    use dbgw_obs::series::sparkline;
    body.push_str(&format!(
        "<H2>History</H2>\n<P>{} sample{} at {interval_ms} ms intervals (oldest first)</P>\n\
         <TABLE BORDER=1>\n",
        points.len(),
        if points.len() == 1 { "" } else { "s" }
    ));
    let latest = points.last().expect("non-empty");
    let rows: [(&str, Vec<f64>, String); 4] = [
        (
            "req/s",
            points.iter().map(|p| p.req_rate).collect(),
            format!("{:.1}", latest.req_rate),
        ),
        (
            "p99 ms",
            points.iter().map(|p| p.p99_ms).collect(),
            format!("{:.3}", latest.p99_ms),
        ),
        (
            "error rate",
            points.iter().map(|p| p.error_rate).collect(),
            format!("{:.3}", latest.error_rate),
        ),
        (
            "cache hit ratio",
            points.iter().map(|p| p.cache_hit_ratio).collect(),
            format!("{:.2}", latest.cache_hit_ratio),
        ),
    ];
    for (name, values, latest) in rows {
        body.push_str(&format!(
            "<TR><TD>{name}</TD><TD><CODE>{}</CODE></TD><TD>latest {latest}</TD></TR>\n",
            sparkline(&values)
        ));
    }
    body.push_str("</TABLE>\n");
}

/// SLO attainment and burn rate over the sampled window.
fn push_slo_section(body: &mut String, slo: &dbgw_obs::slo::SloReport) {
    if slo.p99_target_ms.is_none() && slo.error_budget.is_none() {
        return;
    }
    body.push_str("<H2>SLO</H2>\n<TABLE BORDER=1>\n");
    body.push_str(&format!(
        "<TR><TD>window</TD><TD>{} samples ({} busy), {} requests, {} errors</TD></TR>\n",
        slo.samples, slo.busy_samples, slo.requests, slo.errors
    ));
    if let Some(target) = slo.p99_target_ms {
        let att = match slo.latency_attainment_pct {
            Some(pct) => format!("{pct:.1}% of busy samples met it"),
            None => "no traffic yet".to_owned(),
        };
        body.push_str(&format!(
            "<TR><TD>p99 target</TD><TD>{target} ms &mdash; {att}</TD></TR>\n"
        ));
    }
    if let Some(budget) = slo.error_budget {
        let burn = slo.burn_rate.unwrap_or(0.0);
        let remaining = slo.budget_remaining_pct.unwrap_or(100.0);
        body.push_str(&format!(
            "<TR><TD>error budget</TD><TD>{budget} &mdash; burn rate {burn:.2}&times; \
             ({remaining:.1}% of budget remaining)</TD></TR>\n",
        ));
    }
    body.push_str("</TABLE>\n");
}

fn write_response(
    stream: &mut TcpStream,
    resp: &CgiResponse,
    challenge_realm: Option<&str>,
    retry_after: Option<u64>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        resp.reason(),
        resp.content_type,
        resp.body.len()
    );
    if let Some(realm) = challenge_realm {
        head.push_str(&format!("WWW-Authenticate: Basic realm=\"{realm}\"\r\n"));
    }
    if let Some(seconds) = retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    fn server() -> HttpServer {
        let db = minisql::Database::new();
        db.run_script(
            "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
             INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM');",
        )
        .unwrap();
        let gw = Gateway::new(db);
        gw.add_macro(
            "q.d2w",
            "%SQL{ SELECT url, title FROM urldb %}\n\
             %HTML_INPUT{<FORM METHOD=\"post\" ACTION=\"/cgi-bin/db2www/q.d2w/report\">\
             <INPUT NAME=\"SEARCH\"></FORM>%}\n\
             %HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let server = HttpServer::start_with_config(gw, 0, ServerConfig::default()).unwrap();
        server.add_static_page("/", "<HTML><BODY>home</BODY></HTML>");
        server
    }

    #[test]
    fn serves_static_and_cgi() {
        let server = server();
        let client = HttpClient::new(server.addr());
        let home = client.get("/").unwrap();
        assert_eq!(home.status, 200);
        assert!(home.body.contains("home"));

        let form = client.get("/cgi-bin/db2www/q.d2w/input").unwrap();
        assert!(form.body.contains("NAME=\"SEARCH\""));

        let report = client
            .post("/cgi-bin/db2www/q.d2w/report", "SEARCH=ib")
            .unwrap();
        assert!(report.body.contains("http://www.ibm.com"));
        server.shutdown();
    }

    #[test]
    fn missing_page_404_and_bad_method() {
        let server = server();
        let client = HttpClient::new(server.addr());
        assert_eq!(client.get("/nowhere").unwrap().status, 404);
        let raw = client
            .raw("PUT /cgi-bin/db2www/q.d2w/input HTTP/1.0\r\n\r\n")
            .unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"));
        server.shutdown();
    }

    #[test]
    fn exe_spelling_accepted() {
        let server = server();
        let client = HttpClient::new(server.addr());
        let resp = client.get("/cgi-bin/db2www.exe/q.d2w/input").unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }

    #[test]
    fn concurrent_requests() {
        let server = server();
        let addr = server.addr();
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(move || {
                let client = HttpClient::new(addr);
                let resp = client.get("/cgi-bin/db2www/q.d2w/report").unwrap();
                assert_eq!(resp.status, 200);
                assert!(resp.body.contains("IBM"));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413() {
        let server = server();
        let client = HttpClient::new(server.addr());
        // Declared length far over the limit: refused before any body read.
        let raw = client
            .raw("POST /cgi-bin/db2www/q.d2w/report HTTP/1.0\r\nContent-Length: 99999999\r\n\r\n")
            .unwrap();
        assert!(raw.starts_with("HTTP/1.0 413"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn too_many_headers_rejected() {
        let server = server();
        let client = HttpClient::new(server.addr());
        let mut req = String::from("GET / HTTP/1.0\r\n");
        for i in 0..200 {
            req.push_str(&format!("X-Pad-{i}: x\r\n"));
        }
        req.push_str("\r\n");
        let raw = client.raw(&req).unwrap();
        assert!(raw.starts_with("HTTP/1.0 413"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn config_from_env_defaults() {
        let config = ServerConfig::default();
        assert_eq!(config.workers, 4);
        assert_eq!(config.queue, 64);
        assert_eq!(config.max_body, 1 << 20);
    }
}
