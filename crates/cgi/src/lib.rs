//! **dbgw-cgi** — the Web substrate of the gateway reproduction.
//!
//! Everything between the end user's browser and the macro engine:
//!
//! * [`urlencode`] — `application/x-www-form-urlencoded` percent coding,
//! * [`query`] — `QUERY_STRING` multimap parsing (§2.2/§2.3 of the paper),
//! * [`request`] — the CGI request/response boundary (Figure 4),
//! * [`bridge`] — the [`minisql`] adapter behind [`dbgw_core::Database`],
//! * [`gateway`] — the `db2www` program: macro store + dispatch (§4),
//! * [`http`] — an evented HTTP/1.1 server standing in for httpd: epoll
//!   keep-alive multiplexing, pipelining, and chunked streaming of reports,
//! * [`client`] — a programmatic browser with §2.2-faithful form submission
//!   and keep-alive connection reuse.

#![warn(missing_docs)]

pub mod auth;
pub mod bridge;
pub mod client;
mod evloop;
pub mod gateway;
pub mod http;
pub mod log;
pub mod net;
pub mod query;
pub mod request;
pub mod session;
pub mod urlencode;

/// Poison-recovering lock wrappers, re-exported from the shared
/// [`dbgw_sync`] crate (the former in-crate copy moved there).
pub use dbgw_sync as sync;

pub use auth::{base64_decode, base64_encode, AuthDecision, BasicAuth};
pub use bridge::MiniSqlDatabase;
pub use client::{FormFill, HttpClient, HttpConnection};
pub use gateway::{
    trace_comment, BodySink, ConnectionSource, FnSource, Gateway, Handled, TraceOptions,
    REQUEST_ID_VAR,
};
pub use http::{HttpServer, ServerConfig, CGI_PREFIX, STATS_PATH};
pub use log::{AccessLog, LogEntry, SlowQuery, SlowQueryLog};
pub use query::QueryString;
pub use request::{CgiRequest, CgiResponse, Method};
pub use session::SessionManager;
