//! Access logging in NCSA Common Log Format, plus the slow-query log.
//!
//! The 1996 httpd wrote `access_log` lines that a generation of analytics
//! tooling parsed; the reproduction's server records the same shape so the
//! concurrency experiments can audit exactly which requests ran. Timestamps
//! come from an injectable [`WallClock`]: binaries use the system clock,
//! tests pin a [`dbgw_obs::TestWallClock`] so entries stay structurally
//! comparable.

use crate::sync::Mutex;
use dbgw_obs::clock::format_clf;
use dbgw_obs::{SystemWallClock, WallClock};
use std::sync::Arc;

/// One logged request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Client identifier (we log the peer address).
    pub remote: String,
    /// Authenticated user, `-` when anonymous.
    pub user: String,
    /// Request completion time, seconds since the Unix epoch. Stamped by
    /// [`AccessLog::record`] from the log's clock — whatever the caller set
    /// here is overwritten, so entry construction stays clock-free.
    pub timestamp: u64,
    /// Request line, e.g. `GET /cgi-bin/db2www/u.d2w/input HTTP/1.0`.
    pub request_line: String,
    /// Response status code.
    pub status: u16,
    /// Response body bytes.
    pub bytes: usize,
}

impl LogEntry {
    /// Render in Common Log Format, timestamp included:
    /// `host - user [04/Jun/1996:12:00:00 +0000] "request" status bytes`.
    pub fn to_common_log(&self) -> String {
        format!(
            "{} - {} {} \"{}\" {} {}",
            self.remote,
            self.user,
            format_clf(self.timestamp),
            self.request_line,
            self.status,
            self.bytes
        )
    }
}

/// A shared, thread-safe access log.
#[derive(Clone)]
pub struct AccessLog {
    entries: Arc<Mutex<Vec<LogEntry>>>,
    clock: Arc<dyn WallClock>,
}

impl Default for AccessLog {
    fn default() -> Self {
        AccessLog::new()
    }
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog")
            .field("entries", &self.entries.lock().len())
            .finish()
    }
}

impl AccessLog {
    /// Empty log stamping entries from the system wall clock.
    pub fn new() -> AccessLog {
        AccessLog::with_clock(Arc::new(SystemWallClock))
    }

    /// Empty log over an explicit clock (tests inject a
    /// [`dbgw_obs::TestWallClock`] for deterministic timestamps).
    pub fn with_clock(clock: Arc<dyn WallClock>) -> AccessLog {
        AccessLog {
            entries: Arc::new(Mutex::new(Vec::new())),
            clock,
        }
    }

    /// Record one request, stamping it with the log's clock.
    pub fn record(&self, mut entry: LogEntry) {
        entry.timestamp = self.clock.epoch_secs();
        self.entries.lock().push(entry);
    }

    /// Snapshot of all entries.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.entries.lock().clone()
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Clear all entries (benchmark hygiene).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

/// One SQL statement that crossed the slow-query threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// The request that executed it (see [`crate::CgiRequest::request_id`]).
    pub request_id: u64,
    /// The statement's normalized digest text (literals masked as `?`), not
    /// the raw post-substitution SQL — slow logs are long-lived and must not
    /// retain user-supplied literal values.
    pub statement: String,
    /// Observed execution time, nanoseconds on the gateway's clock.
    pub dur_ns: u64,
    /// The statement's SQLCODE (0 on success, negative on error).
    pub sqlcode: i32,
    /// Per-operator plan actuals (`EXPLAIN ANALYZE` summary), present when
    /// the gateway's passive capture collected them for this statement.
    pub plan: Option<String>,
}

impl SlowQuery {
    /// Render as one log line, the shape the access log's consumers expect:
    /// `slow-query request=7 12.500ms sqlcode=0 "select …" plan=[scan 5→3 …]`.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "slow-query request={} {:.3}ms sqlcode={} \"{}\"",
            self.request_id,
            self.dur_ns as f64 / 1e6,
            self.sqlcode,
            self.statement
        );
        if let Some(plan) = &self.plan {
            line.push_str(&format!(" plan=[{plan}]"));
        }
        line
    }
}

/// A shared, thread-safe slow-query log, fed by the gateway whenever a
/// statement exceeds the `DBGW_SLOW_MS` threshold.
#[derive(Debug, Clone, Default)]
pub struct SlowQueryLog {
    entries: Arc<Mutex<Vec<SlowQuery>>>,
}

impl SlowQueryLog {
    /// Empty log.
    pub fn new() -> SlowQueryLog {
        SlowQueryLog::default()
    }

    /// Record one slow statement.
    pub fn record(&self, entry: SlowQuery) {
        self.entries.lock().push(entry);
    }

    /// Snapshot of all entries.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.entries.lock().clone()
    }

    /// Number of recorded statements.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Clear all entries.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_obs::TestWallClock;

    fn entry() -> LogEntry {
        LogEntry {
            remote: "127.0.0.1".into(),
            user: "-".into(),
            timestamp: 0,
            request_line: "GET /cgi-bin/db2www/u.d2w/input HTTP/1.0".into(),
            status: 200,
            bytes: 1234,
        }
    }

    #[test]
    fn records_and_formats_with_timestamp() {
        // 1996-06-04 12:00:00 UTC.
        let log = AccessLog::with_clock(Arc::new(TestWallClock::at(833_889_600)));
        log.record(entry());
        assert_eq!(log.len(), 1);
        assert_eq!(
            log.entries()[0].to_common_log(),
            "127.0.0.1 - - [04/Jun/1996:12:00:00 +0000] \
             \"GET /cgi-bin/db2www/u.d2w/input HTTP/1.0\" 200 1234"
        );
    }

    #[test]
    fn record_stamps_from_the_log_clock() {
        let clock = Arc::new(TestWallClock::at(100));
        let log = AccessLog::with_clock(clock.clone());
        let mut e = entry();
        e.timestamp = 999_999; // caller-set values are overwritten
        log.record(e);
        clock.advance_secs(50);
        log.record(entry());
        let entries = log.entries();
        assert_eq!(entries[0].timestamp, 100);
        assert_eq!(entries[1].timestamp, 150);
        // Structural comparison works because the clock is deterministic.
        let expected = LogEntry {
            timestamp: 100,
            ..entry()
        };
        assert_eq!(entries[0], expected);
    }

    #[test]
    fn shared_across_clones() {
        let log = AccessLog::with_clock(Arc::new(TestWallClock::at(0)));
        let clone = log.clone();
        clone.record(LogEntry {
            remote: "10.0.0.1".into(),
            user: "tam".into(),
            timestamp: 0,
            request_line: "POST /x HTTP/1.0".into(),
            status: 404,
            bytes: 0,
        });
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(clone.is_empty());
    }

    #[test]
    fn slow_query_log_lines() {
        let log = SlowQueryLog::new();
        log.record(SlowQuery {
            request_id: 7,
            statement: "select * from urldb where url = ?".into(),
            dur_ns: 12_500_000,
            sqlcode: 0,
            plan: None,
        });
        assert_eq!(
            log.entries()[0].to_line(),
            "slow-query request=7 12.500ms sqlcode=0 \"select * from urldb where url = ?\""
        );
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn slow_query_line_appends_plan_actuals() {
        let q = SlowQuery {
            request_id: 3,
            statement: "select * from urldb".into(),
            dur_ns: 1_000_000,
            sqlcode: 0,
            plan: Some("scan 5\u{2192}3 x1 0.010ms; total 0.055ms".into()),
        };
        assert_eq!(
            q.to_line(),
            "slow-query request=3 1.000ms sqlcode=0 \"select * from urldb\" \
             plan=[scan 5\u{2192}3 x1 0.010ms; total 0.055ms]"
        );
    }
}
