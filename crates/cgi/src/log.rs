//! Access logging in NCSA Common Log Format.
//!
//! The 1996 httpd wrote `access_log` lines that a generation of analytics
//! tooling parsed; the reproduction's server records the same shape so the
//! concurrency experiments can audit exactly which requests ran.

use crate::sync::Mutex;
use std::sync::Arc;

/// One logged request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Client identifier (we log the peer address).
    pub remote: String,
    /// Authenticated user, `-` when anonymous.
    pub user: String,
    /// Request line, e.g. `GET /cgi-bin/db2www/u.d2w/input HTTP/1.0`.
    pub request_line: String,
    /// Response status code.
    pub status: u16,
    /// Response body bytes.
    pub bytes: usize,
}

impl LogEntry {
    /// Render in Common Log Format (timestamp elided — the reproduction is
    /// deterministic and tests compare entries structurally).
    pub fn to_common_log(&self) -> String {
        format!(
            "{} - {} \"{}\" {} {}",
            self.remote, self.user, self.request_line, self.status, self.bytes
        )
    }
}

/// A shared, thread-safe access log.
#[derive(Debug, Clone, Default)]
pub struct AccessLog {
    entries: Arc<Mutex<Vec<LogEntry>>>,
}

impl AccessLog {
    /// Empty log.
    pub fn new() -> AccessLog {
        AccessLog::default()
    }

    /// Record one request.
    pub fn record(&self, entry: LogEntry) {
        self.entries.lock().push(entry);
    }

    /// Snapshot of all entries.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.entries.lock().clone()
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Clear all entries (benchmark hygiene).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_formats() {
        let log = AccessLog::new();
        log.record(LogEntry {
            remote: "127.0.0.1".into(),
            user: "-".into(),
            request_line: "GET /cgi-bin/db2www/u.d2w/input HTTP/1.0".into(),
            status: 200,
            bytes: 1234,
        });
        assert_eq!(log.len(), 1);
        assert_eq!(
            log.entries()[0].to_common_log(),
            "127.0.0.1 - - \"GET /cgi-bin/db2www/u.d2w/input HTTP/1.0\" 200 1234"
        );
    }

    #[test]
    fn shared_across_clones() {
        let log = AccessLog::new();
        let clone = log.clone();
        clone.record(LogEntry {
            remote: "10.0.0.1".into(),
            user: "tam".into(),
            request_line: "POST /x HTTP/1.0".into(),
            status: 404,
            bytes: 0,
        });
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(clone.is_empty());
    }
}
