//! Raw readiness primitives: `epoll` + `eventfd` without any crates.
//!
//! The evented edge ([`crate::evloop`]) needs exactly three kernel services:
//! a readiness multiplexer (`epoll`), a cross-thread wakeup (`eventfd`), and
//! nonblocking sockets (std's `set_nonblocking`). std exposes the last one;
//! the first two are declared here as `extern "C"` bindings to the libc the
//! binary already links. Linux-only by design — the repo's north star runs on
//! Linux and the blocking worker pool remains the portable fallback.

#![allow(clippy::missing_safety_doc)]

use std::io;
use std::os::unix::io::RawFd;

// --- libc declarations -----------------------------------------------------
// std links glibc; these symbols are always present on Linux.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// Readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Error condition (`EPOLLERR`) — always reported, no need to register.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x80000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs the
/// struct (no padding between `events` and `data`); other architectures use
/// natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-state bit mask (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event, for the `epoll_wait` output buffer.
    pub const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

/// An epoll instance plus an eventfd for cross-thread wakeups.
///
/// The wake fd is registered under [`Poller::WAKE_TOKEN`]; callers must treat
/// that token as reserved and call [`Poller::drain_wake`] when it fires.
pub struct Poller {
    epfd: RawFd,
    wakefd: RawFd,
}

impl Poller {
    /// The token the internal wakeup eventfd reports readiness under.
    pub const WAKE_TOKEN: u64 = u64::MAX;

    /// Create the epoll instance and its wakeup eventfd.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wakefd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if wakefd < 0 {
            let err = io::Error::last_os_error();
            unsafe { close(epfd) };
            return Err(err);
        }
        let poller = Poller { epfd, wakefd };
        poller.register(wakefd, Poller::WAKE_TOKEN, EPOLLIN)?;
        Ok(poller)
    }

    /// Watch `fd` for `events`, reporting readiness under `token`.
    pub fn register(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Stop watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent::zeroed();
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Block up to `timeout_ms` for readiness; fills `events` and returns the
    /// ready count. `EINTR` is treated as "zero events", not an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.epfd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }

    /// Wake a thread blocked in [`Poller::wait`] from any other thread.
    pub fn wake(&self) {
        let one: u64 = 1;
        // A full eventfd counter (EAGAIN) already guarantees a pending wake.
        unsafe { write(self.wakefd, &one as *const u64 as *const u8, 8) };
    }

    /// Clear the wakeup counter after a [`Poller::WAKE_TOKEN`] event.
    pub fn drain_wake(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.wakefd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.wakefd);
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wake_round_trip() {
        let poller = Poller::new().unwrap();
        poller.wake();
        let mut events = [EpollEvent::zeroed(); 4];
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, Poller::WAKE_TOKEN);
        poller.drain_wake();
        // Drained: an immediate poll sees nothing.
        let n = poller.wait(&mut events, 0).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readiness_reported_under_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.register(listener.as_raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        let mut client = TcpStream::connect(addr).unwrap();
        let n = poller.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);

        let (server_side, _) = listener.accept().unwrap();
        poller.deregister(listener.as_raw_fd()).unwrap();
        poller
            .register(server_side.as_raw_fd(), 9, EPOLLIN | EPOLLRDHUP)
            .unwrap();
        client.write_all(b"x").unwrap();
        let n = poller.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 9);
    }
}
