//! `QUERY_STRING` parsing: the CGI variable-passing format of §2.2–2.3.
//!
//! The Web client packages form variables as `name=value&name=value&…`; the
//! server hands that string to the CGI program via the `QUERY_STRING`
//! environment variable (GET) or standard input (POST). Repeated names make a
//! *list variable*. A variable sent with an empty value is, per the paper,
//! indistinguishable from one not sent at all — but we preserve it so the
//! engine's own null/undefined unification does the equating.

use crate::urlencode::{decode, encode};

/// An ordered multi-map of form variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryString {
    pairs: Vec<(String, String)>,
}

impl QueryString {
    /// Empty.
    pub fn new() -> QueryString {
        QueryString::default()
    }

    /// Parse the `name=value&…` wire format (also accepts `;` separators,
    /// which some 90s clients emitted).
    pub fn parse(raw: &str) -> QueryString {
        let mut pairs = Vec::new();
        for chunk in raw.split(['&', ';']) {
            if chunk.is_empty() {
                continue;
            }
            match chunk.split_once('=') {
                Some((name, value)) => pairs.push((decode(name), decode(value))),
                // An ISINDEX-style bare word is a name with a null value.
                None => pairs.push((decode(chunk), String::new())),
            }
        }
        QueryString { pairs }
    }

    /// Build from pairs (test client side).
    pub fn from_pairs<I, S1, S2>(pairs: I) -> QueryString
    where
        I: IntoIterator<Item = (S1, S2)>,
        S1: Into<String>,
        S2: Into<String>,
    {
        QueryString {
            pairs: pairs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        }
    }

    /// Append one pair.
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.pairs.push((name.into(), value.into()));
    }

    /// Serialize to the wire format.
    pub fn to_wire(&self) -> String {
        self.pairs
            .iter()
            .map(|(n, v)| format!("{}={}", encode(n), encode(v)))
            .collect::<Vec<_>>()
            .join("&")
    }

    /// All pairs in arrival order.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// First value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value for `name`, in order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_testkit::gen::{printable, vec_of};
    use dbgw_testkit::{prop_assert_eq, props};

    #[test]
    fn parses_paper_example() {
        // The §2.2 submission for Figure 3's selections.
        let q = QueryString::parse(
            "SEARCH=&USE_URL=yes&USE_TITLE=yes&USE_DESC=&DBFIELD=title&DBFIELD=desc&SHOWSQL=",
        );
        assert_eq!(q.get("SEARCH"), Some(""));
        assert_eq!(q.get("USE_URL"), Some("yes"));
        assert_eq!(q.get_all("DBFIELD"), vec!["title", "desc"]);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn decodes_values() {
        let q = QueryString::parse("a=x+y&b=%26%3D");
        assert_eq!(q.get("a"), Some("x y"));
        assert_eq!(q.get("b"), Some("&="));
    }

    #[test]
    fn bare_word_is_null_value() {
        let q = QueryString::parse("flag&x=1");
        assert_eq!(q.get("flag"), Some(""));
    }

    #[test]
    fn semicolon_separator_accepted() {
        let q = QueryString::parse("a=1;b=2");
        assert_eq!(q.get("b"), Some("2"));
    }

    #[test]
    fn wire_round_trip() {
        let q = QueryString::from_pairs([("name", "a b"), ("x&y", "=")]);
        let wire = q.to_wire();
        assert_eq!(QueryString::parse(&wire), q);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(QueryString::parse("").is_empty());
        assert!(QueryString::parse("&&").is_empty());
    }

    props! {
        fn round_trip_arbitrary_pairs(
            pairs in vec_of((printable(0..=12), printable(0..=12)), 0..=7),
        ) {
            let q = QueryString::from_pairs(pairs.clone());
            let parsed = QueryString::parse(&q.to_wire());
            // Empty-named chunks vanish on the wire (they serialize to "=v"
            // which parses back to an empty name, so equality holds — except
            // a completely empty pair list).
            prop_assert_eq!(parsed.pairs().len(), pairs.len());
            for ((n1, v1), (n2, v2)) in parsed.pairs().iter().zip(&pairs) {
                prop_assert_eq!(n1, n2);
                prop_assert_eq!(v1, v2);
            }
        }
    }
}
