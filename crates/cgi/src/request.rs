//! The CGI request/response model (§2.3, Figure 4).
//!
//! A Web server that receives a URL naming a CGI application starts the
//! program and passes it: the extra path (`PATH_INFO`), the query string
//! (`QUERY_STRING`), and — for POST — the form body on standard input. The
//! program writes headers and a page to standard output. [`CgiRequest`] and
//! [`CgiResponse`] model exactly that boundary, so the gateway logic is
//! testable without sockets and the HTTP server is a thin shell.

use crate::query::QueryString;

/// HTTP request method (the two the 1996 forms used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET — variables in the URL.
    Get,
    /// POST — variables in the body.
    Post,
}

/// What the Web server hands the CGI program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgiRequest {
    /// Request method.
    pub method: Method,
    /// Extra path after the program name, e.g. `/urlquery.d2w/report`.
    pub path_info: String,
    /// Raw query string (GET variables, also allowed on POST).
    pub query_string: String,
    /// Request body (POST form data).
    pub body: String,
    /// Process-wide request correlation id (counter-derived, no wall clock).
    /// Every trace span, slow-query entry, and error page produced while
    /// serving this request carries the same id.
    pub request_id: u64,
    /// The `If-None-Match` header, if the client sent one: the validator
    /// for a conditional GET against the gateway's deterministic `ETag`s.
    pub if_none_match: Option<String>,
}

impl CgiRequest {
    /// A GET request.
    pub fn get(path_info: &str, query_string: &str) -> CgiRequest {
        CgiRequest {
            method: Method::Get,
            path_info: path_info.to_owned(),
            query_string: query_string.to_owned(),
            body: String::new(),
            request_id: dbgw_obs::next_request_id(),
            if_none_match: None,
        }
    }

    /// A POST request with a form body.
    pub fn post(path_info: &str, body: &str) -> CgiRequest {
        CgiRequest {
            method: Method::Post,
            path_info: path_info.to_owned(),
            query_string: String::new(),
            body: body.to_owned(),
            request_id: dbgw_obs::next_request_id(),
            if_none_match: None,
        }
    }

    /// All form variables, URL query string first then POST body, preserving
    /// arrival order (repeats become list variables).
    pub fn variables(&self) -> QueryString {
        let mut q = QueryString::parse(&self.query_string);
        if self.method == Method::Post {
            for (name, value) in QueryString::parse(&self.body).pairs() {
                q.push(name.clone(), value.clone());
            }
        }
        q
    }

    /// The CGI environment pairs a fork/exec server would set — exposed for
    /// documentation/tests and the ease-of-construction comparison.
    pub fn environment(&self) -> Vec<(String, String)> {
        vec![
            (
                "REQUEST_METHOD".into(),
                match self.method {
                    Method::Get => "GET".into(),
                    Method::Post => "POST".into(),
                },
            ),
            ("PATH_INFO".into(), self.path_info.clone()),
            ("QUERY_STRING".into(), self.query_string.clone()),
            ("CONTENT_LENGTH".into(), self.body.len().to_string()),
            ("GATEWAY_INTERFACE".into(), "CGI/1.1".into()),
            ("SERVER_PROTOCOL".into(), "HTTP/1.0".into()),
        ]
    }
}

/// What the CGI program sends back through the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Content type (the gateway always produces `text/html`).
    pub content_type: String,
    /// Page body.
    pub body: String,
    /// Extra response headers (`ETag`, `Cache-Control`, …), written after
    /// the standard ones in order.
    pub headers: Vec<(String, String)>,
}

impl CgiResponse {
    /// 200 OK with an HTML body.
    pub fn html(body: String) -> CgiResponse {
        CgiResponse {
            status: 200,
            content_type: "text/html".into(),
            body,
            headers: Vec::new(),
        }
    }

    /// A 304 Not Modified answer to a conditional GET: no body, just the
    /// `ETag` the client's copy still matches.
    pub fn not_modified(etag: &str) -> CgiResponse {
        CgiResponse {
            status: 304,
            content_type: "text/html".into(),
            body: String::new(),
            headers: vec![("ETag".into(), etag.to_owned())],
        }
    }

    /// An error page.
    pub fn error(status: u16, message: &str) -> CgiResponse {
        CgiResponse {
            status,
            content_type: "text/html".into(),
            body: format!(
                "<HTML><HEAD><TITLE>Error {status}</TITLE></HEAD>\n\
                 <BODY><H1>Error {status}</H1>\n<P>{}</P></BODY></HTML>\n",
                dbgw_html::escape_text(message)
            ),
            headers: Vec::new(),
        }
    }

    /// An error page carrying the request's correlation id, so a failure a
    /// user reports can be matched to its trace and slow-query entries.
    pub fn error_for_request(status: u16, message: &str, request_id: u64) -> CgiResponse {
        CgiResponse {
            status,
            content_type: "text/html".into(),
            body: format!(
                "<HTML><HEAD><TITLE>Error {status}</TITLE></HEAD>\n\
                 <BODY><H1>Error {status}</H1>\n<P>{}</P>\n\
                 <P><SMALL>request {request_id}</SMALL></P></BODY></HTML>\n",
                dbgw_html::escape_text(message)
            ),
            headers: Vec::new(),
        }
    }

    /// The first value of header `name` (ASCII case-insensitive), if set.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_variables_from_query_string() {
        let req = CgiRequest::get("/m.d2w/report", "a=1&a=2&b=x");
        let vars = req.variables();
        assert_eq!(vars.get_all("a"), vec!["1", "2"]);
        assert_eq!(vars.get("b"), Some("x"));
    }

    #[test]
    fn post_merges_url_and_body() {
        let mut req = CgiRequest::post("/m.d2w/report", "c=3");
        req.query_string = "a=1".into();
        let vars = req.variables();
        assert_eq!(vars.get("a"), Some("1"));
        assert_eq!(vars.get("c"), Some("3"));
    }

    #[test]
    fn get_ignores_body() {
        let mut req = CgiRequest::get("/m.d2w/input", "");
        req.body = "x=1".into();
        assert!(req.variables().is_empty());
    }

    #[test]
    fn environment_shape() {
        let req = CgiRequest::get("/m.d2w/input", "q=1");
        let env = req.environment();
        assert!(env.contains(&("PATH_INFO".into(), "/m.d2w/input".into())));
        assert!(env.contains(&("QUERY_STRING".into(), "q=1".into())));
        assert!(env.contains(&("GATEWAY_INTERFACE".into(), "CGI/1.1".into())));
    }

    #[test]
    fn error_page_escapes_message() {
        let r = CgiResponse::error(400, "<bad>");
        assert!(r.body.contains("&lt;bad&gt;"));
        assert_eq!(r.reason(), "Bad Request");
    }
}
