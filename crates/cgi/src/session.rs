//! Conversational transactions across client-server interactions.
//!
//! §5 of the paper: the shipped system offered two transaction modes *within*
//! one request and "a rudimentary scheme for linking multiple client-server
//! interactions"; the authors state "we are working on supporting more
//! complex transaction modes in the future". This module implements that
//! future work: a transaction that stays open across several HTTP requests,
//! carried by a hidden `DTW_SESSION` variable (the product's reserved-name
//! convention), committed or aborted by a final request.
//!
//! Protocol (all via ordinary form variables, so macros stay plain HTML):
//!
//! * `DTW_SESSION=new` — open a session: the gateway allocates an id, opens a
//!   dedicated DBMS connection, issues `BEGIN`, and defines `SESSION_ID` for
//!   the macro (which embeds it in hidden fields / hyperlinks).
//! * `DTW_SESSION=<id>` — run this request's SQL on the session's connection,
//!   inside the still-open transaction.
//! * `DTW_SESSION=<id>` + `DTW_END=commit` / `DTW_END=abort` — finish.
//!
//! Sessions expire after a TTL (abandoned browsers must not pin locks
//! forever); expiry rolls back.

use crate::sync::Mutex;
use dbgw_core::db::{Database, DbError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reserved input variable selecting/creating a session.
pub const SESSION_VAR: &str = "DTW_SESSION";
/// Reserved input variable ending a session (`commit` or `abort`).
pub const END_VAR: &str = "DTW_END";
/// Variable the gateway defines for macros to embed.
pub const SESSION_ID_VAR: &str = "SESSION_ID";

struct Entry {
    conn: Box<dyn Database + Send>,
    last_used: Instant,
}

/// Holds open conversations. Each session carries its own lock, so requests
/// in *different* conversations run concurrently; requests within one
/// conversation serialize (it is one user clicking through pages).
pub struct SessionManager {
    sessions: Mutex<HashMap<String, Arc<Mutex<Entry>>>>,
    counter: AtomicU64,
    ttl: Duration,
}

/// What a request asked the session layer to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionAction {
    /// No session involvement: use a fresh per-request connection.
    None,
    /// A new session was created with this id.
    Started(String),
    /// An existing session continues.
    Continued(String),
    /// The session ended (committed = true) with this id.
    Ended {
        /// The session id.
        id: String,
        /// Whether the transaction committed (vs rolled back).
        committed: bool,
    },
    /// The id was unknown or expired.
    Unknown(String),
}

impl SessionManager {
    /// Manager with a time-to-live for idle sessions.
    pub fn new(ttl: Duration) -> SessionManager {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            counter: AtomicU64::new(1),
            ttl,
        }
    }

    /// Number of live sessions (after reaping).
    pub fn live(&self) -> usize {
        self.reap();
        self.sessions.lock().len()
    }

    /// Roll back and drop sessions idle past the TTL.
    pub fn reap(&self) {
        let mut sessions = self.sessions.lock();
        let now = Instant::now();
        sessions.retain(|_, slot| {
            // A session whose lock is held is in use: keep it.
            let Some(mut entry) = slot.try_lock() else {
                return true;
            };
            let keep = now.duration_since(entry.last_used) < self.ttl;
            if !keep {
                let _ = entry.conn.rollback();
            }
            keep
        });
    }

    /// Open a session around `conn` (the caller supplies the dedicated
    /// connection; `BEGIN` is issued here). Returns the new id.
    pub fn start(&self, mut conn: Box<dyn Database + Send>) -> Result<String, DbError> {
        conn.begin()?;
        let id = format!("s{}", self.counter.fetch_add(1, Ordering::Relaxed));
        self.sessions.lock().insert(
            id.clone(),
            Arc::new(Mutex::new(Entry {
                conn,
                last_used: Instant::now(),
            })),
        );
        Ok(id)
    }

    /// Borrow the session's connection for one request. Only this session's
    /// lock is held while the closure runs; other conversations proceed.
    pub fn with_session<R>(
        &self,
        id: &str,
        f: impl FnOnce(&mut (dyn Database + Send)) -> R,
    ) -> Option<R> {
        self.reap();
        let slot = self.sessions.lock().get(id).cloned()?;
        let mut entry = slot.lock();
        entry.last_used = Instant::now();
        Some(f(entry.conn.as_mut()))
    }

    /// Commit (or roll back) and drop the session.
    pub fn end(&self, id: &str, commit: bool) -> Option<Result<(), DbError>> {
        let slot = self.sessions.lock().remove(id)?;
        let mut entry = slot.lock();
        Some(if commit {
            entry.conn.commit()
        } else {
            entry.conn.rollback()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::MiniSqlDatabase;

    fn db() -> minisql::Database {
        let db = minisql::Database::new();
        db.run_script("CREATE TABLE t (v INTEGER)").unwrap();
        db
    }

    #[test]
    fn conversation_commits_atomically() {
        let base = db();
        let mgr = SessionManager::new(Duration::from_secs(60));
        let id = mgr
            .start(Box::new(MiniSqlDatabase::connect(&base)))
            .unwrap();
        // Two "requests" write inside the conversation.
        for v in [1, 2] {
            mgr.with_session(&id, |conn| {
                conn.execute(&format!("INSERT INTO t VALUES ({v})"))
                    .unwrap();
            })
            .unwrap();
        }
        // Not yet visible to other connections? (MiniSQL has no isolation —
        // but the rows are at least uncommitted, so abort removes them.)
        mgr.end(&id, true).unwrap().unwrap();
        assert_eq!(base.table_len("t").unwrap(), 2);
        assert_eq!(mgr.live(), 0);
    }

    #[test]
    fn conversation_abort_rolls_back_all_requests() {
        let base = db();
        let mgr = SessionManager::new(Duration::from_secs(60));
        let id = mgr
            .start(Box::new(MiniSqlDatabase::connect(&base)))
            .unwrap();
        for v in [1, 2, 3] {
            mgr.with_session(&id, |conn| {
                conn.execute(&format!("INSERT INTO t VALUES ({v})"))
                    .unwrap();
            })
            .unwrap();
        }
        mgr.end(&id, false).unwrap().unwrap();
        assert_eq!(base.table_len("t").unwrap(), 0);
    }

    #[test]
    fn unknown_session_is_none() {
        let mgr = SessionManager::new(Duration::from_secs(60));
        assert!(mgr.with_session("s99", |_| ()).is_none());
        assert!(mgr.end("s99", true).is_none());
    }

    #[test]
    fn expired_session_rolls_back() {
        let base = db();
        let mgr = SessionManager::new(Duration::from_millis(1));
        let id = mgr
            .start(Box::new(MiniSqlDatabase::connect(&base)))
            .unwrap();
        mgr.with_session(&id, |conn| {
            conn.execute("INSERT INTO t VALUES (1)").unwrap();
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(mgr.live(), 0);
        assert!(mgr.with_session(&id, |_| ()).is_none());
        assert_eq!(base.table_len("t").unwrap(), 0);
    }

    #[test]
    fn independent_conversations_do_not_serialize() {
        // One session blocked inside a request must not stop another
        // conversation from making progress.
        let base = db();
        let mgr = std::sync::Arc::new(SessionManager::new(Duration::from_secs(60)));
        let a = mgr
            .start(Box::new(MiniSqlDatabase::connect(&base)))
            .unwrap();
        let b = mgr
            .start(Box::new(MiniSqlDatabase::connect(&base)))
            .unwrap();
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let mgr_a = std::sync::Arc::clone(&mgr);
        let a_clone = a.clone();
        let holder = std::thread::spawn(move || {
            mgr_a.with_session(&a_clone, |conn| {
                conn.execute("INSERT INTO t VALUES (1)").unwrap();
                entered_tx.send(()).unwrap();
                release_rx.recv().unwrap(); // hold session a open
            });
        });
        entered_rx.recv().unwrap();
        // Session b proceeds while a is held.
        mgr.with_session(&b, |conn| {
            conn.execute("INSERT INTO t VALUES (2)").unwrap();
        })
        .expect("session b usable while a is busy");
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        mgr.end(&a, false);
        mgr.end(&b, false);
    }

    #[test]
    fn ids_are_unique() {
        let base = db();
        let mgr = SessionManager::new(Duration::from_secs(60));
        let a = mgr
            .start(Box::new(MiniSqlDatabase::connect(&base)))
            .unwrap();
        let b = mgr
            .start(Box::new(MiniSqlDatabase::connect(&base)))
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(mgr.live(), 2);
    }
}
