//! `application/x-www-form-urlencoded` percent coding.
//!
//! The encoding every 90s browser used for form submission (§2.2 of the
//! paper): spaces become `+`, reserved/non-ASCII bytes become `%XX`, and the
//! decoder is forgiving about malformed escapes (passing them through
//! literally, as NCSA httpd did).

/// Percent-encode a form field name or value.
///
/// Unreserved characters (`A-Z a-z 0-9 - _ . * `) pass through; space becomes
/// `+`; everything else is `%XX` per UTF-8 byte.
///
/// ```
/// use dbgw_cgi::urlencode::encode;
/// assert_eq!(encode("a b&c=d"), "a+b%26c%3Dd");
/// ```
pub fn encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'*' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            other => {
                out.push('%');
                out.push(hex_digit(other >> 4));
                out.push(hex_digit(other & 0xF));
            }
        }
    }
    out
}

fn hex_digit(nibble: u8) -> char {
    char::from_digit(nibble as u32, 16)
        .expect("nibble < 16")
        .to_ascii_uppercase()
}

/// Decode a percent-encoded form field.
///
/// `+` becomes space; `%XX` decodes bytewise; invalid UTF-8 sequences are
/// replaced with U+FFFD; malformed escapes pass through literally.
///
/// ```
/// use dbgw_cgi::urlencode::decode;
/// assert_eq!(decode("a+b%26c"), "a b&c");
/// assert_eq!(decode("100%"), "100%");
/// ```
pub fn decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 => {
                let hi = bytes.get(i + 1).and_then(|&c| (c as char).to_digit(16));
                let lo = bytes.get(i + 2).and_then(|&c| (c as char).to_digit(16));
                match (hi, lo) {
                    (Some(hi), Some(lo)) => {
                        out.push(((hi << 4) | lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_testkit::gen::{ascii, printable};
    use dbgw_testkit::{prop_assert_eq, props};

    #[test]
    fn encode_basics() {
        assert_eq!(encode("hello"), "hello");
        assert_eq!(encode("a b"), "a+b");
        assert_eq!(encode("50%"), "50%25");
        assert_eq!(encode("key=val&x"), "key%3Dval%26x");
        assert_eq!(encode("café"), "caf%C3%A9");
    }

    #[test]
    fn decode_basics() {
        assert_eq!(decode("a+b"), "a b");
        assert_eq!(decode("caf%C3%A9"), "café");
        assert_eq!(decode("%3D%26"), "=&");
    }

    #[test]
    fn decode_tolerates_malformed() {
        assert_eq!(decode("%"), "%");
        assert_eq!(decode("%z9"), "%z9");
        assert_eq!(decode("%4"), "%4");
        assert_eq!(decode("abc%"), "abc%");
    }

    #[test]
    fn decode_invalid_utf8_replaced() {
        assert_eq!(decode("%FF"), "\u{FFFD}");
    }

    props! {
        fn round_trip(s in printable(0..=24)) {
            prop_assert_eq!(decode(&encode(&s)), s);
        }

        fn decode_never_panics(s in ascii(0..=40)) {
            let _ = decode(&s);
        }
    }
}
