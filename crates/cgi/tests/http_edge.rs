//! End-to-end tests for the evented HTTP/1.1 edge: keep-alive reuse,
//! pipelining, slowloris defense, idle expiry, chunked streaming, and
//! mid-stream disconnect cancellation.
//!
//! The process-wide metrics registry is shared across tests, so every
//! assertion on counters is a before/after delta with `>=`, never equality.

use dbgw_cgi::client::{decode_chunked, encode_chunked, ChunkStatus};
use dbgw_cgi::{
    FnSource, Gateway, HttpClient, HttpConnection, HttpServer, ServerConfig, TraceOptions,
};
use dbgw_core::db::{Database, DbRows, FnDatabase};
use dbgw_testkit::gen::{bytes, vec_of};
use dbgw_testkit::{prop_assert, prop_assert_eq, props};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn minisql_gateway() -> Gateway {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
         INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM'),
                                  ('http://www.eso.org', 'ESO');",
    )
    .unwrap();
    let gw = Gateway::new(db).with_trace(TraceOptions::disabled());
    gw.add_macro(
        "q.d2w",
        "%SQL{ SELECT url, title FROM urldb ORDER BY title %}\n\
         %HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    gw
}

/// A gateway whose database returns `rows` copies of a padded row, for
/// reports far larger than the streaming watermark.
fn big_report_gateway(rows: usize) -> Gateway {
    let gw = Gateway::new(FnSource(move || {
        Box::new(FnDatabase(move |_sql: &str| {
            Ok(DbRows {
                columns: vec!["line".into()],
                rows: (0..rows)
                    .map(|i| vec![format!("row {i} {}", "x".repeat(40))])
                    .collect(),
                affected: 0,
            })
        })) as Box<dyn Database + Send>
    }))
    .with_trace(TraceOptions::disabled())
    .with_http_cache(true);
    gw.add_macro(
        "big.d2w",
        "%SQL{ SELECT line FROM big %}\n%HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    gw
}

#[test]
fn keepalive_connection_reuses_and_pipelines() {
    let server =
        HttpServer::start_with_config(minisql_gateway(), 0, ServerConfig::default()).unwrap();
    server.add_static_page("/p1", "<HTML><BODY>page one</BODY></HTML>");
    server.add_static_page("/p2", "<HTML><BODY>the second page</BODY></HTML>");
    server.add_static_page("/p3", "<HTML><BODY>a third, longer page body</BODY></HTML>");
    let m = dbgw_obs::metrics();
    let reuses_before = m.keepalive_reuses.get();
    let pipelined_before = m.pipelined_requests.get();

    let mut conn = HttpConnection::open(server.addr()).unwrap();
    // Sequential reuse: several requests on the one connection.
    for _ in 0..3 {
        let resp = conn.get("/cgi-bin/db2www/q.d2w/report").unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("IBM"));
    }
    assert!(m.keepalive_reuses.get() >= reuses_before + 2);

    // Pipelined burst: three requests written back-to-back in one segment
    // before any response is read; the responses must come back complete
    // and in order.
    conn.send_get_burst(&["/p1", "/p2", "/p3"]).unwrap();
    let bodies: Vec<String> = (0..3).map(|_| conn.read_response().unwrap().body).collect();
    assert!(bodies[0].contains("page one"), "{bodies:?}");
    assert!(bodies[1].contains("the second page"), "{bodies:?}");
    assert!(
        bodies[2].contains("a third, longer page body"),
        "{bodies:?}"
    );
    assert!(m.pipelined_requests.get() > pipelined_before);
    server.shutdown();
}

#[test]
fn slowloris_partial_request_gets_408_and_frees_the_connection_slot() {
    let config = ServerConfig {
        io_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = HttpServer::start_with_config(minisql_gateway(), 0, config).unwrap();

    // Drip half a request line and stall, like a slowloris client.
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(b"GET /cgi-bin/db2www/q.d2w/rep").unwrap();
    sock.flush().unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut raw = String::new();
    sock.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 408"), "{raw}");
    assert!(raw.contains("Connection: close"), "{raw}");

    // The stalled connection tied up no worker: a real request still works.
    let resp = HttpClient::new(server.addr())
        .get("/cgi-bin/db2www/q.d2w/report")
        .unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn idle_keepalive_connection_expires_silently() {
    let config = ServerConfig {
        keepalive: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let server = HttpServer::start_with_config(minisql_gateway(), 0, config).unwrap();
    let mut conn = HttpConnection::open(server.addr()).unwrap();
    assert_eq!(
        conn.get("/cgi-bin/db2www/q.d2w/report").unwrap().status,
        200
    );

    // Past the keep-alive budget the server just closes the parked socket.
    std::thread::sleep(Duration::from_millis(700));
    conn.send_get("/cgi-bin/db2www/q.d2w/report").ok();
    assert!(
        conn.read_response().is_err(),
        "an expired keep-alive connection must be closed"
    );
    server.shutdown();
}

#[test]
fn large_report_streams_chunked_and_small_pages_keep_etags() {
    let server =
        HttpServer::start_with_config(big_report_gateway(2_000), 0, ServerConfig::default())
            .unwrap();
    let m = dbgw_obs::metrics();
    let streamed_before = m.responses_streamed.get();

    // Far over the 16 KB watermark: the response must arrive chunked.
    let mut conn = HttpConnection::open(server.addr()).unwrap();
    conn.send_get("/cgi-bin/db2www/big.d2w/report").unwrap();
    let resp = conn.read_response().unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.header("Transfer-Encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked")),
        "large report should stream: {:?}",
        resp.headers
    );
    assert!(
        resp.header("ETag").is_none(),
        "streamed pages carry no ETag"
    );
    assert!(resp.body.contains("row 0 "), "first row present");
    assert!(resp.body.contains("row 1999 "), "last row present");
    assert!(m.responses_streamed.get() > streamed_before);

    // The connection survives a streamed response: reuse it.
    let again = conn.get("/cgi-bin/db2www/big.d2w/report").unwrap();
    assert_eq!(again.status, 200);

    // A conditional GET forces the buffered path so ETag/304 semantics hold
    // even on a page that would otherwise stream.
    let raw = HttpClient::new(server.addr())
        .raw(
            "GET /cgi-bin/db2www/big.d2w/report HTTP/1.1\r\nHost: localhost\r\n\
             Connection: close\r\nIf-None-Match: \"no-such-etag\"\r\n\r\n",
        )
        .unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 200"),
        "{}",
        &raw[..60.min(raw.len())]
    );
    assert!(
        raw.contains("Content-Length:"),
        "conditional GET is buffered"
    );
    assert!(raw.contains("ETag:"), "buffered CGI pages carry an ETag");
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_cancels_the_request() {
    // ~12 MB of report: far beyond what the socket buffers can absorb, so
    // the server is still streaming when the client hangs up.
    let server =
        HttpServer::start_with_config(big_report_gateway(250_000), 0, ServerConfig::default())
            .unwrap();
    let m = dbgw_obs::metrics();
    let disconnects_before = m.client_disconnects.get();

    {
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        sock.write_all(b"GET /cgi-bin/db2www/big.d2w/report HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap();
        let mut first = [0u8; 4096];
        let n = sock.read(&mut first).unwrap();
        assert!(n > 0, "stream should have started");
        // Drop mid-body: the kernel RSTs the server's subsequent writes.
    }

    // The failed write must cancel the request context and be counted.
    let mut waited = 0;
    while m.client_disconnects.get() <= disconnects_before && waited < 10_000 {
        std::thread::sleep(Duration::from_millis(50));
        waited += 50;
    }
    assert!(
        m.client_disconnects.get() > disconnects_before,
        "a mid-stream disconnect must be detected and cancel the request"
    );

    // The pool is healthy afterwards.
    let resp = HttpClient::new(server.addr()).get("/stats").unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

props! {
    config(cases = 64);

    /// Chunked transfer coding round-trips: any piece sequence encodes to a
    /// stream that decodes back to the concatenation, consuming every byte.
    fn chunked_encode_decode_round_trip(
        pieces in vec_of(bytes(0..=50), 0..=8),
    ) {
        let refs: Vec<&[u8]> = pieces.iter().map(|p| p.as_slice()).collect();
        let encoded = encode_chunked(&refs);
        let expected: Vec<u8> = pieces.concat();
        match decode_chunked(&encoded) {
            ChunkStatus::Complete(body, used) => {
                prop_assert_eq!(&body, &expected);
                prop_assert_eq!(used, encoded.len());
            }
            other => prop_assert!(false, "decode failed: {:?}", other),
        }
        // Every strict prefix is incomplete, never complete or invalid.
        for cut in 0..encoded.len() {
            prop_assert!(
                matches!(decode_chunked(&encoded[..cut]), ChunkStatus::Incomplete),
                "prefix of {} bytes must be incomplete", cut
            );
        }
    }
}
