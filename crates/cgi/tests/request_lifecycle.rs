//! End-to-end tests for the request lifecycle: worker pool, bounded queue
//! with 503 shedding, drain-on-shutdown, and deterministic deadline expiry.
//!
//! The process-wide metrics registry is shared across tests, so every
//! assertion on counters is a before/after delta with `>=`, never equality.

use dbgw_cgi::{FnSource, Gateway, HttpClient, HttpServer, ServerConfig, TraceOptions};
use dbgw_core::db::{Database, DbRows, FnDatabase};
use dbgw_obs::TestClock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

fn minisql_gateway() -> Gateway {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
         INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM'),
                                  ('http://www.eso.org', 'ESO');",
    )
    .unwrap();
    let gw = Gateway::new(db).with_trace(TraceOptions::disabled());
    gw.add_macro(
        "q.d2w",
        "%SQL{ SELECT url, title FROM urldb ORDER BY title %}\n\
         %HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    gw
}

/// A connection source whose `execute` blocks until released, so tests can
/// hold a worker in-flight deterministically.
struct Blocker {
    entered: AtomicUsize,
    released: Mutex<bool>,
    release: Condvar,
}

impl Blocker {
    fn new() -> Arc<Blocker> {
        Arc::new(Blocker {
            entered: AtomicUsize::new(0),
            released: Mutex::new(false),
            release: Condvar::new(),
        })
    }

    fn wait_entered(&self, n: usize) {
        for _ in 0..400 {
            if self.entered.load(Ordering::SeqCst) >= n {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("no request reached the database in time");
    }

    fn release_all(&self) {
        *self.released.lock().unwrap() = true;
        self.release.notify_all();
    }

    fn block(&self) {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut released = self.released.lock().unwrap();
        while !*released {
            released = self.release.wait(released).unwrap();
        }
    }
}

fn blocking_gateway(blocker: Arc<Blocker>) -> Gateway {
    let gw = Gateway::new(FnSource(move || {
        let b = blocker.clone();
        Box::new(FnDatabase(move |_sql: &str| {
            b.block();
            Ok(DbRows {
                columns: vec!["n".into()],
                rows: vec![vec!["1".into()]],
                affected: 0,
            })
        })) as Box<dyn Database + Send>
    }))
    .with_trace(TraceOptions::disabled());
    gw.add_macro("slow.d2w", "%SQL{ SLOW %}\n%HTML_REPORT{ok %EXEC_SQL%}")
        .unwrap();
    gw
}

/// Pull one counter value out of the Prometheus-format /stats text.
fn stat(body: &str, name: &str) -> u64 {
    body.lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{body}"))
}

#[test]
fn hammer_pool_from_many_threads() {
    let server =
        HttpServer::start_with_config(minisql_gateway(), 0, ServerConfig::default()).unwrap();
    let addr = server.addr();
    let client = HttpClient::new(addr);
    let before = client.get("/stats?format=prometheus").unwrap();
    let requests_before = stat(&before.body, "dbgw_requests_total");

    const THREADS: usize = 8;
    const PER_THREAD: usize = 6;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        handles.push(std::thread::spawn(move || {
            let client = HttpClient::new(addr);
            for _ in 0..PER_THREAD {
                let resp = client.get("/cgi-bin/db2www/q.d2w/report").unwrap();
                assert_eq!(resp.status, 200);
                assert!(resp.body.contains("IBM"));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let after = client.get("/stats?format=prometheus").unwrap();
    let requests_after = stat(&after.body, "dbgw_requests_total");
    assert!(
        requests_after >= requests_before + (THREADS * PER_THREAD) as u64,
        "requests counter must grow monotonically: {requests_before} -> {requests_after}"
    );
    // The pool gauges are exported and live: the /stats request observes at
    // least itself in flight (other tests in this binary may add more).
    assert!(stat(&after.body, "dbgw_requests_in_flight") >= 1);
    let _ = stat(&after.body, "dbgw_queue_depth");
    server.shutdown();
}

#[test]
fn saturated_queue_sheds_with_503_retry_after() {
    let blocker = Blocker::new();
    let config = ServerConfig {
        workers: 1,
        queue: 1,
        ..ServerConfig::default()
    };
    let server =
        HttpServer::start_with_config(blocking_gateway(blocker.clone()), 0, config).unwrap();
    let addr = server.addr();
    let shed_before = dbgw_obs::metrics().requests_shed.get();

    let get = move || {
        HttpClient::new(addr)
            .raw("GET /cgi-bin/db2www/slow.d2w/report HTTP/1.0\r\n\r\n")
            .unwrap()
    };
    // Stage the saturation deterministically: one request in flight (blocked
    // in the DB), one sitting in the single queue slot...
    let first = std::thread::spawn(get);
    blocker.wait_entered(1);
    let second = std::thread::spawn(get);
    std::thread::sleep(Duration::from_millis(150));

    // ...then a burst that must be shed in full while they hold the pool.
    const BURST: usize = 4;
    let mut burst = Vec::new();
    for _ in 0..BURST {
        burst.push(std::thread::spawn(get));
    }
    let shed: Vec<String> = burst.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &shed {
        assert!(r.starts_with("HTTP/1.1 503"), "{r}");
        assert!(r.contains("Retry-After:"), "{r}");
    }
    assert!(dbgw_obs::metrics().requests_shed.get() >= shed_before + BURST as u64);

    // Releasing the database lets the held requests complete normally.
    blocker.release_all();
    for handle in [first, second] {
        let r = handle.join().unwrap();
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_and_queued_requests() {
    let blocker = Blocker::new();
    let config = ServerConfig {
        workers: 1,
        queue: 4,
        ..ServerConfig::default()
    };
    let server =
        HttpServer::start_with_config(blocking_gateway(blocker.clone()), 0, config).unwrap();
    let addr = server.addr();

    let first = std::thread::spawn(move || {
        HttpClient::new(addr)
            .get("/cgi-bin/db2www/slow.d2w/report")
            .unwrap()
    });
    blocker.wait_entered(1);
    // A second request sits in the queue behind the blocked one.
    let second = std::thread::spawn(move || {
        HttpClient::new(addr)
            .get("/cgi-bin/db2www/slow.d2w/report")
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    // Release while shutdown is draining; both requests must complete fully.
    let releaser = {
        let blocker = blocker.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            blocker.release_all();
        })
    };
    server.shutdown();
    releaser.join().unwrap();
    let first = first.join().unwrap();
    let second = second.join().unwrap();
    assert_eq!(first.status, 200);
    assert!(first.body.contains("ok"), "{}", first.body);
    assert_eq!(second.status, 200);
    assert!(second.body.contains("ok"), "{}", second.body);
}

#[test]
fn deadline_expiry_returns_timeout_page_deterministically() {
    // The injectable clock makes the deadline test exact: the DB call
    // "takes" 100 ms against a 20 ms deadline by advancing the TestClock,
    // and the request must come back as the 504 timeout page.
    let clock = Arc::new(TestClock::new());
    let db_clock = clock.clone();
    let gw = Gateway::new(FnSource(move || {
        let c = db_clock.clone();
        Box::new(FnDatabase(move |_sql: &str| {
            c.advance_millis(100);
            Ok(DbRows {
                columns: vec!["n".into()],
                rows: vec![vec!["1".into()]],
                affected: 0,
            })
        })) as Box<dyn Database + Send>
    }))
    .with_trace(TraceOptions::disabled())
    .with_clock(clock)
    .with_deadline_ms(Some(20));
    gw.add_macro("slow.d2w", "%SQL{ SLOW %}\n%HTML_REPORT{%EXEC_SQL%}")
        .unwrap();
    let timeouts_before = dbgw_obs::metrics().request_timeouts.get();
    let server = HttpServer::start_with_config(gw, 0, ServerConfig::default()).unwrap();
    let client = HttpClient::new(server.addr());

    let resp = client.get("/cgi-bin/db2www/slow.d2w/report").unwrap();
    assert_eq!(resp.status, 504);
    assert!(resp.body.contains("SQL error -952"), "{}", resp.body);
    assert!(resp.body.contains("deadline of 20 ms"), "{}", resp.body);
    assert!(resp.body.contains("request "), "{}", resp.body);
    assert!(dbgw_obs::metrics().request_timeouts.get() > timeouts_before);

    // The pool keeps serving after a timeout.
    let again = client.get("/cgi-bin/db2www/slow.d2w/report").unwrap();
    assert_eq!(again.status, 504);
    server.shutdown();
}

#[test]
fn oversized_content_length_rejected_with_413() {
    let config = ServerConfig {
        max_body: 1024,
        ..ServerConfig::default()
    };
    let server = HttpServer::start_with_config(minisql_gateway(), 0, config).unwrap();
    let client = HttpClient::new(server.addr());
    let raw = client
        .raw("POST /cgi-bin/db2www/q.d2w/report HTTP/1.0\r\nContent-Length: 4096\r\n\r\n")
        .unwrap();
    assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");
    // A request inside the limit still works.
    let ok = client
        .post("/cgi-bin/db2www/q.d2w/report", "SEARCH=x")
        .unwrap();
    assert_eq!(ok.status, 200);
    server.shutdown();
}
