//! Abstract syntax of a macro file.
//!
//! A macro is a sequence of sections (§3 of the paper): variable definition
//! sections, SQL command sections, an HTML input section, and an HTML report
//! section. Order matters — the processors walk sections top to bottom and a
//! variable is only visible to text *after* its definition.

/// A parsed macro file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MacroFile {
    /// Sections in source order.
    pub sections: Vec<Section>,
}

impl MacroFile {
    /// All SQL sections in source order.
    pub fn sql_sections(&self) -> impl Iterator<Item = &SqlSection> {
        self.sections.iter().filter_map(|s| match s {
            Section::Sql(sql) => Some(sql),
            _ => None,
        })
    }

    /// The SQL section with the given name (case-sensitive, per the paper's
    /// "variable names are case sensitive" rule which section names follow).
    pub fn named_sql(&self, name: &str) -> Option<&SqlSection> {
        self.sql_sections()
            .find(|s| s.name.as_deref() == Some(name))
    }

    /// Does the macro have a section of this kind?
    pub fn has_html_input(&self) -> bool {
        self.sections
            .iter()
            .any(|s| matches!(s, Section::HtmlInput(_)))
    }

    /// Does the macro have an HTML report section?
    pub fn has_html_report(&self) -> bool {
        self.sections
            .iter()
            .any(|s| matches!(s, Section::HtmlReport(_)))
    }
}

/// One top-level section.
#[derive(Debug, Clone, PartialEq)]
pub enum Section {
    /// `%DEFINE` (line or block form): a list of define statements.
    Define(Vec<DefineStatement>),
    /// `%SQL[(name)]{ ... }`.
    Sql(SqlSection),
    /// `%HTML_INPUT{ ... }` — rendered in input mode.
    HtmlInput(String),
    /// `%HTML_REPORT{ ... }` — rendered in report mode.
    HtmlReport(Vec<ReportPart>),
    /// `%{ ... %}` comment — kept for fidelity, never rendered.
    Comment(String),
}

/// One statement inside a `%DEFINE` section.
#[derive(Debug, Clone, PartialEq)]
pub enum DefineStatement {
    /// `var = "value"` — §3.1.1 simple assignment.
    Simple {
        /// Variable name.
        name: String,
        /// Raw value string (substitution happens lazily at reference time).
        value: String,
    },
    /// `var = testvar ? "v1" : "v2"` — §3.1.2 two-armed conditional.
    CondBinary {
        /// Variable name.
        name: String,
        /// The tested variable.
        test: String,
        /// Value when `test` is defined and non-null.
        then_value: String,
        /// Value otherwise.
        else_value: String,
    },
    /// `var = ? "v"` — §3.1.2 one-armed conditional: null if the value string
    /// references any undefined/null variable.
    CondUnary {
        /// Variable name.
        name: String,
        /// Raw value string.
        value: String,
    },
    /// `%LIST "sep" var` — §3.1.3 list declaration.
    ListDecl {
        /// Variable name.
        name: String,
        /// Raw separator (may itself contain variable references).
        separator: String,
    },
    /// `var = %EXEC "command"` — §3.1.4 executable variable.
    Exec {
        /// Variable name.
        name: String,
        /// Raw command string (substituted at each reference).
        command: String,
    },
}

impl DefineStatement {
    /// The variable this statement defines or declares.
    pub fn name(&self) -> &str {
        match self {
            DefineStatement::Simple { name, .. }
            | DefineStatement::CondBinary { name, .. }
            | DefineStatement::CondUnary { name, .. }
            | DefineStatement::ListDecl { name, .. }
            | DefineStatement::Exec { name, .. } => name,
        }
    }
}

/// A `%SQL` section: exactly one SQL command plus optional report/message
/// blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlSection {
    /// Optional section name from `%SQL(name)`.
    pub name: Option<String>,
    /// The raw SQL command text (variables unresolved).
    pub command: String,
    /// Optional `%SQL_REPORT` block.
    pub report: Option<SqlReport>,
    /// Optional `%SQL_MESSAGE` block.
    pub messages: Vec<SqlMessage>,
}

/// A `%SQL_REPORT` block: header, per-row template, footer (§3.2.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SqlReport {
    /// HTML text before the `%ROW` block; printed once, may reference the
    /// column-name variables `Ni` / `N_<col>` / `NLIST`.
    pub header: String,
    /// The `%ROW{...}` template, printed once per fetched row with `Vi` /
    /// `V_<col>` / `VLIST` / `ROW_NUM` instantiated. `None` when the report
    /// has no row block (header/footer only).
    pub row: Option<String>,
    /// HTML text after the `%ROW` block; printed once after all rows.
    pub footer: String,
}

/// What a `%SQL_MESSAGE` entry does after printing its text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MessageAction {
    /// Stop processing the macro (the default, matching the product's
    /// behaviour of abandoning the report on error).
    #[default]
    Exit,
    /// Print the message but keep processing.
    Continue,
}

/// One handler in a `%SQL_MESSAGE` block.
///
/// The paper defers the exact syntax to the product's Application Developer's
/// Guide; we reconstruct the documented form `code : "text" : action`, plus a
/// `default` entry matching any code not otherwise handled.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlMessage {
    /// SQLCODE this entry matches; `None` is the `default` entry.
    pub code: Option<i32>,
    /// Message template (variables substituted when printed).
    pub text: String,
    /// Continue or exit.
    pub action: MessageAction,
}

/// A fragment of an `%HTML_REPORT` section.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportPart {
    /// Literal HTML (with variable references, substituted when printed).
    Html(String),
    /// `%EXEC_SQL` — execute all *unnamed* SQL sections in macro order.
    ExecSqlAll,
    /// `%EXEC_SQL(name-or-$(var))` — execute one named section; the operand
    /// is itself substituted at run time, so `%EXEC_SQL($(cmd))` lets the end
    /// user pick the statement (§3.4).
    ExecSqlNamed(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_lookup_is_case_sensitive() {
        let mut m = MacroFile::default();
        m.sections.push(Section::Sql(SqlSection {
            name: Some("Fetch".into()),
            command: "SELECT 1".into(),
            report: None,
            messages: vec![],
        }));
        assert!(m.named_sql("Fetch").is_some());
        assert!(m.named_sql("fetch").is_none());
    }

    #[test]
    fn define_statement_names() {
        let s = DefineStatement::ListDecl {
            name: "L".into(),
            separator: " OR ".into(),
        };
        assert_eq!(s.name(), "L");
    }
}
