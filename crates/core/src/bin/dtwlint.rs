//! `dtwlint` — static checks for macro files.
//!
//! ```sh
//! dtwlint macros/*.d2w       # lint files; exit 1 if any finding
//! echo '%HTML_INPUT{$(x)%}' | dtwlint -   # lint stdin
//! ```
//!
//! See [`mod@dbgw_core::lint`] for the checks (W001–W006).

use dbgw_core::{lint, parse_macro};
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: dtwlint <macro-file>... | dtwlint -");
        std::process::exit(2);
    }
    let mut total_findings = 0usize;
    let mut failed_parses = 0usize;
    for arg in &args {
        let (name, source) = if arg == "-" {
            let mut text = String::new();
            if std::io::stdin().read_to_string(&mut text).is_err() {
                eprintln!("dtwlint: cannot read stdin");
                std::process::exit(2);
            }
            ("<stdin>".to_owned(), text)
        } else {
            match std::fs::read_to_string(arg) {
                Ok(text) => (arg.clone(), text),
                Err(e) => {
                    eprintln!("dtwlint: {arg}: {e}");
                    failed_parses += 1;
                    continue;
                }
            }
        };
        match parse_macro(&source) {
            Ok(mac) => {
                let findings = lint(&mac);
                for finding in &findings {
                    println!("{name}: {finding}");
                }
                if findings.is_empty() {
                    println!("{name}: clean");
                }
                total_findings += findings.len();
            }
            Err(e) => {
                println!("{name}: PARSE ERROR: {e}");
                failed_parses += 1;
            }
        }
    }
    if total_findings > 0 || failed_parses > 0 {
        std::process::exit(1);
    }
}
