//! The DBMS abstraction the engine drives.
//!
//! The paper stresses that the gateway "can be used to access IBM DB2
//! databases on a wide variety of IBM and non-IBM platforms as well as other
//! non-IBM DBMS" (§4): the engine only needs dynamic SQL over strings. This
//! trait is that seam. Values cross it as *display strings* — the report
//! substitution mechanism is purely textual, like the original.

/// A result from the DBMS.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DbRows {
    /// Column names, empty for DML.
    pub columns: Vec<String>,
    /// Rows of display-formatted values (NULL renders as the empty string,
    /// which the variable model equates with undefined).
    pub rows: Vec<Vec<String>>,
    /// Rows affected, for DML.
    pub affected: usize,
}

impl DbRows {
    /// The SQLCODE this result reports: `+100` when a query returned no rows
    /// or DML touched none, else `0`.
    pub fn sqlcode(&self) -> i32 {
        if self.columns.is_empty() {
            if self.affected == 0 {
                100
            } else {
                0
            }
        } else if self.rows.is_empty() {
            100
        } else {
            0
        }
    }
}

/// A DBMS error, in DB2 SQLCODE convention (negative codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbError {
    /// The SQLCODE.
    pub code: i32,
    /// The DBMS message text.
    pub message: String,
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQLCODE {}: {}", self.code, self.message)
    }
}

impl std::error::Error for DbError {}

/// A dynamic-SQL connection.
pub trait Database {
    /// Prepare and execute one SQL statement.
    fn execute(&mut self, sql: &str) -> Result<DbRows, DbError>;

    /// Start an explicit transaction (single-transaction macro mode, §5).
    fn begin(&mut self) -> Result<(), DbError>;

    /// Commit the open transaction.
    fn commit(&mut self) -> Result<(), DbError>;

    /// Roll back the open transaction.
    fn rollback(&mut self) -> Result<(), DbError>;

    /// End-of-life hook: flush any durable state and release resources.
    /// In-memory engines have nothing to do, so the default is a no-op;
    /// engines with a write-ahead log drain and close it here.
    fn close(&mut self) {}
}

/// Adapter turning any `FnMut(&str) -> Result<DbRows, DbError>` into a
/// [`Database`], for tests and for baselines that fake transaction support.
/// `begin`/`commit`/`rollback` are forwarded as the statements `BEGIN` /
/// `COMMIT` / `ROLLBACK`.
pub struct FnDatabase<F>(pub F);

impl<F> Database for FnDatabase<F>
where
    F: FnMut(&str) -> Result<DbRows, DbError>,
{
    fn execute(&mut self, sql: &str) -> Result<DbRows, DbError> {
        (self.0)(sql)
    }

    fn begin(&mut self) -> Result<(), DbError> {
        (self.0)("BEGIN").map(|_| ())
    }

    fn commit(&mut self) -> Result<(), DbError> {
        (self.0)("COMMIT").map(|_| ())
    }

    fn rollback(&mut self) -> Result<(), DbError> {
        (self.0)("ROLLBACK").map(|_| ())
    }
}

/// A [`Database`] that rejects every statement — for input-mode processing
/// where the paper guarantees no SQL runs at all.
pub struct NoDatabase;

impl Database for NoDatabase {
    fn execute(&mut self, sql: &str) -> Result<DbRows, DbError> {
        Err(DbError {
            code: -99999,
            message: format!("no database attached (statement was {sql:?})"),
        })
    }

    fn begin(&mut self) -> Result<(), DbError> {
        Ok(())
    }

    fn commit(&mut self) -> Result<(), DbError> {
        Ok(())
    }

    fn rollback(&mut self) -> Result<(), DbError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqlcode_rules() {
        let q = DbRows {
            columns: vec!["a".into()],
            rows: vec![],
            affected: 0,
        };
        assert_eq!(q.sqlcode(), 100);
        let q2 = DbRows {
            columns: vec!["a".into()],
            rows: vec![vec!["1".into()]],
            affected: 0,
        };
        assert_eq!(q2.sqlcode(), 0);
        let dml0 = DbRows::default();
        assert_eq!(dml0.sqlcode(), 100);
        let dml = DbRows {
            affected: 3,
            ..DbRows::default()
        };
        assert_eq!(dml.sqlcode(), 0);
    }

    #[test]
    fn fn_database_adapts() {
        let mut db = FnDatabase(|sql: &str| {
            Ok(DbRows {
                columns: vec!["echo".into()],
                rows: vec![vec![sql.to_owned()]],
                affected: 0,
            })
        });
        let r = db.execute("SELECT 1").unwrap();
        assert_eq!(r.rows[0][0], "SELECT 1");
        db.begin().unwrap();
        db.commit().unwrap();
    }
}
