//! The macro run-time engine: input-mode and report-mode processing (§4).
//!
//! * **Input mode** processes DEFINE sections and the `%HTML_INPUT` section;
//!   SQL sections and the report section are skipped entirely (§4.1).
//! * **Report mode** processes DEFINE sections and the `%HTML_REPORT`
//!   section, executing SQL sections when `%EXEC_SQL` directives are reached
//!   and splicing their (custom or default) report output at the directive's
//!   position (§4.2).
//!
//! Macros are processed top to bottom; a `%DEFINE` after the section being
//! rendered is invisible to it (the paper's lazy-evaluation example, §4.3.1).

use crate::ast::{MacroFile, MessageAction, ReportPart, Section, SqlSection};
use crate::db::{Database, DbRows, NoDatabase};
use crate::env::Env;
use crate::error::{MacroError, MacroResult};
use crate::exec::{CommandRunner, DenyRunner};
use crate::nls::{message, Language, Message};
use crate::sink::PageSink;
use crate::subst::Evaluator;
use dbgw_html::{escape_text, TableBuilder};
use dbgw_obs::{CancelReason, RequestCtx};
use std::collections::HashMap;
use std::sync::Arc;

/// Which half of the macro to process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Render the `%HTML_INPUT` form.
    Input,
    /// Render the `%HTML_REPORT`, executing SQL.
    Report,
}

impl Mode {
    /// Parse the `{cmd}` path component of a gateway URL (§4).
    pub fn from_command(cmd: &str) -> Option<Mode> {
        if cmd.eq_ignore_ascii_case("input") {
            Some(Mode::Input)
        } else if cmd.eq_ignore_ascii_case("report") {
            Some(Mode::Report)
        } else {
            None
        }
    }
}

/// Transaction handling across the SQL statements of one macro run (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxnMode {
    /// Every SQL statement is its own transaction.
    #[default]
    AutoCommit,
    /// All SQL statements form one transaction; any failure rolls back all of
    /// them.
    SingleTransaction,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Transaction mode.
    pub txn_mode: TxnMode,
    /// HTML-escape the values of system report variables (`Vi`, `VLIST`, …)
    /// before substitution. The 1996 product spliced raw database text into
    /// pages; escaping is the modern default, switchable off for fidelity.
    pub escape_values: bool,
    /// Honor the product's built-in `SHOWSQL` input variable: when it is
    /// non-null, each executed statement is echoed into the report.
    pub honor_showsql: bool,
    /// Hard cap on rows printed per SQL report even without `RPT_MAX_ROWS`.
    pub max_rows_hard_limit: usize,
    /// Language for the engine's own user-visible strings (§5 NLS).
    pub language: Language,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            txn_mode: TxnMode::AutoCommit,
            escape_values: true,
            honor_showsql: true,
            max_rows_hard_limit: 100_000,
            language: Language::English,
        }
    }
}

/// The macro processor.
pub struct Engine<'r> {
    config: EngineConfig,
    runner: &'r dyn CommandRunner,
    /// The owning request's execution context; defaults to the unbounded
    /// context so direct library use runs without deadlines or budgets.
    ctx: Arc<RequestCtx>,
}

impl Default for Engine<'static> {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine<'static> {
    /// Engine with default config and executable variables disabled.
    pub fn new() -> Engine<'static> {
        static DENY: DenyRunner = DenyRunner;
        Engine {
            config: EngineConfig::default(),
            runner: &DENY,
            ctx: RequestCtx::unbounded(),
        }
    }

    /// Engine with a custom config, executable variables disabled.
    pub fn with_config(config: EngineConfig) -> Engine<'static> {
        static DENY: DenyRunner = DenyRunner;
        Engine {
            config,
            runner: &DENY,
            ctx: RequestCtx::unbounded(),
        }
    }
}

impl<'r> Engine<'r> {
    /// Engine with a custom command runner for `%EXEC` variables.
    pub fn with_runner(config: EngineConfig, runner: &'r dyn CommandRunner) -> Engine<'r> {
        Engine {
            config,
            runner,
            ctx: RequestCtx::unbounded(),
        }
    }

    /// Bind this engine to a request context. Section processing, SQL
    /// execution, substitution, and report rendering all become cancellation
    /// points; report rows are charged against the context's row/byte
    /// budgets.
    pub fn with_request_ctx(mut self, ctx: Arc<RequestCtx>) -> Engine<'r> {
        self.ctx = ctx;
        self
    }

    /// One cancellation point.
    fn check_ctx(&self) -> MacroResult<()> {
        self.ctx
            .check()
            .map_err(|reason| MacroError::Cancelled { reason })
    }

    /// An evaluator sharing this engine's runner and request context.
    fn evaluator<'e>(&'e self, env: &'e Env) -> Evaluator<'e> {
        Evaluator::with_ctx(env, self.runner, self.ctx.clone())
    }

    /// Process `mac` in `mode` with the given HTML input variables, against
    /// `db`. Returns the generated page body.
    pub fn process(
        &self,
        mac: &MacroFile,
        mode: Mode,
        inputs: &[(String, String)],
        db: &mut dyn Database,
    ) -> MacroResult<String> {
        let mut out = String::new();
        self.process_into(mac, mode, inputs, db, &mut out)?;
        Ok(out)
    }

    /// Like [`process`](Engine::process), but pushes the page into `out` as
    /// it is rendered instead of returning it whole. With a streaming sink
    /// (the HTTP server's chunked writer), report rows leave the process as
    /// the executor yields them; a sink push failure (client disconnected)
    /// cancels processing through the same SQLCODE −952 path deadlines use.
    pub fn process_into(
        &self,
        mac: &MacroFile,
        mode: Mode,
        inputs: &[(String, String)],
        db: &mut dyn Database,
        out: &mut dyn PageSink,
    ) -> MacroResult<()> {
        let mut env = Env::new();
        for (name, value) in inputs {
            env.push_input(name, value);
        }
        let mut rendered_target = false;
        let mut failed = false;

        let single_txn = mode == Mode::Report && self.config.txn_mode == TxnMode::SingleTransaction;
        if single_txn {
            db.begin().map_err(|e| MacroError::Sql {
                code: e.code,
                message: e.message,
                statement: "BEGIN".into(),
            })?;
        }

        'sections: for section in &mac.sections {
            self.check_ctx()?;
            match section {
                Section::Define(stmts) => {
                    for s in stmts {
                        env.apply(s);
                    }
                }
                Section::Comment(_) => {}
                Section::HtmlInput(body) => {
                    if mode == Mode::Input {
                        let text = {
                            let mut ev = self.evaluator(&env);
                            ev.substitute(body)?
                        };
                        self.emit(out, &text)?;
                        rendered_target = true;
                    }
                }
                Section::HtmlReport(parts) => {
                    if mode != Mode::Report {
                        continue;
                    }
                    rendered_target = true;
                    for part in parts {
                        match part {
                            ReportPart::Html(text) => {
                                let text = {
                                    let mut ev = self.evaluator(&env);
                                    ev.substitute(text)?
                                };
                                self.emit(out, &text)?;
                            }
                            ReportPart::ExecSqlAll => {
                                let unnamed: Vec<&SqlSection> =
                                    mac.sql_sections().filter(|s| s.name.is_none()).collect();
                                if unnamed.is_empty() {
                                    return Err(MacroError::NoSqlSections);
                                }
                                for section in unnamed {
                                    match self.exec_sql(section, &mut env, db, out)? {
                                        Flow::Continue => {}
                                        Flow::Stop { error } => {
                                            failed = error;
                                            break 'sections;
                                        }
                                    }
                                }
                            }
                            ReportPart::ExecSqlNamed(operand) => {
                                let name = {
                                    let mut ev = self.evaluator(&env);
                                    ev.substitute(operand)?
                                };
                                let name = name.trim();
                                let section = mac.named_sql(name).ok_or_else(|| {
                                    MacroError::UnknownSqlSection {
                                        name: name.to_owned(),
                                    }
                                })?;
                                match self.exec_sql(section, &mut env, db, out)? {
                                    Flow::Continue => {}
                                    Flow::Stop { error } => {
                                        failed = error;
                                        break 'sections;
                                    }
                                }
                            }
                        }
                    }
                }
                Section::Sql(_) => {} // executed only via %EXEC_SQL
            }
        }

        if single_txn {
            let end = if failed { db.rollback() } else { db.commit() };
            end.map_err(|e| MacroError::Sql {
                code: e.code,
                message: e.message,
                statement: if failed { "ROLLBACK" } else { "COMMIT" }.into(),
            })?;
        }

        if !rendered_target {
            return Err(MacroError::MissingSection {
                section: match mode {
                    Mode::Input => "%HTML_INPUT",
                    Mode::Report => "%HTML_REPORT",
                },
            });
        }
        Ok(())
    }

    /// Convenience: input mode needs no database (the paper guarantees no SQL
    /// executes in input mode).
    pub fn process_input(
        &self,
        mac: &MacroFile,
        inputs: &[(String, String)],
    ) -> MacroResult<String> {
        self.process(mac, Mode::Input, inputs, &mut NoDatabase)
    }

    /// Push rendered text into the sink, surfacing a dead sink (client gone)
    /// as request cancellation.
    fn emit(&self, out: &mut dyn PageSink, text: &str) -> MacroResult<()> {
        out.push(text)
            .map_err(|reason| MacroError::Cancelled { reason })
    }

    fn exec_sql(
        &self,
        section: &SqlSection,
        env: &mut Env,
        db: &mut dyn Database,
        out: &mut dyn PageSink,
    ) -> MacroResult<Flow> {
        let _span = dbgw_obs::trace::span("exec_sql");
        self.check_ctx()?;
        let sql = {
            let mut ev = self.evaluator(env);
            ev.substitute(&section.command)?.trim().to_owned()
        };
        dbgw_obs::trace::note("sql", &sql);
        dbgw_obs::metrics().sql_statements.inc();
        if self.config.honor_showsql {
            let show = {
                let mut ev = self.evaluator(env);
                ev.is_nonnull("SHOWSQL")?
            };
            if show {
                self.emit(out, "<P><CODE>")?;
                self.emit(out, &escape_text(&sql))?;
                self.emit(out, "</CODE></P>\n")?;
            }
        }
        match db.execute(&sql) {
            Ok(rows) => {
                // A database call can block well past the deadline; detect it
                // here rather than waiting for the next substitution step.
                self.check_ctx()?;
                if rows.sqlcode() == 100 {
                    dbgw_obs::metrics().sqlcode_errors.record(100);
                }
                self.render_result(section, &rows, env, out)?;
                if rows.sqlcode() == 100 {
                    if let Some(msg) = find_message(section, 100) {
                        let text = {
                            let mut ev = self.evaluator(env);
                            ev.substitute(&msg.text)?
                        };
                        self.emit(out, &text)?;
                        if msg.action == MessageAction::Exit {
                            return Ok(Flow::Stop { error: false });
                        }
                    }
                }
                Ok(Flow::Continue)
            }
            Err(e) => {
                dbgw_obs::metrics().sqlcode_errors.record(e.code);
                dbgw_obs::trace::note("sqlcode", e.code.to_string());
                match find_message(section, e.code) {
                    Some(msg) => {
                        let text = if e.code == dbgw_obs::CANCELLED_SQLCODE {
                            // The interrupt handler IS the error page: render
                            // it even though the context has already tripped.
                            let mut ev = Evaluator::new(env, self.runner);
                            ev.substitute(&msg.text)?
                        } else {
                            let mut ev = self.evaluator(env);
                            ev.substitute(&msg.text)?
                        };
                        self.emit(out, &text)?;
                        match msg.action {
                            MessageAction::Continue => Ok(Flow::Continue),
                            MessageAction::Exit => Ok(Flow::Stop { error: true }),
                        }
                    }
                    None if e.code == dbgw_obs::CANCELLED_SQLCODE => {
                        // A cancelled request with no %SQL_MESSAGE handler for
                        // SQLCODE -952 surfaces as a request-level error so
                        // the gateway can render its timeout page.
                        Err(MacroError::Cancelled {
                            reason: self.ctx.cancel_reason().unwrap_or(CancelReason::Cancelled),
                        })
                    }
                    None => {
                        // "...or by printing the DBMS error message" (§4.2).
                        self.emit(
                            out,
                            &format!(
                                "<P><B>{} {}</B>: {}</P>\n",
                                message(self.config.language, Message::SqlErrorBanner),
                                e.code,
                                escape_text(&e.message)
                            ),
                        )?;
                        Ok(Flow::Stop { error: true })
                    }
                }
            }
        }
    }

    fn render_result(
        &self,
        section: &SqlSection,
        rows: &DbRows,
        env: &mut Env,
        out: &mut dyn PageSink,
    ) -> MacroResult<()> {
        let _span = dbgw_obs::trace::span("render_report");
        // DML with no report block prints nothing.
        if rows.columns.is_empty() && section.report.is_none() {
            return Ok(());
        }
        let max_rows = {
            let mut ev = self.evaluator(env);
            ev.value_of("RPT_MAX_ROWS")?
                .trim()
                .parse::<usize>()
                .ok()
                .unwrap_or(self.config.max_rows_hard_limit)
                .min(self.config.max_rows_hard_limit)
        };
        let escape = |s: &str| -> String {
            if self.config.escape_values {
                escape_text(s).into_owned()
            } else {
                s.to_owned()
            }
        };

        let printed = rows.rows.len().min(max_rows);
        dbgw_obs::metrics().rows_rendered.add(printed as u64);
        dbgw_obs::trace::note("rows", printed.to_string());

        let Some(report) = &section.report else {
            // Default table format (§3.4), emitted row by row so a streaming
            // sink ships the table as the rows arrive. Each row is charged
            // against the request budgets *before* it is pushed.
            let header = TableBuilder::header_html(&rows.columns);
            self.charge(0, header.len())?;
            self.emit(out, &header)?;
            for (i, row) in rows.rows.iter().take(max_rows).enumerate() {
                if i % 128 == 0 {
                    self.check_ctx()?;
                }
                let html = TableBuilder::row_html(rows.columns.len(), row);
                self.charge(1, html.len())?;
                self.emit(out, &html)?;
            }
            self.charge(0, TableBuilder::FOOTER_HTML.len())?;
            self.emit(out, TableBuilder::FOOTER_HTML)?;
            return Ok(());
        };

        // Custom report: header frame with column-name variables (§3.2.1).
        let mut header_vars: HashMap<String, String> = HashMap::new();
        for (i, name) in rows.columns.iter().enumerate() {
            header_vars.insert(format!("N{}", i + 1), escape(name));
            header_vars.insert(format!("N_{name}"), escape(name));
        }
        header_vars.insert("NLIST".into(), escape(&rows.columns.join(", ")));
        header_vars.insert("ROW_NUM".into(), "0".into());
        env.push_frame(header_vars);

        {
            let header = {
                let mut ev = self.evaluator(env);
                ev.substitute(&report.header)?
            };
            self.emit(out, &header)?;
        }

        if let Some(row_template) = &report.row {
            for (row_index, row) in rows.rows.iter().enumerate().take(max_rows) {
                let mut row_vars: HashMap<String, String> = HashMap::new();
                row_vars.insert("ROW_NUM".into(), (row_index + 1).to_string());
                for (i, value) in row.iter().enumerate() {
                    row_vars.insert(format!("V{}", i + 1), escape(value));
                    if let Some(name) = rows.columns.get(i) {
                        row_vars.insert(format!("V_{name}"), escape(value));
                    }
                }
                row_vars.insert("VLIST".into(), escape(&row.join(", ")));
                env.push_frame(row_vars);
                let rendered = {
                    let mut ev = self.evaluator(env);
                    ev.substitute(row_template)?
                };
                env.pop_frame();
                self.charge(1, rendered.len())?;
                self.emit(out, &rendered)?;
            }
        }

        // "After all rows have been fetched ... ROW_NUM contains the total
        // number of rows that result from the query, regardless of whether
        // all rows were printed" (§3.2.1).
        env.set_system("ROW_NUM", rows.rows.len().to_string());
        {
            let footer = {
                let mut ev = self.evaluator(env);
                ev.substitute(&report.footer)?
            };
            self.emit(out, &footer)?;
        }
        env.pop_frame();
        Ok(())
    }

    /// Charge rendered report output against the request's row/byte budgets.
    fn charge(&self, rows: usize, bytes: usize) -> MacroResult<()> {
        self.ctx
            .charge_rows(rows as u64)
            .and_then(|()| self.ctx.charge_bytes(bytes as u64))
            .map_err(|reason| MacroError::Cancelled { reason })
    }
}

enum Flow {
    Continue,
    Stop { error: bool },
}

fn find_message(section: &SqlSection, code: i32) -> Option<&crate::ast::SqlMessage> {
    section
        .messages
        .iter()
        .find(|m| m.code == Some(code))
        .or_else(|| section.messages.iter().find(|m| m.code.is_none()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{DbError, FnDatabase};
    use crate::parser::parse_macro;

    fn ok_rows(columns: &[&str], rows: &[&[&str]]) -> DbRows {
        DbRows {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(|s| s.to_string()).collect())
                .collect(),
            affected: 0,
        }
    }

    fn inputs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn lazy_evaluation_paper_example() {
        // §4.3.1: X sees Y but not the later-defined Z.
        let mac = parse_macro(
            "%define X = \"One$(Y)$(Z)\"\n\
             %define Y = \" Two\"\n\
             %HTML_INPUT{$(X)%}\n\
             %define Z = \" Three\"",
        )
        .unwrap();
        let out = Engine::new().process_input(&mac, &[]).unwrap();
        assert_eq!(out, "One Two");
    }

    #[test]
    fn input_mode_skips_sql_entirely() {
        let mac = parse_macro("%SQL{ SELECT boom %}\n%HTML_INPUT{form%}\n%HTML_REPORT{%EXEC_SQL%}")
            .unwrap();
        // NoDatabase errors on any execute; input mode must not touch it.
        let out = Engine::new().process_input(&mac, &[]).unwrap();
        assert_eq!(out, "form");
    }

    #[test]
    fn report_mode_executes_and_splices_default_table() {
        let mac =
            parse_macro("%SQL{ SELECT * FROM t %}\n%HTML_REPORT{<H1>R</H1>\n%EXEC_SQL\n<HR>%}")
                .unwrap();
        let mut db = FnDatabase(|sql: &str| {
            assert_eq!(sql, "SELECT * FROM t");
            Ok(ok_rows(&["a"], &[&["1"], &["2"]]))
        });
        let out = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        assert!(out.starts_with("<H1>R</H1>"));
        assert!(out.contains("<TABLE BORDER=1>"));
        assert!(out.contains("<TD>2</TD>"));
        assert!(out.trim_end().ends_with("<HR>"));
    }

    #[test]
    fn custom_report_with_row_variables() {
        let mac = parse_macro(
            "%SQL{ SELECT url, title FROM t\n\
             %SQL_REPORT{Columns: $(NLIST)<UL>\n\
             %ROW{<LI>#$(ROW_NUM) <A HREF=\"$(V1)\">$(V_title)</A>\n%}\
             </UL>Total $(ROW_NUM) rows.%}\n%}\n\
             %HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let mut db = FnDatabase(|_: &str| {
            Ok(ok_rows(
                &["url", "title"],
                &[&["http://a", "A"], &["http://b", "B"]],
            ))
        });
        let out = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        assert!(out.contains("Columns: url, title"));
        assert!(out.contains("#1 <A HREF=\"http://a\">A</A>"));
        assert!(out.contains("#2 <A HREF=\"http://b\">B</A>"));
        assert!(out.contains("Total 2 rows."));
    }

    #[test]
    fn rpt_max_rows_limits_printing_but_not_row_num() {
        let mac = parse_macro(
            "%define RPT_MAX_ROWS = \"2\"\n\
             %SQL{ SELECT a FROM t\n%SQL_REPORT{%ROW{[$(V1)]%}Total=$(ROW_NUM)%}\n%}\n\
             %HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["a"], &[&["1"], &["2"], &["3"], &["4"]])));
        let out = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        assert_eq!(out, "[1][2]Total=4");
    }

    #[test]
    fn inputs_flow_into_sql() {
        let mac =
            parse_macro("%SQL{ SELECT * FROM t WHERE x = '$(SEARCH)' %}\n%HTML_REPORT{%EXEC_SQL%}")
                .unwrap();
        let mut seen = String::new();
        let mut db = FnDatabase(|sql: &str| {
            seen = sql.to_owned();
            Ok(ok_rows(&["x"], &[]))
        });
        Engine::new()
            .process(&mac, Mode::Report, &inputs(&[("SEARCH", "ib")]), &mut db)
            .unwrap();
        assert_eq!(seen, "SELECT * FROM t WHERE x = 'ib'");
    }

    #[test]
    fn named_sections_and_variable_dispatch() {
        let mac = parse_macro(
            "%SQL(one){ SELECT 1 %}\n%SQL(two){ SELECT 2 %}\n\
             %HTML_REPORT{%EXEC_SQL($(which))%}",
        )
        .unwrap();
        let mut executed = Vec::new();
        let mut db = FnDatabase(|sql: &str| {
            executed.push(sql.to_owned());
            Ok(ok_rows(&["n"], &[&["x"]]))
        });
        Engine::new()
            .process(&mac, Mode::Report, &inputs(&[("which", "two")]), &mut db)
            .unwrap();
        assert_eq!(executed, vec!["SELECT 2"]);
    }

    #[test]
    fn unknown_named_section_errors() {
        let mac = parse_macro("%SQL(a){ SELECT 1 %}\n%HTML_REPORT{%EXEC_SQL(b)%}").unwrap();
        let mut db = FnDatabase(|_: &str| Ok(DbRows::default()));
        let err = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap_err();
        assert!(matches!(err, MacroError::UnknownSqlSection { name } if name == "b"));
    }

    #[test]
    fn unnamed_exec_runs_all_unnamed_in_order() {
        let mac = parse_macro(
            "%SQL{ FIRST %}\n%SQL(named){ NAMED %}\n%SQL{ SECOND %}\n\
             %HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let mut executed = Vec::new();
        let mut db = FnDatabase(|sql: &str| {
            executed.push(sql.to_owned());
            Ok(DbRows {
                affected: 1,
                ..DbRows::default()
            })
        });
        Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        assert_eq!(executed, vec!["FIRST", "SECOND"]);
    }

    #[test]
    fn sql_error_without_handler_prints_dbms_message_and_stops() {
        let mac =
            parse_macro("%SQL{ BAD %}\n%SQL{ NEVER %}\n%HTML_REPORT{%EXEC_SQL\ntail%}").unwrap();
        let mut calls = 0;
        let mut db = FnDatabase(|_: &str| {
            calls += 1;
            Err(DbError {
                code: -204,
                message: "table missing".into(),
            })
        });
        let out = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        assert!(out.contains("SQL error -204"));
        assert!(out.contains("table missing"));
        assert!(!out.contains("tail"), "processing must stop");
        assert_eq!(calls, 1);
    }

    #[test]
    fn sql_message_handler_continue() {
        let mac = parse_macro(
            "%SQL{ BAD\n%SQL_MESSAGE{ -204 : \"<P>no table, moving on</P>\" : continue %}\n%}\n\
             %HTML_REPORT{%EXEC_SQL\ntail%}",
        )
        .unwrap();
        let mut db = FnDatabase(|_: &str| {
            Err(DbError {
                code: -204,
                message: "x".into(),
            })
        });
        let out = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        assert!(out.contains("no table, moving on"));
        assert!(out.contains("tail"));
    }

    #[test]
    fn sql_message_default_handler() {
        let mac = parse_macro(
            "%SQL{ BAD\n%SQL_MESSAGE{ default : \"custom: $(oops)\" %}\n%}\n\
             %define oops = \"broken\"\n%HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let mut db = FnDatabase(|_: &str| {
            Err(DbError {
                code: -803,
                message: "dup".into(),
            })
        });
        let out = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        // NOTE: the %define appears *before* %HTML_REPORT, so it is visible.
        assert_eq!(out, "custom: broken");
    }

    #[test]
    fn code_100_message_on_empty_result() {
        let mac = parse_macro(
            "%SQL{ Q\n%SQL_REPORT{%ROW{[$(V1)]%}%}\n\
             %SQL_MESSAGE{ 100 : \"<P>Nothing matched.</P>\" : continue %}\n%}\n\
             %HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["a"], &[])));
        let out = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        assert!(out.contains("Nothing matched."));
    }

    #[test]
    fn single_transaction_commits_on_success() {
        let mac =
            parse_macro("%SQL{ INSERT 1 %}\n%SQL{ INSERT 2 %}\n%HTML_REPORT{%EXEC_SQL%}").unwrap();
        let mut log: Vec<String> = Vec::new();
        let mut db = FnDatabase(|sql: &str| {
            log.push(sql.to_owned());
            Ok(DbRows {
                affected: 1,
                ..DbRows::default()
            })
        });
        let engine = Engine::with_config(EngineConfig {
            txn_mode: TxnMode::SingleTransaction,
            ..EngineConfig::default()
        });
        engine.process(&mac, Mode::Report, &[], &mut db).unwrap();
        assert_eq!(log, vec!["BEGIN", "INSERT 1", "INSERT 2", "COMMIT"]);
    }

    #[test]
    fn single_transaction_rolls_back_on_failure() {
        let mac = parse_macro("%SQL{ INSERT 1 %}\n%SQL{ BAD %}\n%HTML_REPORT{%EXEC_SQL%}").unwrap();
        let mut log: Vec<String> = Vec::new();
        let mut db = FnDatabase(|sql: &str| {
            log.push(sql.to_owned());
            if sql == "BAD" {
                Err(DbError {
                    code: -204,
                    message: "boom".into(),
                })
            } else {
                Ok(DbRows {
                    affected: 1,
                    ..DbRows::default()
                })
            }
        });
        let engine = Engine::with_config(EngineConfig {
            txn_mode: TxnMode::SingleTransaction,
            ..EngineConfig::default()
        });
        engine.process(&mac, Mode::Report, &[], &mut db).unwrap();
        assert_eq!(log, vec!["BEGIN", "INSERT 1", "BAD", "ROLLBACK"]);
    }

    #[test]
    fn showsql_echoes_statement() {
        let mac = parse_macro("%SQL{ SELECT 1 %}\n%HTML_REPORT{%EXEC_SQL%}").unwrap();
        let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["n"], &[&["1"]])));
        let out = Engine::new()
            .process(&mac, Mode::Report, &inputs(&[("SHOWSQL", "YES")]), &mut db)
            .unwrap();
        assert!(out.contains("<CODE>SELECT 1</CODE>"));
        // And absent when SHOWSQL is null (the CHECKED "No" radio sends "").
        let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["n"], &[&["1"]])));
        let out = Engine::new()
            .process(&mac, Mode::Report, &inputs(&[("SHOWSQL", "")]), &mut db)
            .unwrap();
        assert!(!out.contains("<CODE>"));
    }

    #[test]
    fn values_html_escaped_by_default() {
        let mac = parse_macro("%SQL{ Q\n%SQL_REPORT{%ROW{$(V1)%}%}\n%}\n%HTML_REPORT{%EXEC_SQL%}")
            .unwrap();
        let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["a"], &[&["<script>alert(1)</script>"]])));
        let out = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        assert!(out.contains("&lt;script&gt;"));
        // Fidelity mode: raw.
        let engine = Engine::with_config(EngineConfig {
            escape_values: false,
            ..EngineConfig::default()
        });
        let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["a"], &[&["<b>"]])));
        let out = engine.process(&mac, Mode::Report, &[], &mut db).unwrap();
        assert!(out.contains("<b>"));
    }

    #[test]
    fn missing_sections_error() {
        let mac = parse_macro("%HTML_REPORT{x%}").unwrap();
        assert!(matches!(
            Engine::new().process_input(&mac, &[]).unwrap_err(),
            MacroError::MissingSection {
                section: "%HTML_INPUT"
            }
        ));
        let mac2 = parse_macro("%HTML_INPUT{x%}").unwrap();
        let mut db = FnDatabase(|_: &str| Ok(DbRows::default()));
        assert!(matches!(
            Engine::new()
                .process(&mac2, Mode::Report, &[], &mut db)
                .unwrap_err(),
            MacroError::MissingSection {
                section: "%HTML_REPORT"
            }
        ));
    }

    #[test]
    fn dollar_escape_stripped_in_output() {
        // §4.1: $$(varname) appears as $(varname) in the output.
        let mac = parse_macro("%HTML_INPUT{<OPTION VALUE=\"$$(hidden_a)\">%}").unwrap();
        let out = Engine::new().process_input(&mac, &[]).unwrap();
        assert_eq!(out, "<OPTION VALUE=\"$(hidden_a)\">");
    }

    #[test]
    fn mode_from_command() {
        assert_eq!(Mode::from_command("input"), Some(Mode::Input));
        assert_eq!(Mode::from_command("REPORT"), Some(Mode::Report));
        assert_eq!(Mode::from_command("bogus"), None);
    }

    #[test]
    fn cancelled_ctx_stops_section_processing() {
        let mac = parse_macro("%SQL{ SELECT 1 %}\n%HTML_REPORT{%EXEC_SQL%}").unwrap();
        let ctx = Arc::new(RequestCtx::new(7, Arc::new(dbgw_obs::StdClock::new())));
        ctx.cancel();
        let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["n"], &[&["1"]])));
        let err = Engine::new()
            .with_request_ctx(ctx)
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap_err();
        assert!(matches!(
            err,
            MacroError::Cancelled {
                reason: CancelReason::Cancelled
            }
        ));
        assert!(err.to_string().contains("-952"));
    }

    #[test]
    fn deadline_trips_after_slow_database_call() {
        // The DB call itself "blocks" past the deadline (simulated by
        // advancing the test clock inside execute); the post-execute check
        // must catch it before any more output is rendered.
        let clock = Arc::new(dbgw_obs::TestClock::new());
        let ctx = Arc::new(RequestCtx::new(1, clock.clone()).with_deadline_ms(50));
        let mac = parse_macro("%SQL{ SLOW %}\n%HTML_REPORT{%EXEC_SQL\ntail%}").unwrap();
        let mut db = FnDatabase(|_: &str| {
            clock.advance_millis(60);
            Ok(ok_rows(&["n"], &[&["1"]]))
        });
        let err = Engine::new()
            .with_request_ctx(ctx)
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap_err();
        assert!(matches!(
            err,
            MacroError::Cancelled {
                reason: CancelReason::DeadlineExceeded { deadline_ms: 50 }
            }
        ));
    }

    #[test]
    fn sql_message_handler_intercepts_cancelled_sqlcode() {
        // A macro may install a %SQL_MESSAGE handler for SQLCODE -952 and
        // render its own interrupt page instead of the gateway's.
        let mac = parse_macro(
            "%SQL{ Q\n%SQL_MESSAGE{ -952 : \"<P>interrupted, sorry</P>\" : exit %}\n%}\n\
             %HTML_REPORT{%EXEC_SQL\ntail%}",
        )
        .unwrap();
        let mut db = FnDatabase(|_: &str| {
            Err(DbError {
                code: -952,
                message: "processing cancelled due to interrupt".into(),
            })
        });
        let out = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap();
        assert!(out.contains("interrupted, sorry"));
        assert!(!out.contains("tail"));
    }

    #[test]
    fn unhandled_cancelled_sqlcode_surfaces_as_cancelled_error() {
        let mac = parse_macro("%SQL{ Q %}\n%HTML_REPORT{%EXEC_SQL%}").unwrap();
        let mut db = FnDatabase(|_: &str| {
            Err(DbError {
                code: -952,
                message: "processing cancelled due to interrupt".into(),
            })
        });
        let err = Engine::new()
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap_err();
        assert!(matches!(err, MacroError::Cancelled { .. }));
    }

    #[test]
    fn row_budget_caps_custom_report() {
        let mac =
            parse_macro("%SQL{ Q\n%SQL_REPORT{%ROW{[$(V1)]%}%}\n%}\n%HTML_REPORT{%EXEC_SQL%}")
                .unwrap();
        let ctx =
            Arc::new(RequestCtx::new(2, Arc::new(dbgw_obs::StdClock::new())).with_row_budget(2));
        let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["a"], &[&["1"], &["2"], &["3"]])));
        let err = Engine::new()
            .with_request_ctx(ctx)
            .process(&mac, Mode::Report, &[], &mut db)
            .unwrap_err();
        assert!(matches!(
            err,
            MacroError::Cancelled {
                reason: CancelReason::RowBudgetExceeded { budget: 2 }
            }
        ));
    }
}
