//! The variable environment: macro defines, HTML input variables, and
//! system-supplied report variables, with the paper's priority rules.
//!
//! §4.3: the name space of HTML input variables is unified with the macro's
//! own variables, but "the HTML input variable values from the Web client
//! \[have\] higher priority than the variable values defined in the macro
//! itself using DEFINE sections". On top of both sit the *system* variables
//! the engine instantiates while rendering a SQL report (`Ni`, `Vi`,
//! `ROW_NUM`, ...), which live in scoped frames.

use crate::ast::DefineStatement;
use std::collections::HashMap;

/// One accumulated assignment for a variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Assign {
    /// Simple value string.
    Simple(String),
    /// Two-armed conditional.
    CondBinary {
        /// Tested variable.
        test: String,
        /// Value when defined & non-null.
        then_value: String,
        /// Value otherwise.
        else_value: String,
    },
    /// One-armed conditional (null if any referenced variable is null).
    CondUnary(String),
    /// Executable: the command string, run at each reference.
    Exec(String),
}

/// Everything known about one defined variable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarEntry {
    /// `%LIST` separator, if declared. Presence makes this a list variable:
    /// assignments accumulate instead of replacing.
    pub separator: Option<String>,
    /// Assignments in order. Non-list variables keep only the latest.
    pub assigns: Vec<Assign>,
}

/// The variable environment.
#[derive(Default)]
pub struct Env {
    defines: HashMap<String, VarEntry>,
    /// HTML input variables (multi-valued, in arrival order).
    inputs: HashMap<String, Vec<String>>,
    /// System variable frames, innermost last. Keys stored uppercased —
    /// lookup is case-insensitive, matching the paper's carve-out for
    /// "implicit variables that represent database column names".
    frames: Vec<HashMap<String, String>>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Apply one `%DEFINE` statement (top-to-bottom processing order).
    pub fn apply(&mut self, stmt: &DefineStatement) {
        match stmt {
            DefineStatement::ListDecl { name, separator } => {
                let entry = self.defines.entry(name.clone()).or_default();
                entry.separator = Some(separator.clone());
            }
            other => {
                let assign = match other {
                    DefineStatement::Simple { value, .. } => Assign::Simple(value.clone()),
                    DefineStatement::CondBinary {
                        test,
                        then_value,
                        else_value,
                        ..
                    } => Assign::CondBinary {
                        test: test.clone(),
                        then_value: then_value.clone(),
                        else_value: else_value.clone(),
                    },
                    DefineStatement::CondUnary { value, .. } => Assign::CondUnary(value.clone()),
                    DefineStatement::Exec { command, .. } => Assign::Exec(command.clone()),
                    DefineStatement::ListDecl { .. } => unreachable!(),
                };
                let entry = self.defines.entry(other.name().to_owned()).or_default();
                if entry.separator.is_some() {
                    // List variable: assignments accumulate (§3.1.3).
                    entry.assigns.push(assign);
                } else {
                    // Plain variable: redefinition replaces.
                    entry.assigns = vec![assign];
                }
            }
        }
    }

    /// Record one HTML input variable value (CGI `name=value`). Repeats make
    /// the variable multi-valued (a list variable, §2.2).
    pub fn push_input(&mut self, name: &str, value: &str) {
        self.inputs
            .entry(name.to_owned())
            .or_default()
            .push(value.to_owned());
    }

    /// Look up a macro-defined variable entry.
    pub fn define(&self, name: &str) -> Option<&VarEntry> {
        self.defines.get(name)
    }

    /// Look up HTML input values for a variable (exact-case, like defines).
    pub fn input(&self, name: &str) -> Option<&[String]> {
        self.inputs.get(name).map(|v| v.as_slice())
    }

    /// The `%LIST` separator declared for `name`, if any.
    pub fn separator_of(&self, name: &str) -> Option<&str> {
        self.defines.get(name).and_then(|e| e.separator.as_deref())
    }

    /// Push a system-variable frame (entering a report header/row scope).
    pub fn push_frame(&mut self, vars: HashMap<String, String>) {
        let normalized = vars
            .into_iter()
            .map(|(k, v)| (k.to_ascii_uppercase(), v))
            .collect();
        self.frames.push(normalized);
    }

    /// Pop the innermost system frame.
    pub fn pop_frame(&mut self) {
        self.frames.pop();
    }

    /// Case-insensitive lookup in the system frames, innermost first.
    pub fn system(&self, name: &str) -> Option<&str> {
        let key = name.to_ascii_uppercase();
        self.frames
            .iter()
            .rev()
            .find_map(|f| f.get(&key).map(String::as_str))
    }

    /// Set a single variable in the innermost frame (ROW_NUM updates).
    pub fn set_system(&mut self, name: &str, value: String) {
        if let Some(frame) = self.frames.last_mut() {
            frame.insert(name.to_ascii_uppercase(), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_redefinition_replaces() {
        let mut env = Env::new();
        env.apply(&DefineStatement::Simple {
            name: "a".into(),
            value: "1".into(),
        });
        env.apply(&DefineStatement::Simple {
            name: "a".into(),
            value: "2".into(),
        });
        assert_eq!(env.define("a").unwrap().assigns.len(), 1);
        assert_eq!(
            env.define("a").unwrap().assigns[0],
            Assign::Simple("2".into())
        );
    }

    #[test]
    fn list_assignments_accumulate() {
        let mut env = Env::new();
        env.apply(&DefineStatement::ListDecl {
            name: "L".into(),
            separator: " OR ".into(),
        });
        env.apply(&DefineStatement::CondUnary {
            name: "L".into(),
            value: "x = $(a)".into(),
        });
        env.apply(&DefineStatement::CondUnary {
            name: "L".into(),
            value: "y = $(b)".into(),
        });
        let entry = env.define("L").unwrap();
        assert_eq!(entry.separator.as_deref(), Some(" OR "));
        assert_eq!(entry.assigns.len(), 2);
    }

    #[test]
    fn inputs_multi_valued() {
        let mut env = Env::new();
        env.push_input("DBFIELD", "title");
        env.push_input("DBFIELD", "desc");
        assert_eq!(env.input("DBFIELD").unwrap().len(), 2);
        // Exact-case lookup.
        assert!(env.input("dbfield").is_none());
    }

    #[test]
    fn system_frames_shadow_and_pop() {
        let mut env = Env::new();
        env.push_frame(HashMap::from([("N1".to_owned(), "url".to_owned())]));
        env.push_frame(HashMap::from([("V1".to_owned(), "http://x".to_owned())]));
        assert_eq!(env.system("n1"), Some("url"));
        assert_eq!(env.system("v1"), Some("http://x"));
        env.pop_frame();
        assert_eq!(env.system("V1"), None);
        assert_eq!(env.system("N1"), Some("url"));
    }

    #[test]
    fn system_lookup_case_insensitive() {
        let mut env = Env::new();
        env.push_frame(HashMap::from([("V_TITLE".to_owned(), "IBM".to_owned())]));
        assert_eq!(env.system("V_title"), Some("IBM"));
        assert_eq!(env.system("v_Title"), Some("IBM"));
    }
}
