//! Error types for macro parsing and processing.

use std::fmt;

/// Location of an error in a macro file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Errors raised while parsing or processing a macro.
#[derive(Debug, Clone, PartialEq)]
pub enum MacroError {
    /// The macro text violated the section/statement grammar.
    Parse {
        /// What went wrong.
        message: String,
        /// Where.
        location: Location,
    },
    /// A variable's value string references itself, directly or transitively.
    /// The paper: "Circular references among variables are not allowed and
    /// result in an error."
    CircularReference {
        /// The variable that closed the cycle.
        variable: String,
        /// The evaluation chain that led there.
        chain: Vec<String>,
    },
    /// `%EXEC_SQL(name)` named a SQL section that does not exist.
    UnknownSqlSection {
        /// The requested section name.
        name: String,
    },
    /// `%EXEC_SQL` with no name, but the macro has no unnamed SQL sections.
    NoSqlSections,
    /// The database rejected a SQL statement and no `%SQL_MESSAGE` handler
    /// chose to continue.
    Sql {
        /// The DBMS error code (DB2 SQLCODE convention).
        code: i32,
        /// The DBMS message.
        message: String,
        /// The statement that failed, post-substitution.
        statement: String,
    },
    /// An executable variable's command failed to launch.
    Exec {
        /// The variable being evaluated.
        variable: String,
        /// Description of the launch failure.
        message: String,
    },
    /// The requested processing mode needs a section the macro lacks
    /// (e.g. input mode with no `%HTML_INPUT`).
    MissingSection {
        /// The section keyword that was needed.
        section: &'static str,
    },
    /// Substitution nesting exceeded the engine's depth limit (guards against
    /// pathological non-circular chains).
    DepthExceeded {
        /// The variable whose evaluation blew the limit.
        variable: String,
    },
    /// The request's execution context tripped (deadline, explicit cancel, or
    /// resource budget) and processing stopped at a cancellation point.
    Cancelled {
        /// Why the context asked to stop.
        reason: dbgw_obs::CancelReason,
    },
}

impl fmt::Display for MacroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacroError::Parse { message, location } => {
                write!(f, "macro parse error at {location}: {message}")
            }
            MacroError::CircularReference { variable, chain } => write!(
                f,
                "circular variable reference on {variable} (chain: {})",
                chain.join(" -> ")
            ),
            MacroError::UnknownSqlSection { name } => {
                write!(f, "no SQL section named {name}")
            }
            MacroError::NoSqlSections => write!(f, "%EXEC_SQL but the macro has no SQL sections"),
            MacroError::Sql {
                code,
                message,
                statement,
            } => write!(f, "SQL error {code}: {message} (statement: {statement})"),
            MacroError::Exec { variable, message } => {
                write!(f, "executable variable {variable} failed: {message}")
            }
            MacroError::MissingSection { section } => {
                write!(f, "macro has no {section} section")
            }
            MacroError::DepthExceeded { variable } => {
                write!(f, "substitution depth limit exceeded evaluating {variable}")
            }
            // Rendered in the DB2 idiom so the message reads like any other
            // SQLCODE banner (-952: "processing cancelled due to interrupt").
            MacroError::Cancelled { reason } => {
                write!(f, "SQL error {}: {reason}", dbgw_obs::CANCELLED_SQLCODE)
            }
        }
    }
}

impl std::error::Error for MacroError {}

/// Result alias.
pub type MacroResult<T> = Result<T, MacroError>;

impl MacroError {
    /// Parse-error helper.
    pub fn parse(message: impl Into<String>, line: usize, column: usize) -> MacroError {
        MacroError::Parse {
            message: message.into(),
            location: Location { line, column },
        }
    }
}
