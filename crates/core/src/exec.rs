//! Executable variables (§3.1.4): pluggable command execution.
//!
//! `varname = %EXEC "command"` runs `command` every time `$(varname)` is
//! referenced in an HTML section; the process exit code lands in the
//! variable (NULL — i.e. the empty string — on success), which composes with
//! conditional variables to print error messages.
//!
//! The 1996 product shelled out directly. A gateway that runs arbitrary shell
//! commands from macro files is a footgun, so command execution is behind the
//! [`CommandRunner`] trait: the engine defaults to [`DenyRunner`] and callers
//! opt in to [`SystemRunner`] (real processes) or supply a test double.

use std::collections::HashMap;

/// Executes an `%EXEC` command string, returning its exit code.
pub trait CommandRunner {
    /// Run `command`; `Ok(code)` is the process exit code, `Err` a launch
    /// failure (command not found, policy denial, ...).
    fn run(&self, command: &str) -> Result<i32, String>;
}

/// Refuses every command. The safe default.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenyRunner;

impl CommandRunner for DenyRunner {
    fn run(&self, command: &str) -> Result<i32, String> {
        Err(format!(
            "executable variables are disabled by policy (command was {command:?})"
        ))
    }
}

/// Runs commands through `sh -c`, like the original product's `system()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemRunner;

impl CommandRunner for SystemRunner {
    fn run(&self, command: &str) -> Result<i32, String> {
        let status = std::process::Command::new("sh")
            .arg("-c")
            .arg(command)
            .status()
            .map_err(|e| format!("failed to launch {command:?}: {e}"))?;
        Ok(status.code().unwrap_or(-1))
    }
}

/// Maps exact command strings to fixed exit codes; unknown commands fail to
/// launch. Deterministic stand-in for tests and benchmarks.
#[derive(Debug, Clone, Default)]
pub struct StaticRunner {
    codes: HashMap<String, i32>,
}

impl StaticRunner {
    /// Empty table.
    pub fn new() -> StaticRunner {
        StaticRunner::default()
    }

    /// Register `command` to exit with `code`.
    pub fn with(mut self, command: &str, code: i32) -> StaticRunner {
        self.codes.insert(command.to_owned(), code);
        self
    }
}

impl CommandRunner for StaticRunner {
    fn run(&self, command: &str) -> Result<i32, String> {
        self.codes
            .get(command)
            .copied()
            .ok_or_else(|| format!("unknown command {command:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_runner_always_errs() {
        assert!(DenyRunner.run("echo hi").is_err());
    }

    #[test]
    fn static_runner_lookup() {
        let r = StaticRunner::new().with("check", 0).with("fail", 3);
        assert_eq!(r.run("check"), Ok(0));
        assert_eq!(r.run("fail"), Ok(3));
        assert!(r.run("other").is_err());
    }

    #[test]
    fn system_runner_exit_codes() {
        assert_eq!(SystemRunner.run("exit 0"), Ok(0));
        assert_eq!(SystemRunner.run("exit 7"), Ok(7));
    }
}
