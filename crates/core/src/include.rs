//! `%INCLUDE` — macro library support.
//!
//! The shipped product let macros splice shared fragments (site-wide headers,
//! common DEFINE blocks) from the server's macro directory with
//! `%INCLUDE "name"`. The paper only alludes to this ("applications are
//! already being built ... by scores of application developers"), so the
//! feature is reconstructed from the product documentation: textual splicing
//! *before* section parsing, so an included file may contribute whole
//! sections or just lines inside a `%DEFINE{` block.
//!
//! Inclusion is resolved through a caller-supplied [`IncludeResolver`] —
//! never the process filesystem directly — and is depth- and cycle-limited.

use crate::error::{MacroError, MacroResult};
use std::collections::HashMap;

/// Maximum include nesting.
const MAX_DEPTH: usize = 16;

/// Supplies the text of named include fragments.
pub trait IncludeResolver {
    /// The fragment's source text, or `None` if unknown.
    fn resolve(&self, name: &str) -> Option<String>;
}

/// A resolver over an in-memory map (the gateway's macro library).
#[derive(Debug, Clone, Default)]
pub struct MapResolver {
    fragments: HashMap<String, String>,
}

impl MapResolver {
    /// Empty library.
    pub fn new() -> MapResolver {
        MapResolver::default()
    }

    /// Add a fragment.
    pub fn with(mut self, name: &str, text: &str) -> MapResolver {
        self.fragments.insert(name.to_owned(), text.to_owned());
        self
    }

    /// Add a fragment in place.
    pub fn insert(&mut self, name: &str, text: &str) {
        self.fragments.insert(name.to_owned(), text.to_owned());
    }
}

impl IncludeResolver for MapResolver {
    fn resolve(&self, name: &str) -> Option<String> {
        self.fragments.get(name).cloned()
    }
}

/// A resolver that knows nothing — `%INCLUDE` always errors.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoIncludes;

impl IncludeResolver for NoIncludes {
    fn resolve(&self, _name: &str) -> Option<String> {
        None
    }
}

/// Expand every `%INCLUDE "name"` directive in `src`, recursively.
///
/// The directive must sit on its own line (leading whitespace allowed); the
/// rest of the line after the closing quote is discarded, like the product's
/// comment-to-end-of-line behaviour.
pub fn expand_includes(src: &str, resolver: &dyn IncludeResolver) -> MacroResult<String> {
    expand_depth(src, resolver, &mut Vec::new())
}

fn expand_depth(
    src: &str,
    resolver: &dyn IncludeResolver,
    stack: &mut Vec<String>,
) -> MacroResult<String> {
    if stack.len() >= MAX_DEPTH {
        return Err(MacroError::Parse {
            message: format!(
                "%INCLUDE nesting deeper than {MAX_DEPTH} (chain: {})",
                stack.join(" -> ")
            ),
            location: crate::error::Location { line: 0, column: 0 },
        });
    }
    let mut out = String::with_capacity(src.len());
    for (lineno, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(rest) = strip_directive(trimmed) else {
            out.push_str(line);
            out.push('\n');
            continue;
        };
        let name = parse_quoted_name(rest).ok_or_else(|| {
            MacroError::parse(
                "%INCLUDE requires a \"quoted\" fragment name",
                lineno + 1,
                1,
            )
        })?;
        if stack.iter().any(|n| n == &name) {
            return Err(MacroError::Parse {
                message: format!(
                    "circular %INCLUDE of {name:?} (chain: {})",
                    stack.join(" -> ")
                ),
                location: crate::error::Location {
                    line: lineno + 1,
                    column: 1,
                },
            });
        }
        let fragment = resolver.resolve(&name).ok_or_else(|| {
            MacroError::parse(format!("unknown %INCLUDE fragment {name:?}"), lineno + 1, 1)
        })?;
        stack.push(name);
        let expanded = expand_depth(&fragment, resolver, stack)?;
        stack.pop();
        out.push_str(&expanded);
        if !out.ends_with('\n') {
            out.push('\n');
        }
    }
    // Expansion normalizes the text to newline-terminated lines (it is about
    // to be parsed, where trailing whitespace is immaterial).
    Ok(out)
}

fn strip_directive(line: &str) -> Option<&str> {
    if line.len() >= 8 && line[..8].eq_ignore_ascii_case("%INCLUDE") {
        Some(line[8..].trim_start())
    } else {
        None
    }
}

fn parse_quoted_name(rest: &str) -> Option<String> {
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    let name = &rest[..end];
    if name.is_empty() {
        None
    } else {
        Some(name.to_owned())
    }
}

/// Expand includes then parse: the full front end.
pub fn parse_macro_with_includes(
    src: &str,
    resolver: &dyn IncludeResolver,
) -> MacroResult<crate::MacroFile> {
    let expanded = expand_includes(src, resolver)?;
    crate::parse_macro(&expanded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Section};

    #[test]
    fn splices_fragment_text() {
        let lib = MapResolver::new().with("header.hti", "<H1>Site header</H1>");
        let src = "%HTML_INPUT{\n%INCLUDE \"header.hti\"\n<P>body%}";
        let expanded = expand_includes(src, &lib).unwrap();
        assert!(expanded.contains("<H1>Site header</H1>"));
        let mac = crate::parse_macro(&expanded).unwrap();
        let out = Engine::new().process_input(&mac, &[]).unwrap();
        assert!(out.contains("Site header"));
        assert!(out.contains("<P>body"));
    }

    #[test]
    fn fragment_can_contribute_whole_sections() {
        let lib = MapResolver::new().with("defs.hti", "%DEFINE{ shared = \"42\" %}");
        let src = "%INCLUDE \"defs.hti\"\n%HTML_INPUT{$(shared)%}";
        let mac = parse_macro_with_includes(src, &lib).unwrap();
        assert!(matches!(mac.sections[0], Section::Define(_)));
        let out = Engine::new().process_input(&mac, &[]).unwrap();
        assert_eq!(out, "42");
    }

    #[test]
    fn nested_includes() {
        let lib = MapResolver::new()
            .with("outer", "A\n%INCLUDE \"inner\"\nC")
            .with("inner", "B");
        let out = expand_includes("%INCLUDE \"outer\"", &lib).unwrap();
        assert_eq!(out, "A\nB\nC\n");
    }

    #[test]
    fn circular_include_is_an_error() {
        let lib = MapResolver::new()
            .with("a", "%INCLUDE \"b\"")
            .with("b", "%INCLUDE \"a\"");
        let err = expand_includes("%INCLUDE \"a\"", &lib).unwrap_err();
        assert!(err.to_string().contains("circular %INCLUDE"));
    }

    #[test]
    fn unknown_fragment_is_an_error_with_line() {
        let err = expand_includes("x\n%INCLUDE \"nope\"", &NoIncludes).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("nope"));
        assert!(text.contains("line 2"));
    }

    #[test]
    fn unquoted_name_rejected() {
        let lib = MapResolver::new().with("f", "x");
        assert!(expand_includes("%INCLUDE f", &lib).is_err());
    }

    #[test]
    fn directive_must_start_line() {
        // Mid-line %INCLUDE is plain text (the product was line-oriented).
        // Expansion normalizes output to newline-terminated lines.
        let out = expand_includes("price %INCLUDE \"x\" tail", &NoIncludes).unwrap();
        assert_eq!(out, "price %INCLUDE \"x\" tail\n");
    }

    #[test]
    fn depth_limit_enforced() {
        let mut lib = MapResolver::new();
        for i in 0..20 {
            lib.insert(&format!("f{i}"), &format!("%INCLUDE \"f{}\"", i + 1));
        }
        lib.insert("f20", "bottom");
        let err = expand_includes("%INCLUDE \"f0\"", &lib).unwrap_err();
        assert!(err.to_string().contains("nesting deeper"));
    }
}
