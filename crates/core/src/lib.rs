//! **dbgw-core** — the macro language and run-time engine of the SIGMOD '96
//! *DB2 WWW Connection* system (Nguyen & Srinivasan, "Accessing Relational
//! Databases from the World Wide Web").
//!
//! The paper's contribution is a *cross-language variable substitution
//! mechanism* bridging HTML and SQL, packaged as a macro language. A macro
//! file mixes four kinds of sections — `%DEFINE`, `%SQL`, `%HTML_INPUT`,
//! `%HTML_REPORT` — tied together by `$(variable)` references that are
//! resolved lazily, recursively, and with HTML input variables overriding
//! macro defaults. See `DESIGN.md` at the repository root for the complete
//! semantics inventory.
//!
//! ```
//! use dbgw_core::{parse_macro, Engine, Mode};
//! use dbgw_core::db::{DbRows, FnDatabase};
//!
//! let mac = parse_macro(r#"
//! %DEFINE dbtbl = "urldb"
//! %SQL{ SELECT url, title FROM $(dbtbl) WHERE title LIKE '%$(SEARCH)%'
//! %SQL_REPORT{<UL>
//! %ROW{<LI><A HREF="$(V1)">$(V2)</A>
//! %}</UL>%}
//! %}
//! %HTML_INPUT{<FORM ACTION="report"><INPUT NAME="SEARCH"></FORM>%}
//! %HTML_REPORT{<H1>Results</H1>%EXEC_SQL%}
//! "#).unwrap();
//!
//! // Input mode renders the fill-in form; no SQL executes.
//! let form = Engine::new().process_input(&mac, &[]).unwrap();
//! assert!(form.contains("<INPUT NAME=\"SEARCH\">"));
//!
//! // Report mode substitutes HTML inputs into SQL and result rows into HTML.
//! let mut db = FnDatabase(|sql: &str| {
//!     assert!(sql.contains("LIKE '%ib%'"));
//!     Ok(DbRows {
//!         columns: vec!["url".into(), "title".into()],
//!         rows: vec![vec!["http://www.ibm.com".into(), "IBM".into()]],
//!         affected: 0,
//!     })
//! });
//! let report = Engine::new()
//!     .process(&mac, Mode::Report, &[("SEARCH".into(), "ib".into())], &mut db)
//!     .unwrap();
//! assert!(report.contains(r#"<LI><A HREF="http://www.ibm.com">IBM</A>"#));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod db;
pub mod engine;
pub mod env;
pub mod error;
pub mod exec;
pub mod include;
pub mod lint;
pub mod nls;
pub mod parser;
pub mod security;
pub mod sink;
pub mod subst;

pub use ast::{MacroFile, Section};
pub use db::{Database, DbError, DbRows};
pub use engine::{Engine, EngineConfig, Mode, TxnMode};
pub use env::Env;
pub use error::{MacroError, MacroResult};
pub use exec::{CommandRunner, DenyRunner, StaticRunner, SystemRunner};
pub use include::{expand_includes, parse_macro_with_includes, IncludeResolver, MapResolver};
pub use lint::{lint, Finding};
pub use nls::Language;
pub use parser::parse_macro;
pub use sink::PageSink;
pub use subst::Evaluator;
