//! Static analysis of macro files.
//!
//! The paper's pitch is that application developers "use existing HTML and
//! SQL development tools" and glue them with variables — which makes typos in
//! variable names the dominant failure mode (an undefined variable silently
//! becomes the null string, §4.1). This linter catches, before deployment:
//!
//! * references to variables that are neither defined, form inputs, nor
//!   system report variables (`W001`),
//! * DEFINEd variables that nothing ever references (`W002`),
//! * SQL sections that no `%EXEC_SQL` can ever execute (`W003`),
//! * row variables (`Vi` / `V_col` / `VLIST` / `ROW_NUM`) referenced outside
//!   a `%SQL_REPORT` block (`W004`),
//! * a report mode with no SQL at all (`W005`),
//! * conditional tests on variables that can never be set (`W006`).

use crate::ast::{DefineStatement, MacroFile, ReportPart, Section, SqlSection};
use dbgw_html::Form;
use std::collections::BTreeSet;
use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable code, `W001`–`W006`.
    pub code: &'static str,
    /// Human message.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Variables the engine itself defines at run time.
fn is_system_variable(name: &str) -> bool {
    let upper = name.to_ascii_uppercase();
    let positional = |prefix: char| {
        upper
            .strip_prefix(prefix)
            .is_some_and(|rest| !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()))
    };
    upper == "NLIST"
        || upper == "VLIST"
        || upper == "ROW_NUM"
        || upper == "RPT_MAX_ROWS"
        || upper == "SHOWSQL"
        || upper == "SESSION_ID" // injected by the gateway's conversation layer
        || upper.starts_with("N_")
        || upper.starts_with("V_")
        || positional('N')
        || positional('V')
}

/// Extract `$(name)` references from a raw value string (ignoring `$$()`).
fn references(raw: &str, out: &mut BTreeSet<String>) {
    let mut rest = raw;
    while let Some(at) = rest.find('$') {
        let tail = &rest[at..];
        if let Some(after_escape) = tail.strip_prefix("$$(") {
            rest = after_escape;
            continue;
        }
        if let Some(after) = tail.strip_prefix("$(") {
            if let Some(end) = after.find(')') {
                let name = &after[..end];
                if !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && name
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                {
                    out.insert(name.to_owned());
                }
                rest = &after[end + 1..];
                continue;
            }
        }
        rest = &tail[1..];
    }
}

/// Collect `?name=` / `&name=` parameters from hyperlinks in HTML text —
/// the scrollable-cursor and conversation idioms pass next-request inputs
/// through URLs, not forms.
fn hyperlink_parameters(html: &str, out: &mut BTreeSet<String>) {
    for (i, c) in html.char_indices() {
        if c != '?' && c != '&' {
            continue;
        }
        let rest = &html[i + 1..];
        let end = rest
            .char_indices()
            .find(|&(_, ch)| !(ch.is_ascii_alphanumeric() || ch == '_'))
            .map(|(j, _)| j)
            .unwrap_or(rest.len());
        if end > 0 && rest[end..].starts_with('=') {
            let name = &rest[..end];
            if name
                .chars()
                .next()
                .is_some_and(|ch| ch.is_ascii_alphabetic() || ch == '_')
            {
                out.insert(name.to_owned());
            }
        }
    }
}

/// Run all checks over a parsed macro.
pub fn lint(mac: &MacroFile) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Gather definitions, inputs, and references per context.
    let mut defined: BTreeSet<String> = BTreeSet::new();
    let mut tests: BTreeSet<String> = BTreeSet::new();
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    let mut row_scope_refs: BTreeSet<String> = BTreeSet::new(); // refs inside %ROW
    let mut nonrow_refs: BTreeSet<String> = BTreeSet::new();
    let mut form_inputs: BTreeSet<String> = BTreeSet::new();
    let mut has_report_section = false;
    let mut any_exec_all = false;
    let mut named_execs: BTreeSet<String> = BTreeSet::new();

    for section in &mac.sections {
        match section {
            Section::Define(stmts) => {
                for stmt in stmts {
                    defined.insert(stmt.name().to_owned());
                    match stmt {
                        DefineStatement::Simple { value, .. }
                        | DefineStatement::CondUnary { name: _, value } => {
                            references(value, &mut referenced);
                            references(value, &mut nonrow_refs);
                        }
                        DefineStatement::CondBinary {
                            test,
                            then_value,
                            else_value,
                            ..
                        } => {
                            tests.insert(test.clone());
                            references(then_value, &mut referenced);
                            references(else_value, &mut referenced);
                            references(then_value, &mut nonrow_refs);
                            references(else_value, &mut nonrow_refs);
                        }
                        DefineStatement::ListDecl { separator, .. } => {
                            references(separator, &mut referenced);
                        }
                        DefineStatement::Exec { command, .. } => {
                            references(command, &mut referenced);
                        }
                    }
                }
            }
            Section::Sql(sql) => {
                references(&sql.command, &mut referenced);
                references(&sql.command, &mut nonrow_refs);
                if let Some(report) = &sql.report {
                    references(&report.header, &mut referenced);
                    references(&report.footer, &mut referenced);
                    if let Some(row) = &report.row {
                        references(row, &mut referenced);
                        references(row, &mut row_scope_refs);
                    }
                }
                for msg in &sql.messages {
                    references(&msg.text, &mut referenced);
                }
            }
            Section::HtmlInput(body) => {
                references(body, &mut referenced);
                references(body, &mut nonrow_refs);
                for form in Form::parse_all(body) {
                    for control in &form.controls {
                        form_inputs.insert(control.name().to_owned());
                    }
                }
                hyperlink_parameters(body, &mut form_inputs);
            }
            Section::HtmlReport(parts) => {
                has_report_section = true;
                for part in parts {
                    match part {
                        ReportPart::Html(text) => {
                            references(text, &mut referenced);
                            references(text, &mut nonrow_refs);
                            // Hyperlinks back into the gateway carry inputs
                            // for the *next* request; those names are part of
                            // the application's input vocabulary.
                            hyperlink_parameters(text, &mut form_inputs);
                        }
                        ReportPart::ExecSqlAll => any_exec_all = true,
                        ReportPart::ExecSqlNamed(op) => {
                            if op.starts_with("$(") {
                                references(op, &mut referenced);
                            } else {
                                named_execs.insert(op.clone());
                            }
                        }
                    }
                }
            }
            Section::Comment(_) => {}
        }
    }

    let known = |name: &str| {
        defined.contains(name) || form_inputs.contains(name) || is_system_variable(name)
    };

    // W001 — references to nothing.
    for name in &referenced {
        if !known(name) {
            findings.push(Finding {
                code: "W001",
                message: format!(
                    "$({name}) is referenced but never defined and no form input provides it \
                     (it will silently evaluate to the null string)"
                ),
            });
        }
    }

    // W002 — unused defines. (Conditional tests count as uses.)
    for name in &defined {
        if !referenced.contains(name) && !tests.contains(name) {
            findings.push(Finding {
                code: "W002",
                message: format!("variable {name} is defined but never referenced"),
            });
        }
    }

    // W003 — unreachable SQL sections.
    let sql_sections: Vec<&SqlSection> = mac.sql_sections().collect();
    for sql in &sql_sections {
        let reachable = match &sql.name {
            None => any_exec_all,
            Some(name) => {
                named_execs.contains(name)
                    // A variable-dispatched %EXEC_SQL($(v)) may reach any
                    // named section; treat those macros as fully reachable.
                    || mac.sections.iter().any(|s| matches!(s, Section::HtmlReport(parts)
                        if parts.iter().any(|p| matches!(p, ReportPart::ExecSqlNamed(op) if op.starts_with("$(")))))
            }
        };
        if has_report_section && !reachable {
            findings.push(Finding {
                code: "W003",
                message: format!(
                    "SQL section {} can never be executed by the report section",
                    sql.name.as_deref().unwrap_or("(unnamed)")
                ),
            });
        }
    }

    // W004 — row variables outside a %ROW scope.
    for name in &nonrow_refs {
        let upper = name.to_ascii_uppercase();
        let is_row_var = upper.starts_with("V_")
            || upper == "VLIST"
            || (upper.len() > 1
                && upper.starts_with('V')
                && upper[1..].chars().all(|c| c.is_ascii_digit()));
        if is_row_var && !defined.contains(name) && !form_inputs.contains(name) {
            findings.push(Finding {
                code: "W004",
                message: format!(
                    "row variable $({name}) referenced outside a %SQL_REPORT row scope \
                     will be null"
                ),
            });
        }
    }

    // W005 — report mode with no SQL.
    if has_report_section && sql_sections.is_empty() {
        findings.push(Finding {
            code: "W005",
            message: "the macro has an %HTML_REPORT but no %SQL sections".into(),
        });
    }

    // W006 — conditional tests that can never be non-null.
    for test in &tests {
        if !known(test) {
            findings.push(Finding {
                code: "W006",
                message: format!(
                    "conditional tests variable {test}, which is never defined and has no \
                     form input — the else-branch always wins"
                ),
            });
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_macro;

    fn codes(src: &str) -> Vec<&'static str> {
        let mac = parse_macro(src).unwrap();
        let mut codes: Vec<&'static str> = lint(&mac).into_iter().map(|f| f.code).collect();
        codes.sort();
        codes.dedup();
        codes
    }

    #[test]
    fn clean_macro_has_no_findings() {
        let src = r#"%DEFINE cond = SEARCH ? "WHERE t LIKE '%$(SEARCH)%'" : ""
%SQL{ SELECT a FROM t $(cond)
%SQL_REPORT{%ROW{$(V1)%}%}
%}
%HTML_INPUT{<FORM ACTION="r"><INPUT NAME="SEARCH"></FORM>%}
%HTML_REPORT{%EXEC_SQL%}"#;
        assert!(
            codes(src).is_empty(),
            "{:?}",
            lint(&parse_macro(src).unwrap())
        );
    }

    #[test]
    fn undefined_reference_w001() {
        let src = "%HTML_INPUT{$(typo_here)%}";
        assert_eq!(codes(src), vec!["W001"]);
    }

    #[test]
    fn form_inputs_count_as_definitions() {
        let src = "%HTML_INPUT{<FORM ACTION=\"r\"><INPUT NAME=\"X\"></FORM>%}\n%HTML_REPORT{$(X)%}\n%SQL{ S %}";
        // W003 fires (the SQL section is unreachable) but not W001.
        assert!(!codes(src).contains(&"W001"));
    }

    #[test]
    fn unused_define_w002() {
        let src = "%DEFINE never = \"x\"\n%HTML_INPUT{hello%}";
        assert_eq!(codes(src), vec!["W002"]);
    }

    #[test]
    fn unreachable_sql_w003() {
        let src = "%SQL(a){ S %}\n%SQL(b){ T %}\n%HTML_REPORT{%EXEC_SQL(a)%}";
        let mac = parse_macro(src).unwrap();
        let findings = lint(&mac);
        assert!(findings
            .iter()
            .any(|f| f.code == "W003" && f.message.contains('b')));
        assert!(!findings
            .iter()
            .any(|f| f.code == "W003" && f.message.contains("(a)")));
    }

    #[test]
    fn variable_dispatch_suppresses_w003() {
        let src = "%SQL(a){ S %}\n%SQL(b){ T %}\n%HTML_REPORT{%EXEC_SQL($(pick))%}\n";
        // $(pick) may name either section; and pick itself is W001.
        let found = codes(src);
        assert!(!found.contains(&"W003"), "{found:?}");
    }

    #[test]
    fn row_variable_outside_row_w004() {
        let src = "%SQL{ S %}\n%HTML_REPORT{Value: $(V1)\n%EXEC_SQL%}";
        assert!(codes(src).contains(&"W004"));
    }

    #[test]
    fn report_without_sql_w005() {
        let src = "%HTML_REPORT{static only%}";
        assert_eq!(codes(src), vec!["W005"]);
    }

    #[test]
    fn impossible_test_w006() {
        let src = "%DEFINE a = NEVER_SET ? \"x\" : \"y\"\n%HTML_INPUT{$(a)%}";
        assert_eq!(codes(src), vec!["W006"]);
    }

    #[test]
    fn system_variables_are_known() {
        let src = "%SQL{ S\n%SQL_REPORT{$(NLIST)$(N_title)%ROW{$(V2)$(ROW_NUM)%}$(ROW_NUM)%}\n%}\n%HTML_REPORT{%EXEC_SQL%}";
        assert!(codes(src).is_empty(), "{:?}", codes(src));
    }

    #[test]
    fn appendix_a_macro_lints_clean_of_w001() {
        // The reference application must not have typo-class findings.
        let mac = parse_macro(test_macros::APPENDIX_A_EQUIVALENT).unwrap();
        let findings = lint(&mac);
        assert!(!findings.iter().any(|f| f.code == "W001"), "{findings:?}");
    }
}

#[cfg(test)]
pub(crate) mod test_macros {
    /// A compact equivalent of the Appendix A application for linting.
    pub const APPENDIX_A_EQUIVALENT: &str = r#"%DEFINE{
  dbtbl = "urldb"
  %LIST " OR " L_INFO
  L_INFO = USE_URL ? "$(dbtbl).url LIKE '%$(SEARCH)%'" : ""
  L_INFO = USE_TITLE ? "$(dbtbl).title LIKE '%$(SEARCH)%'" : ""
  WHERELIST = ? "WHERE $(L_INFO)"
  D2 = ? "<br>$(V2)"
%}
%SQL{ SELECT url, $(DBFIELDS) FROM $(dbtbl) $(WHERELIST) ORDER BY title
%SQL_REPORT{<UL>
%ROW{<LI><A HREF="$(V1)">$(V1)</A> $(D2)
%}</UL>
%}
%}
%HTML_INPUT{<FORM METHOD="post" ACTION="/cgi-bin/db2www/u/report">
<INPUT NAME="SEARCH" VALUE="ib">
<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED>
<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED>
<SELECT NAME="DBFIELDS" MULTIPLE><OPTION VALUE="title" SELECTED>T</SELECT>
<INPUT TYPE="submit" VALUE="Go">
</FORM>%}
%HTML_REPORT{<H1>Result</H1>
%EXEC_SQL
%}"#;
}
