//! National language support (§5: "multi-byte character support for
//! international languages").
//!
//! Two concerns from the paper's practical-issues section:
//!
//! 1. **Multi-byte data.** All engine strings are UTF-8 `String`s end to
//!    end — substitution, SQL, and report rendering are tested with CJK and
//!    accented text (see the multibyte tests across the crates).
//! 2. **Localized gateway messages.** The engine's own user-visible strings
//!    (error banners, empty-result notices) come from a message catalog so a
//!    deployment can serve them in the end user's language, like the
//!    product's NLS builds did.

use std::fmt;

/// Languages shipped in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Language {
    /// English (default).
    #[default]
    English,
    /// French.
    French,
    /// German.
    German,
    /// Spanish.
    Spanish,
}

impl Language {
    /// Parse an HTTP `Accept-Language`-style tag (primary subtag only).
    pub fn from_tag(tag: &str) -> Option<Language> {
        let primary = tag.split(['-', '_', ';']).next()?.trim();
        match primary.to_ascii_lowercase().as_str() {
            "en" => Some(Language::English),
            "fr" => Some(Language::French),
            "de" => Some(Language::German),
            "es" => Some(Language::Spanish),
            _ => None,
        }
    }

    /// The IANA tag.
    pub fn tag(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::French => "fr",
            Language::German => "de",
            Language::Spanish => "es",
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tag())
    }
}

/// Keys of localizable engine messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// Prefix of the DBMS error banner, before "code: message".
    SqlErrorBanner,
    /// Shown when a query matched nothing and no %SQL_MESSAGE handles 100.
    NoRows,
    /// Error-page title.
    ErrorPageTitle,
    /// "macro not found" body.
    MacroNotFound,
    /// "bad command" body.
    BadCommand,
}

/// Look up a message in the catalog.
pub fn message(lang: Language, key: Message) -> &'static str {
    use Language::*;
    use Message::*;
    match (lang, key) {
        (English, SqlErrorBanner) => "SQL error",
        (French, SqlErrorBanner) => "Erreur SQL",
        (German, SqlErrorBanner) => "SQL-Fehler",
        (Spanish, SqlErrorBanner) => "Error de SQL",

        (English, NoRows) => "No rows matched the query.",
        (French, NoRows) => "Aucune ligne ne correspond à la requête.",
        (German, NoRows) => "Keine Zeilen entsprachen der Abfrage.",
        (Spanish, NoRows) => "Ninguna fila coincidió con la consulta.",

        (English, ErrorPageTitle) => "Error",
        (French, ErrorPageTitle) => "Erreur",
        (German, ErrorPageTitle) => "Fehler",
        (Spanish, ErrorPageTitle) => "Error",

        (English, MacroNotFound) => "no such macro",
        (French, MacroNotFound) => "macro introuvable",
        (German, MacroNotFound) => "Makro nicht gefunden",
        (Spanish, MacroNotFound) => "macro no encontrada",

        (English, BadCommand) => "unknown command: expected input or report",
        (French, BadCommand) => "commande inconnue : attendu input ou report",
        (German, BadCommand) => "unbekannter Befehl: input oder report erwartet",
        (Spanish, BadCommand) => "comando desconocido: se esperaba input o report",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trip() {
        for lang in [
            Language::English,
            Language::French,
            Language::German,
            Language::Spanish,
        ] {
            assert_eq!(Language::from_tag(lang.tag()), Some(lang));
        }
    }

    #[test]
    fn accept_language_style_tags() {
        assert_eq!(Language::from_tag("fr-CA"), Some(Language::French));
        assert_eq!(Language::from_tag("de_AT"), Some(Language::German));
        assert_eq!(Language::from_tag("en;q=0.8"), Some(Language::English));
        assert_eq!(Language::from_tag("zz"), None);
    }

    #[test]
    fn every_language_has_every_message() {
        // The match is exhaustive by construction; spot-check distinctness.
        assert_ne!(
            message(Language::English, Message::SqlErrorBanner),
            message(Language::German, Message::SqlErrorBanner)
        );
        assert!(message(Language::French, Message::NoRows).contains('à'));
    }
}
