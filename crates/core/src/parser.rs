//! Parser for the macro language (§3 of the paper).
//!
//! Grammar, reconstructed from the paper's syntax boxes:
//!
//! ```text
//! macro        := section*
//! section      := define | sql | html-input | html-report | comment
//! define       := %DEFINE define-stmt
//!               | %DEFINE{ define-stmt* %}
//! define-stmt  := %LIST value varname                       (list decl)
//!               | varname = value                           (simple)
//!               | varname = %EXEC value                     (executable)
//!               | varname = ? value                         (cond, 1-armed)
//!               | varname = testvar ? value : value         (cond, 2-armed)
//! value        := "single-line-string" | { multi-line-text %}
//! sql          := %SQL [(name)] { sql-text
//!                   [%SQL_REPORT{ header [%ROW{ text %}] footer %}]
//!                   [%SQL_MESSAGE{ message-entry* %}] %}
//! message-entry:= (integer | default) : value [: (continue | exit)]
//! html-input   := %HTML_INPUT{ text %}
//! html-report  := %HTML_REPORT{ (text | %EXEC_SQL[(operand)])* %}
//! comment      := %{ text %}
//! ```
//!
//! Keywords are case-insensitive; variable and section names are case-
//! sensitive. Section blocks may not nest, except the report/message/row
//! blocks inside a SQL section. The paper also allows `%HTML(INPUT)` /
//! `%HTML(REPORT)` spellings in the product; we accept the underscore forms
//! it uses throughout.

use crate::ast::*;
use crate::error::{MacroError, MacroResult};

/// Parse a macro file.
pub fn parse_macro(src: &str) -> MacroResult<MacroFile> {
    let _span = dbgw_obs::trace::span("parse_macro");
    dbgw_obs::metrics().macro_parses.inc();
    let mut cur = Cursor::new(src);
    let mut sections = Vec::new();
    let mut unnamed_exec_seen = false;
    loop {
        cur.skip_ws();
        if cur.at_end() {
            break;
        }
        if !cur.eat_char('%') {
            return Err(cur.err("expected a %-section keyword"));
        }
        if cur.eat_char('{') {
            // %{ comment %}
            let body = cur.take_until_close()?;
            sections.push(Section::Comment(body));
            continue;
        }
        let keyword = cur.take_keyword();
        match keyword.to_ascii_uppercase().as_str() {
            "DEFINE" => sections.push(Section::Define(parse_define(&mut cur)?)),
            "SQL" => {
                let sql = parse_sql(&mut cur)?;
                // "each SQL section may optionally be named with a *unique*
                // sql-section-name" (§3.2).
                if let Some(name) = &sql.name {
                    let duplicate = sections.iter().any(
                        |s| matches!(s, Section::Sql(prev) if prev.name.as_deref() == Some(name)),
                    );
                    if duplicate {
                        return Err(cur.err(format!("duplicate SQL section name {name}")));
                    }
                }
                sections.push(Section::Sql(sql));
            }
            "HTML_INPUT" => {
                cur.skip_ws();
                cur.expect_char('{')?;
                let body = cur.take_until_close()?;
                sections.push(Section::HtmlInput(body));
            }
            "HTML_REPORT" => {
                cur.skip_ws();
                cur.expect_char('{')?;
                let body = cur.take_until_close()?;
                let parts = split_report(&body);
                let unnamed = parts
                    .iter()
                    .filter(|p| matches!(p, ReportPart::ExecSqlAll))
                    .count();
                if unnamed > 1 || (unnamed == 1 && unnamed_exec_seen) {
                    return Err(
                        cur.err("at most one unnamed %EXEC_SQL is allowed in the HTML report form")
                    );
                }
                unnamed_exec_seen |= unnamed == 1;
                sections.push(Section::HtmlReport(parts));
            }
            other => {
                return Err(cur.err(format!("unknown section keyword %{other}")));
            }
        }
    }
    Ok(MacroFile { sections })
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> MacroError {
        MacroError::parse(message, self.line, self.col)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos += ch.len_utf8();
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(ch)
    }

    fn bump_n(&mut self, n_bytes: usize) {
        let target = self.pos + n_bytes;
        while self.pos < target {
            self.bump();
        }
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.bump();
        }
    }

    /// Skip spaces and tabs but not newlines.
    fn skip_inline_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|c| c == ' ' || c == '\t' || c == '\r')
        {
            self.bump();
        }
    }

    fn eat_char(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: char) -> MacroResult<()> {
        if self.eat_char(c) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {c:?}, found {:?}",
                self.peek()
                    .map(String::from)
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    /// Take an identifier-shaped keyword after `%`.
    fn take_keyword(&mut self) -> String {
        let mut out = String::new();
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            out.push(self.bump().unwrap());
        }
        out
    }

    /// Take a variable name: `[A-Za-z_][A-Za-z0-9_]*`.
    fn take_varname(&mut self) -> MacroResult<String> {
        let mut out = String::new();
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => out.push(self.bump().unwrap()),
            _ => return Err(self.err("expected a variable name")),
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            out.push(self.bump().unwrap());
        }
        Ok(out)
    }

    /// Take body text up to and including the matching `%}` terminator.
    fn take_until_close(&mut self) -> MacroResult<String> {
        let start = self.pos;
        loop {
            let rest = self.rest();
            let Some(offset) = rest.find('%') else {
                return Err(self.err("section is missing its %} terminator"));
            };
            if rest[offset..].starts_with("%}") {
                let body = self.src[start..self.pos + offset].to_owned();
                self.bump_n(offset + 2);
                return Ok(body);
            }
            self.bump_n(offset + 1);
        }
    }

    /// Take a *value*: `"..."` on one line or `{ ... %}` over multiple lines.
    fn take_value(&mut self) -> MacroResult<String> {
        self.skip_ws();
        match self.peek() {
            Some('"') => {
                self.bump();
                let mut out = String::new();
                loop {
                    match self.bump() {
                        Some('"') => return Ok(out),
                        Some('\n') => {
                            return Err(self.err("quoted value string may not span lines"))
                        }
                        Some(c) => out.push(c),
                        None => return Err(self.err("unterminated quoted value string")),
                    }
                }
            }
            Some('{') => {
                self.bump();
                self.take_until_close()
            }
            _ => Err(self.err("expected a value: \"string\" or { block %}")),
        }
    }
}

// ---------------------------------------------------------------------------
// %DEFINE
// ---------------------------------------------------------------------------

fn parse_define(cur: &mut Cursor) -> MacroResult<Vec<DefineStatement>> {
    cur.skip_inline_ws();
    if cur.eat_char('{') {
        let mut stmts = Vec::new();
        loop {
            cur.skip_ws();
            if cur.rest().starts_with("%}") {
                cur.bump_n(2);
                return Ok(stmts);
            }
            if cur.at_end() {
                return Err(cur.err("%DEFINE{ block is missing its %} terminator"));
            }
            stmts.push(parse_define_statement(cur)?);
        }
    }
    // Line form: exactly one statement.
    cur.skip_ws();
    Ok(vec![parse_define_statement(cur)?])
}

fn parse_define_statement(cur: &mut Cursor) -> MacroResult<DefineStatement> {
    if cur.eat_char('%') {
        let kw = cur.take_keyword();
        if !kw.eq_ignore_ascii_case("LIST") {
            return Err(cur.err(format!("unexpected %{kw} in a DEFINE section")));
        }
        let separator = cur.take_value()?;
        cur.skip_ws();
        let name = cur.take_varname()?;
        return Ok(DefineStatement::ListDecl { name, separator });
    }
    let name = cur.take_varname()?;
    cur.skip_ws();
    cur.expect_char('=')?;
    cur.skip_ws();
    match cur.peek() {
        Some('"') | Some('{') => {
            let value = cur.take_value()?;
            Ok(DefineStatement::Simple { name, value })
        }
        Some('?') => {
            cur.bump();
            let value = cur.take_value()?;
            Ok(DefineStatement::CondUnary { name, value })
        }
        Some('%') => {
            cur.bump();
            let kw = cur.take_keyword();
            if !kw.eq_ignore_ascii_case("EXEC") {
                return Err(cur.err(format!("unexpected %{kw} after = in a DEFINE")));
            }
            let command = cur.take_value()?;
            Ok(DefineStatement::Exec { name, command })
        }
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            let test = cur.take_varname()?;
            cur.skip_ws();
            cur.expect_char('?')?;
            let then_value = cur.take_value()?;
            cur.skip_ws();
            cur.expect_char(':')?;
            let else_value = cur.take_value()?;
            Ok(DefineStatement::CondBinary {
                name,
                test,
                then_value,
                else_value,
            })
        }
        _ => Err(cur.err("expected a value, '?', %EXEC, or a test variable after =")),
    }
}

// ---------------------------------------------------------------------------
// %SQL
// ---------------------------------------------------------------------------

fn parse_sql(cur: &mut Cursor) -> MacroResult<SqlSection> {
    cur.skip_inline_ws();
    let name = if cur.eat_char('(') {
        cur.skip_ws();
        let n = cur.take_varname()?;
        cur.skip_ws();
        cur.expect_char(')')?;
        Some(n)
    } else {
        None
    };
    cur.skip_inline_ws();
    if cur.peek() != Some('{') {
        // Line format (§3.2): the rest of the line is the SQL command; no
        // report/message blocks are possible in this form.
        let mut command = String::new();
        while let Some(c) = cur.peek() {
            if c == '\n' {
                break;
            }
            command.push(cur.bump().unwrap());
        }
        if command.trim().is_empty() {
            return Err(cur.err("line-format %SQL needs a statement on the same line"));
        }
        return Ok(SqlSection {
            name,
            command: command.trim().to_owned(),
            report: None,
            messages: Vec::new(),
        });
    }
    cur.expect_char('{')?;

    // The SQL command runs until %SQL_REPORT{ / %SQL_MESSAGE{ / %}.
    let mut command = String::new();
    let mut report = None;
    let mut messages = Vec::new();
    loop {
        let rest = cur.rest();
        let Some(offset) = rest.find('%') else {
            return Err(cur.err("%SQL section is missing its %} terminator"));
        };
        command.push_str(&rest[..offset]);
        cur.bump_n(offset);
        let rest = cur.rest();
        if rest.starts_with("%}") {
            cur.bump_n(2);
            break;
        }
        if starts_with_kw(rest, "%SQL_REPORT") {
            cur.bump_n("%SQL_REPORT".len());
            cur.skip_ws();
            cur.expect_char('{')?;
            if report.is_some() {
                return Err(cur.err("a SQL section may have only one %SQL_REPORT block"));
            }
            report = Some(parse_sql_report(cur)?);
            continue;
        }
        if starts_with_kw(rest, "%SQL_MESSAGE") {
            cur.bump_n("%SQL_MESSAGE".len());
            cur.skip_ws();
            cur.expect_char('{')?;
            messages = parse_sql_messages(cur)?;
            continue;
        }
        // A lone % inside the SQL text (e.g. LIKE '%x%').
        command.push('%');
        cur.bump();
    }
    Ok(SqlSection {
        name,
        command: command.trim().to_owned(),
        report,
        messages,
    })
}

fn starts_with_kw(rest: &str, kw: &str) -> bool {
    rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw)
}

fn parse_sql_report(cur: &mut Cursor) -> MacroResult<SqlReport> {
    let mut header = String::new();
    loop {
        let rest = cur.rest();
        let Some(offset) = rest.find('%') else {
            return Err(cur.err("%SQL_REPORT block is missing its %} terminator"));
        };
        header.push_str(&rest[..offset]);
        cur.bump_n(offset);
        let rest = cur.rest();
        if rest.starts_with("%}") {
            cur.bump_n(2);
            // No %ROW block at all.
            return Ok(SqlReport {
                header,
                row: None,
                footer: String::new(),
            });
        }
        if starts_with_kw(rest, "%ROW") {
            cur.bump_n("%ROW".len());
            cur.skip_ws();
            cur.expect_char('{')?;
            let row = cur.take_until_close()?;
            let footer = cur.take_until_close()?;
            return Ok(SqlReport {
                header,
                row: Some(row),
                footer,
            });
        }
        header.push('%');
        cur.bump();
    }
}

fn parse_sql_messages(cur: &mut Cursor) -> MacroResult<Vec<SqlMessage>> {
    let mut entries = Vec::new();
    loop {
        cur.skip_ws();
        if cur.rest().starts_with("%}") {
            cur.bump_n(2);
            return Ok(entries);
        }
        if cur.at_end() {
            return Err(cur.err("%SQL_MESSAGE block is missing its %} terminator"));
        }
        // code : "text" [: action]
        let code = if cur.rest().len() >= 7 && cur.rest()[..7].eq_ignore_ascii_case("default") {
            cur.bump_n(7);
            None
        } else {
            let mut digits = String::new();
            if cur.peek() == Some('+') || cur.peek() == Some('-') {
                digits.push(cur.bump().unwrap());
            }
            while cur.peek().is_some_and(|c| c.is_ascii_digit()) {
                digits.push(cur.bump().unwrap());
            }
            let n: i32 = digits
                .parse()
                .map_err(|_| cur.err("expected an SQLCODE integer or 'default'"))?;
            Some(n)
        };
        cur.skip_ws();
        cur.expect_char(':')?;
        let text = cur.take_value()?;
        cur.skip_inline_ws();
        let action = if cur.eat_char(':') {
            cur.skip_ws();
            let word = cur.take_keyword();
            match word.to_ascii_uppercase().as_str() {
                "CONTINUE" => MessageAction::Continue,
                "EXIT" => MessageAction::Exit,
                other => return Err(cur.err(format!("unknown message action {other}"))),
            }
        } else {
            MessageAction::Exit
        };
        entries.push(SqlMessage { code, text, action });
    }
}

// ---------------------------------------------------------------------------
// %HTML_REPORT splitting
// ---------------------------------------------------------------------------

/// Split a report body into HTML runs and `%EXEC_SQL` directives.
fn split_report(body: &str) -> Vec<ReportPart> {
    const KW: &str = "%EXEC_SQL";
    let mut parts = Vec::new();
    let mut rest = body;
    loop {
        // Case-insensitive search for %EXEC_SQL.
        let found = rest
            .char_indices()
            .find(|&(i, c)| c == '%' && starts_with_kw(&rest[i..], KW));
        let Some((at, _)) = found else {
            if !rest.is_empty() {
                parts.push(ReportPart::Html(rest.to_owned()));
            }
            return parts;
        };
        if at > 0 {
            parts.push(ReportPart::Html(rest[..at].to_owned()));
        }
        rest = &rest[at + KW.len()..];
        // Optional (operand).
        let trimmed_start = rest.len() - rest.trim_start_matches([' ', '\t']).len();
        let after_ws = &rest[trimmed_start..];
        if let Some(stripped) = after_ws.strip_prefix('(') {
            // The operand may itself contain $(var) references, so match
            // parentheses with a depth counter.
            let mut depth = 1usize;
            let mut end = None;
            for (i, c) in stripped.char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(i);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if let Some(end) = end {
                parts.push(ReportPart::ExecSqlNamed(stripped[..end].trim().to_owned()));
                rest = &stripped[end + 1..];
                continue;
            }
        }
        parts.push(ReportPart::ExecSqlAll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_define_line_and_block() {
        let m = parse_macro("%DEFINE a = \"hello\"\n%define{ b = \"x\" c = \"y\" %}").unwrap();
        assert_eq!(m.sections.len(), 2);
        let Section::Define(stmts) = &m.sections[1] else {
            panic!()
        };
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn parses_multiline_value() {
        let m = parse_macro("%DEFINE{ a = {line one\nline two %} %}").unwrap();
        let Section::Define(stmts) = &m.sections[0] else {
            panic!()
        };
        assert_eq!(
            stmts[0],
            DefineStatement::Simple {
                name: "a".into(),
                value: "line one\nline two ".into()
            }
        );
    }

    #[test]
    fn parses_conditionals() {
        let src = r#"%DEFINE{
            where_list = ? "custid = $(cust_inp)"
            where_clause = USE_URL ? "WHERE $(where_list)" : ""
        %}"#;
        let m = parse_macro(src).unwrap();
        let Section::Define(stmts) = &m.sections[0] else {
            panic!()
        };
        assert_eq!(
            stmts[0],
            DefineStatement::CondUnary {
                name: "where_list".into(),
                value: "custid = $(cust_inp)".into()
            }
        );
        assert_eq!(
            stmts[1],
            DefineStatement::CondBinary {
                name: "where_clause".into(),
                test: "USE_URL".into(),
                then_value: "WHERE $(where_list)".into(),
                else_value: String::new(),
            }
        );
    }

    #[test]
    fn parses_list_and_exec() {
        let src = "%DEFINE{ %LIST \" OR \" L_INFO\n err = %EXEC \"notify $(user)\" %}";
        let m = parse_macro(src).unwrap();
        let Section::Define(stmts) = &m.sections[0] else {
            panic!()
        };
        assert_eq!(
            stmts[0],
            DefineStatement::ListDecl {
                name: "L_INFO".into(),
                separator: " OR ".into()
            }
        );
        assert_eq!(
            stmts[1],
            DefineStatement::Exec {
                name: "err".into(),
                command: "notify $(user)".into()
            }
        );
    }

    #[test]
    fn parses_sql_with_report_and_row() {
        let src = r#"%SQL{
SELECT url, title FROM $(dbtbl) WHERE title LIKE '%$(SEARCH)%'
%SQL_REPORT{
<UL>
%ROW{ <LI><A HREF="$(V1)">$(V2)</A> %}
</UL>
%}
%}"#;
        let m = parse_macro(src).unwrap();
        let Section::Sql(sql) = &m.sections[0] else {
            panic!()
        };
        assert!(sql.command.starts_with("SELECT url"));
        assert!(
            sql.command.contains("'%$(SEARCH)%'"),
            "percent kept: {}",
            sql.command
        );
        let report = sql.report.as_ref().unwrap();
        assert!(report.header.contains("<UL>"));
        assert_eq!(
            report.row.as_deref(),
            Some(" <LI><A HREF=\"$(V1)\">$(V2)</A> ")
        );
        assert!(report.footer.contains("</UL>"));
    }

    #[test]
    fn parses_named_sql_section() {
        let m = parse_macro("%SQL(fetch){ SELECT 1 %}").unwrap();
        let Section::Sql(sql) = &m.sections[0] else {
            panic!()
        };
        assert_eq!(sql.name.as_deref(), Some("fetch"));
        assert_eq!(sql.command, "SELECT 1");
    }

    #[test]
    fn parses_line_format_sql() {
        // §3.2: "A SQL section can be of a line format or a block format".
        let m = parse_macro(
            "%SQL SELECT url FROM urldb WHERE t LIKE '%$(S)%'\n\
             %SQL(named) DELETE FROM t\n\
             %HTML_REPORT{%EXEC_SQL%}",
        )
        .unwrap();
        let sqls: Vec<&SqlSection> = m.sql_sections().collect();
        assert_eq!(sqls.len(), 2);
        assert_eq!(
            sqls[0].command,
            "SELECT url FROM urldb WHERE t LIKE '%$(S)%'"
        );
        assert_eq!(sqls[1].name.as_deref(), Some("named"));
        assert_eq!(sqls[1].command, "DELETE FROM t");
        assert!(sqls[0].report.is_none());
    }

    #[test]
    fn empty_line_format_sql_rejected() {
        assert!(parse_macro("%SQL\n%HTML_REPORT{x%}").is_err());
    }

    #[test]
    fn parses_sql_message_block() {
        let src = r#"%SQL{
DELETE FROM t WHERE id = $(ID)
%SQL_MESSAGE{
  100 : "nothing to delete" : continue
  -204 : {table is missing %}
  default : "something failed"
%}
%}"#;
        let m = parse_macro(src).unwrap();
        let Section::Sql(sql) = &m.sections[0] else {
            panic!()
        };
        assert_eq!(sql.messages.len(), 3);
        assert_eq!(sql.messages[0].code, Some(100));
        assert_eq!(sql.messages[0].action, MessageAction::Continue);
        assert_eq!(sql.messages[1].code, Some(-204));
        assert_eq!(sql.messages[1].action, MessageAction::Exit);
        assert_eq!(sql.messages[2].code, None);
    }

    #[test]
    fn parses_html_report_with_exec_directives() {
        let src = "%HTML_REPORT{\n<H1>Result</H1>\n%EXEC_SQL\n<HR>\n%EXEC_SQL(next)\n%}";
        let m = parse_macro(src).unwrap();
        let Section::HtmlReport(parts) = &m.sections[0] else {
            panic!()
        };
        assert_eq!(parts.len(), 5); // html, exec, html, exec(next), trailing newline
        assert!(matches!(&parts[0], ReportPart::Html(h) if h.contains("<H1>")));
        assert_eq!(parts[1], ReportPart::ExecSqlAll);
        assert_eq!(parts[3], ReportPart::ExecSqlNamed("next".into()));
    }

    #[test]
    fn exec_sql_with_variable_operand() {
        let src = "%HTML_REPORT{ %EXEC_SQL($(sqlcmd)) %}";
        let m = parse_macro(src).unwrap();
        let Section::HtmlReport(parts) = &m.sections[0] else {
            panic!()
        };
        assert!(parts
            .iter()
            .any(|p| *p == ReportPart::ExecSqlNamed("$(sqlcmd)".into())));
    }

    #[test]
    fn two_unnamed_exec_sql_rejected() {
        let src = "%HTML_REPORT{ %EXEC_SQL %EXEC_SQL %}";
        assert!(parse_macro(src).is_err());
    }

    #[test]
    fn comment_section() {
        let m = parse_macro("%{ this is ignored %}%DEFINE a = \"1\"").unwrap();
        assert!(matches!(&m.sections[0], Section::Comment(c) if c.contains("ignored")));
    }

    #[test]
    fn unterminated_block_errors_with_location() {
        let err = parse_macro("%HTML_INPUT{ no close").unwrap_err();
        assert!(matches!(err, MacroError::Parse { .. }));
    }

    #[test]
    fn unknown_keyword_rejected() {
        assert!(parse_macro("%BOGUS{ x %}").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_macro("%html_input{ hi %}").is_ok());
        assert!(parse_macro("%Define a = \"1\"").is_ok());
    }

    #[test]
    fn quoted_value_may_not_span_lines() {
        assert!(parse_macro("%DEFINE a = \"one\ntwo\"").is_err());
    }

    #[test]
    fn percent_inside_html_passes_through() {
        let m = parse_macro("%HTML_INPUT{ 50% off! %}").unwrap();
        let Section::HtmlInput(body) = &m.sections[0] else {
            panic!()
        };
        assert_eq!(body, " 50% off! ");
    }
}
