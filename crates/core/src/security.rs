//! Security helpers (§5 of the paper).
//!
//! The original system "works with the DB2 database, the Web server, and the
//! firewall products to provide secure data access" — i.e. it delegated.
//! Three gaps still had to be handled at the gateway layer, and this module
//! provides the corresponding helpers:
//!
//! * **SQL string literals built from user input.** The macro language
//!   splices `$(SEARCH)` textually into SQL; a value containing `'` changes
//!   the statement (today we call this SQL injection). [`escape_sql_literal`]
//!   doubles quotes so a value is always one literal.
//! * **Macro-file path traversal.** The `{macro-file}` URL component must not
//!   escape the macro directory; [`safe_macro_name`] validates it.
//! * **Hidden-variable tampering.** The `$$(name)` escape hides variable
//!   *names* from end users (Appendix A); nothing hides values, so
//!   applications must treat all inputs as untrusted — see `DESIGN.md`.

/// Escape a string for inclusion inside a single-quoted SQL literal by
/// doubling `'` characters.
///
/// ```
/// use dbgw_core::security::escape_sql_literal;
/// assert_eq!(escape_sql_literal("O'Leary"), "O''Leary");
/// assert_eq!(escape_sql_literal("plain"), "plain");
/// ```
pub fn escape_sql_literal(value: &str) -> String {
    if !value.contains('\'') {
        return value.to_owned();
    }
    value.replace('\'', "''")
}

/// Validate a macro-file name from a URL: a single path component, no parent
/// references, only `[A-Za-z0-9._-]`, not starting with a dot, non-empty.
///
/// ```
/// use dbgw_core::security::safe_macro_name;
/// assert!(safe_macro_name("urlquery.d2w"));
/// assert!(!safe_macro_name("../etc/passwd"));
/// assert!(!safe_macro_name(".hidden"));
/// assert!(!safe_macro_name("a/b.d2w"));
/// ```
pub fn safe_macro_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-')
        && !name.contains("..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_escape_doubles_quotes() {
        assert_eq!(escape_sql_literal("a'b'c"), "a''b''c");
        assert_eq!(escape_sql_literal(""), "");
        assert_eq!(escape_sql_literal("''"), "''''");
    }

    #[test]
    fn escaped_literal_survives_round_trip() {
        // Embedding the escaped value in a statement yields exactly one SQL
        // string literal carrying the original (hostile) text.
        let hostile = "x' OR '1'='1";
        let stmt = format!(
            "SELECT a FROM t WHERE a = '{}'",
            escape_sql_literal(hostile)
        );
        let tokens = minisql::token::tokenize(&stmt).unwrap();
        let strings: Vec<&str> = tokens
            .iter()
            .filter_map(|t| match &t.kind {
                minisql::token::TokenKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec![hostile]);
    }

    #[test]
    fn macro_name_validation() {
        assert!(safe_macro_name("guestbook.d2w"));
        assert!(safe_macro_name("order_entry-2.d2w"));
        assert!(!safe_macro_name(""));
        assert!(!safe_macro_name("a b"));
        assert!(!safe_macro_name("a..b"));
        assert!(!safe_macro_name("dir/mac.d2w"));
        assert!(!safe_macro_name("..\\win"));
    }
}
