//! Where rendered page text goes.
//!
//! The engine historically accumulated every page into one `String` and the
//! gateway shipped it whole; a 100k-row report therefore paid O(full render)
//! before the first byte left the process. `PageSink` abstracts the output so
//! the same render code can either collect into a `String` (library use,
//! CGI, cached/ETagged responses) or flush incrementally into an HTTP
//! chunked-transfer writer (the evented server's streaming path).
//!
//! A sink push is *fallible*: a streaming sink whose client hung up reports a
//! [`CancelReason`], which the engine surfaces as SQLCODE −952 cancellation —
//! the same cooperative-cancellation path deadlines and budgets use — so a
//! disconnected browser stops the executor instead of rendering into the
//! void.

use dbgw_obs::CancelReason;

/// A destination for rendered page text.
pub trait PageSink {
    /// Append a piece of the page. Errors mean the output is dead (client
    /// disconnected mid-stream) and rendering should stop.
    fn push(&mut self, text: &str) -> Result<(), CancelReason>;
}

/// The buffered sink: plain accumulation, never fails.
impl PageSink for String {
    fn push(&mut self, text: &str) -> Result<(), CancelReason> {
        self.push_str(text);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_sink_accumulates() {
        let mut s = String::new();
        PageSink::push(&mut s, "a").unwrap();
        PageSink::push(&mut s, "b").unwrap();
        assert_eq!(s, "ab");
    }
}
