//! The cross-language variable substitution engine (§3, §4.3).
//!
//! This is the paper's core mechanism. Properties implemented here:
//!
//! * **Lazy evaluation** — right-hand sides are stored raw and only resolved
//!   when a variable is referenced from an HTML input/report section (or a
//!   SQL command being executed); see the paper's `One Two` example (§4.3.1).
//! * **Recursive dereferencing** — `$(a)` inside a value string evaluates
//!   `a`, which may reference further variables.
//! * **`$$(name)` escape** — yields the literal text `$(name)` (§3.1.1).
//! * **Undefined = null = empty string** — never an error (§4.1).
//! * **Cycle detection** — circular references are an error (§3.1.1).
//! * **Priority** — system report variables ≻ HTML input variables ≻ macro
//!   DEFINEs (§4.3).
//! * **List variables** — multi-valued inputs and multiply-assigned `%LIST`
//!   variables concatenate their *non-null* values with the (itself
//!   substitutable) separator (§3.1.3).
//! * **Conditional variables** — two-armed (`test ?`) and one-armed
//!   (`= ?`, null if any directly referenced variable is null) (§3.1.2).
//! * **Executable variables** — the command runs at *each* reference; its
//!   exit code becomes the value, success becoming null (§3.1.4).

use crate::env::{Assign, Env};
use crate::error::{MacroError, MacroResult};
use crate::exec::CommandRunner;
use dbgw_obs::RequestCtx;
use std::sync::Arc;

/// Hard limit on variable-chain depth; cycles are caught exactly, this guards
/// only pathological acyclic chains built from adversarial CGI input.
const MAX_DEPTH: usize = 100;

/// A substitution session over one environment.
///
/// Holds the evaluation stack for cycle detection; create one per rendering
/// pass (they are cheap).
pub struct Evaluator<'a> {
    env: &'a Env,
    runner: &'a dyn CommandRunner,
    stack: Vec<String>,
    ctx: Arc<RequestCtx>,
}

impl<'a> Evaluator<'a> {
    /// New session with no request context (unbounded).
    pub fn new(env: &'a Env, runner: &'a dyn CommandRunner) -> Evaluator<'a> {
        Evaluator::with_ctx(env, runner, RequestCtx::unbounded())
    }

    /// New session polling `ctx` at every variable dereference, so a runaway
    /// macro (deep lazy chains, executable variables) stops at the request
    /// deadline instead of spinning a worker forever.
    pub fn with_ctx(
        env: &'a Env,
        runner: &'a dyn CommandRunner,
        ctx: Arc<RequestCtx>,
    ) -> Evaluator<'a> {
        Evaluator {
            env,
            runner,
            stack: Vec::new(),
            ctx,
        }
    }

    /// Substitute every `$(var)` / `$$(var)` pattern in `raw`.
    pub fn substitute(&mut self, raw: &str) -> MacroResult<String> {
        Ok(self.substitute_tracking(raw)?.0)
    }

    /// Substitute, also reporting whether any *directly referenced* variable
    /// evaluated to null — the trigger for one-armed conditional nulling.
    pub fn substitute_tracking(&mut self, raw: &str) -> MacroResult<(String, bool)> {
        // Nested passes (variable values referencing further variables) run
        // with a non-empty evaluation stack; only top-level passes count as
        // one "substitution" and open a trace span, so the metric and the
        // trace reflect rendering units, not recursion depth.
        let _span = if self.stack.is_empty() {
            dbgw_obs::metrics().substitutions.inc();
            Some(dbgw_obs::trace::span("substitute"))
        } else {
            None
        };
        let mut out = String::with_capacity(raw.len());
        let mut saw_null = false;
        let mut rest = raw;
        while let Some(at) = rest.find('$') {
            out.push_str(&rest[..at]);
            let tail = &rest[at..];
            if let Some(after) = tail.strip_prefix("$$(") {
                // Escape: $$(name) -> literal $(name)
                match after.find(')') {
                    Some(end) => {
                        out.push_str("$(");
                        out.push_str(&after[..=end]);
                        rest = &after[end + 1..];
                    }
                    None => {
                        out.push_str(tail);
                        rest = "";
                    }
                }
                continue;
            }
            if let Some(after) = tail.strip_prefix("$(") {
                if let Some((name, remainder)) = take_name(after) {
                    let value = self.value_of(name)?;
                    if value.is_empty() {
                        saw_null = true;
                    }
                    out.push_str(&value);
                    rest = remainder;
                    continue;
                }
            }
            // A lone '$' (or malformed reference): literal.
            out.push('$');
            rest = &tail[1..];
        }
        out.push_str(rest);
        Ok((out, saw_null))
    }

    /// The run-time value of a variable; the empty string *is* null.
    pub fn value_of(&mut self, name: &str) -> MacroResult<String> {
        // Cancellation point: every dereference (including each step of a
        // recursive chain) polls the request context.
        self.ctx
            .check()
            .map_err(|reason| MacroError::Cancelled { reason })?;
        // 1. System report variables (literal, no recursion, case-insensitive).
        if let Some(v) = self.env.system(name) {
            return Ok(v.to_owned());
        }
        if self.stack.iter().any(|n| n == name) {
            return Err(MacroError::CircularReference {
                variable: name.to_owned(),
                chain: self.stack.clone(),
            });
        }
        if self.stack.len() >= MAX_DEPTH {
            return Err(MacroError::DepthExceeded {
                variable: name.to_owned(),
            });
        }
        self.stack.push(name.to_owned());
        let result = self.value_uncached(name);
        self.stack.pop();
        result
    }

    /// Is the variable defined *and* non-null right now?
    pub fn is_nonnull(&mut self, name: &str) -> MacroResult<bool> {
        Ok(!self.value_of(name)?.is_empty())
    }

    fn value_uncached(&mut self, name: &str) -> MacroResult<String> {
        // 2. HTML input variables override macro DEFINEs (§4.3).
        if let Some(values) = self.env.input(name) {
            let values = values.to_vec();
            let sep_raw = self.env.separator_of(name).unwrap_or(",").to_owned();
            let separator = self.substitute(&sep_raw)?;
            let mut parts = Vec::with_capacity(values.len());
            for raw in &values {
                // Input values are parsed like simple assignments (§4.3.2).
                let v = self.substitute(raw)?;
                if !v.is_empty() {
                    parts.push(v);
                }
            }
            return Ok(parts.join(&separator));
        }
        // 3. Macro DEFINEs.
        let Some(entry) = self.env.define(name) else {
            // 4. Undefined evaluates to null, never an error (§4.1).
            return Ok(String::new());
        };
        let entry = entry.clone();
        if entry.separator.is_some() {
            let separator = self.substitute(entry.separator.as_deref().unwrap_or(","))?;
            let mut parts = Vec::with_capacity(entry.assigns.len());
            for assign in &entry.assigns {
                // "The list variable evaluation is intelligent enough to add
                // delimiters only if the individual value strings are not
                // null" (§3.1.3).
                let v = self.eval_assign(name, assign)?;
                if !v.is_empty() {
                    parts.push(v);
                }
            }
            return Ok(parts.join(&separator));
        }
        match entry.assigns.last() {
            Some(assign) => self.eval_assign(name, assign),
            None => Ok(String::new()), // %LIST-declared but never assigned
        }
    }

    fn eval_assign(&mut self, name: &str, assign: &Assign) -> MacroResult<String> {
        match assign {
            Assign::Simple(raw) => self.substitute(raw),
            Assign::CondBinary {
                test,
                then_value,
                else_value,
            } => {
                if self.is_nonnull(test)? {
                    self.substitute(then_value)
                } else {
                    self.substitute(else_value)
                }
            }
            Assign::CondUnary(raw) => {
                let (value, saw_null) = self.substitute_tracking(raw)?;
                if saw_null {
                    Ok(String::new())
                } else {
                    Ok(value)
                }
            }
            Assign::Exec(raw) => {
                let command = self.substitute(raw)?;
                match self.runner.run(&command) {
                    Ok(0) => Ok(String::new()), // success == null (§3.1.4)
                    Ok(code) => Ok(code.to_string()),
                    Err(message) => Err(MacroError::Exec {
                        variable: name.to_owned(),
                        message,
                    }),
                }
            }
        }
    }
}

/// Split `name)rest` into the variable name and the text after `)`.
fn take_name(after_paren: &str) -> Option<(&str, &str)> {
    let mut chars = after_paren.char_indices();
    let (_, first) = chars.next()?;
    if !(first.is_ascii_alphabetic() || first == '_') {
        return None;
    }
    for (i, c) in chars {
        if c == ')' {
            return Some((&after_paren[..i], &after_paren[i + 1..]));
        }
        if !(c.is_ascii_alphanumeric() || c == '_') {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DefineStatement;
    use crate::exec::{DenyRunner, StaticRunner};
    use std::collections::HashMap;

    fn env_of(stmts: &[DefineStatement]) -> Env {
        let mut env = Env::new();
        for s in stmts {
            env.apply(s);
        }
        env
    }

    fn simple(name: &str, value: &str) -> DefineStatement {
        DefineStatement::Simple {
            name: name.into(),
            value: value.into(),
        }
    }

    #[test]
    fn basic_reference_and_undefined() {
        let env = env_of(&[simple("a", "hello")]);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.substitute("[$(a)][$(missing)]").unwrap(), "[hello][]");
    }

    #[test]
    fn recursive_dereference() {
        // %DEFINE var1 = "$(var2).abc" from §3.1.1.
        let env = env_of(&[simple("var1", "$(var2).abc"), simple("var2", "xyz")]);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("var1").unwrap(), "xyz.abc");
    }

    #[test]
    fn dollar_dollar_escape() {
        // %DEFINE a = "$$(b)" evaluates to the string "$(b)" (§3.1.1).
        let env = env_of(&[simple("a", "$$(b)"), simple("b", "SHOULD NOT APPEAR")]);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("a").unwrap(), "$(b)");
    }

    #[test]
    fn lone_dollar_is_literal() {
        let env = env_of(&[]);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(
            ev.substitute("cost: $5 and $ (x) and $()").unwrap(),
            "cost: $5 and $ (x) and $()"
        );
    }

    #[test]
    fn circular_reference_is_error() {
        let env = env_of(&[simple("a", "$(b)"), simple("b", "$(a)")]);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        let err = ev.value_of("a").unwrap_err();
        assert!(
            matches!(err, MacroError::CircularReference { ref variable, .. } if variable == "a")
        );
    }

    #[test]
    fn self_reference_is_error() {
        let env = env_of(&[simple("a", "x$(a)")]);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert!(ev.value_of("a").is_err());
    }

    #[test]
    fn case_sensitive_names() {
        let env = env_of(&[simple("Var", "upper")]);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("Var").unwrap(), "upper");
        assert_eq!(ev.value_of("var").unwrap(), "");
    }

    #[test]
    fn inputs_override_defines() {
        let mut env = env_of(&[simple("SEARCH", "default")]);
        env.push_input("SEARCH", "user-typed");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("SEARCH").unwrap(), "user-typed");
    }

    #[test]
    fn system_frames_override_everything() {
        let mut env = env_of(&[simple("V1", "define")]);
        env.push_input("V1", "input");
        env.push_frame(HashMap::from([("V1".to_owned(), "system".to_owned())]));
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("V1").unwrap(), "system");
        assert_eq!(ev.value_of("v1").unwrap(), "system"); // case-insensitive
    }

    #[test]
    fn multi_valued_input_is_comma_list() {
        // §2.2: DBFIELD selected twice.
        let mut env = Env::new();
        env.push_input("DBFIELD", "title");
        env.push_input("DBFIELD", "desc");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("DBFIELD").unwrap(), "title,desc");
    }

    #[test]
    fn list_separator_overrides_input_join() {
        let mut env = env_of(&[DefineStatement::ListDecl {
            name: "DBFIELD".into(),
            separator: " | ".into(),
        }]);
        env.push_input("DBFIELD", "title");
        env.push_input("DBFIELD", "desc");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("DBFIELD").unwrap(), "title | desc");
    }

    #[test]
    fn empty_input_values_skipped_in_lists() {
        let mut env = Env::new();
        env.push_input("F", "a");
        env.push_input("F", "");
        env.push_input("F", "b");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("F").unwrap(), "a,b");
    }

    #[test]
    fn paper_where_clause_example_full() {
        // The §3.1.3 worked example, all three input scenarios.
        let defs = [
            DefineStatement::ListDecl {
                name: "where_list".into(),
                separator: " AND ".into(),
            },
            DefineStatement::CondUnary {
                name: "where_list".into(),
                value: "custid = $(cust_inp)".into(),
            },
            DefineStatement::CondUnary {
                name: "where_list".into(),
                value: "product_name LIKE '$(prod_inp)%'".into(),
            },
            DefineStatement::CondUnary {
                name: "where_clause".into(),
                value: "WHERE $(where_list)".into(),
            },
        ];
        // Scenario 1: both inputs present.
        let mut env = env_of(&defs);
        env.push_input("cust_inp", "10100");
        env.push_input("prod_inp", "bikes");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(
            ev.value_of("where_clause").unwrap(),
            "WHERE custid = 10100 AND product_name LIKE 'bikes%'"
        );
        // Scenario 2: cust_inp empty.
        let mut env = env_of(&defs);
        env.push_input("cust_inp", "");
        env.push_input("prod_inp", "bikes");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(
            ev.value_of("where_clause").unwrap(),
            "WHERE product_name LIKE 'bikes%'"
        );
        // Scenario 3: both null -> no WHERE clause at all.
        let env = env_of(&defs);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("where_clause").unwrap(), "");
    }

    #[test]
    fn cond_binary_arms() {
        let defs = [DefineStatement::CondBinary {
            name: "flag".into(),
            test: "USE_URL".into(),
            then_value: "url LIKE '%$(S)%'".into(),
            else_value: "".into(),
        }];
        let mut env = env_of(&defs);
        env.push_input("USE_URL", "yes");
        env.push_input("S", "ib");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("flag").unwrap(), "url LIKE '%ib%'");
        // Unchecked box: USE_URL sent as "" (or absent) -> else arm.
        let mut env = env_of(&defs);
        env.push_input("USE_URL", "");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("flag").unwrap(), "");
    }

    #[test]
    fn exec_variable_success_is_null_failure_is_code() {
        let runner = StaticRunner::new().with("check ok", 0).with("check bad", 4);
        let env = env_of(&[
            DefineStatement::Exec {
                name: "ok".into(),
                command: "check ok".into(),
            },
            DefineStatement::Exec {
                name: "bad".into(),
                command: "check bad".into(),
            },
        ]);
        let mut ev = Evaluator::new(&env, &runner);
        assert_eq!(ev.value_of("ok").unwrap(), "");
        assert_eq!(ev.value_of("bad").unwrap(), "4");
    }

    #[test]
    fn exec_launch_failure_is_error() {
        let env = env_of(&[DefineStatement::Exec {
            name: "x".into(),
            command: "anything".into(),
        }]);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert!(matches!(
            ev.value_of("x").unwrap_err(),
            MacroError::Exec { .. }
        ));
    }

    #[test]
    fn exec_command_is_substituted_per_reference() {
        let runner = StaticRunner::new().with("notify ada", 1);
        let mut env = env_of(&[DefineStatement::Exec {
            name: "e".into(),
            command: "notify $(user)".into(),
        }]);
        env.push_input("user", "ada");
        let mut ev = Evaluator::new(&env, &runner);
        assert_eq!(ev.value_of("e").unwrap(), "1");
    }

    #[test]
    fn dynamic_separator_from_user() {
        // "An example is to get the delimiter from the user for AND or OR
        // conditions" (§3.1.3).
        let defs = [
            DefineStatement::ListDecl {
                name: "conds".into(),
                separator: " $(CONNECTIVE) ".into(),
            },
            DefineStatement::Simple {
                name: "conds".into(),
                value: "a = 1".into(),
            },
            DefineStatement::Simple {
                name: "conds".into(),
                value: "b = 2".into(),
            },
        ];
        let mut env = env_of(&defs);
        env.push_input("CONNECTIVE", "OR");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("conds").unwrap(), "a = 1 OR b = 2");
    }

    #[test]
    fn depth_limit_reports_cleanly() {
        // A 200-deep chain, no cycle.
        let mut stmts = Vec::new();
        for i in 0..200 {
            stmts.push(simple(&format!("v{i}"), &format!("$(v{})", i + 1)));
        }
        let env = env_of(&stmts);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert!(matches!(
            ev.value_of("v0").unwrap_err(),
            MacroError::DepthExceeded { .. }
        ));
    }

    #[test]
    fn multibyte_text_survives_substitution() {
        let env = env_of(&[simple("greeting", "héllo ☃")]);
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.substitute("«$(greeting)»").unwrap(), "«héllo ☃»");
    }

    #[test]
    fn input_value_containing_reference_is_parsed() {
        // §4.3.2: input variable values can reference other variables.
        let mut env = env_of(&[simple("inner", "42")]);
        env.push_input("outer", "val=$(inner)");
        let mut ev = Evaluator::new(&env, &DenyRunner);
        assert_eq!(ev.value_of("outer").unwrap(), "val=42");
    }
}
