//! Error type for HTML processing.

use std::fmt;

/// Errors produced while tokenizing or validating HTML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlError {
    /// A closing tag appeared with no matching opening tag.
    UnmatchedClose {
        /// The tag name that was closed.
        tag: String,
        /// Byte offset of the offending close tag.
        offset: usize,
    },
    /// An opening tag was never closed before end of input.
    UnclosedTag {
        /// The tag name left open.
        tag: String,
        /// Byte offset where the tag was opened.
        offset: usize,
    },
    /// Tags were closed in the wrong order (e.g. `<b><i></b></i>`).
    MisnestedTag {
        /// The tag that was expected to close next.
        expected: String,
        /// The tag that actually closed.
        found: String,
        /// Byte offset of the offending close tag.
        offset: usize,
    },
    /// The tokenizer hit end-of-input in the middle of a construct.
    TruncatedInput {
        /// Human description of what was being parsed.
        context: &'static str,
        /// Byte offset where the construct began.
        offset: usize,
    },
}

impl fmt::Display for HtmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HtmlError::UnmatchedClose { tag, offset } => {
                write!(f, "unmatched closing tag </{tag}> at byte {offset}")
            }
            HtmlError::UnclosedTag { tag, offset } => {
                write!(f, "tag <{tag}> opened at byte {offset} is never closed")
            }
            HtmlError::MisnestedTag {
                expected,
                found,
                offset,
            } => write!(
                f,
                "misnested tags: expected </{expected}> but found </{found}> at byte {offset}"
            ),
            HtmlError::TruncatedInput { context, offset } => {
                write!(f, "input ended inside {context} starting at byte {offset}")
            }
        }
    }
}

impl std::error::Error for HtmlError {}
