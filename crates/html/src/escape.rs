//! HTML escaping and unescaping.
//!
//! Database values substituted into report pages must be escaped so that a
//! stored string like `<script>` or `Fish & Chips` renders as text instead of
//! markup. The gateway escapes *values*, never the application developer's own
//! HTML, mirroring how the original system passed macro HTML through verbatim.

use std::borrow::Cow;

/// Escape a string for use as HTML text content.
///
/// Replaces `&`, `<` and `>`. Returns a borrowed `Cow` when no replacement is
/// needed, so the common all-clean case allocates nothing.
///
/// ```
/// use dbgw_html::escape_text;
/// assert_eq!(escape_text("Fish & Chips"), "Fish &amp; Chips");
/// assert_eq!(escape_text("plain"), "plain");
/// ```
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escape a string for use inside a double-quoted HTML attribute value.
///
/// Replaces `&`, `<`, `>` and `"`.
///
/// ```
/// use dbgw_html::escape_attr;
/// assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
/// ```
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| b == b'&' || b == b'<' || b == b'>' || (attr && b == b'"'));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Undo HTML entity escaping for the five named entities plus decimal and
/// hexadecimal numeric character references.
///
/// Unknown or malformed entities are passed through unchanged, which is what
/// 1990s browsers did.
///
/// ```
/// use dbgw_html::unescape;
/// assert_eq!(unescape("a &amp; b"), "a & b");
/// assert_eq!(unescape("&#65;&#x42;"), "AB");
/// assert_eq!(unescape("&bogus;"), "&bogus;");
/// ```
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find the terminating ';' within a reasonable window.
        let end = bytes[i + 1..]
            .iter()
            .take(12)
            .position(|&b| b == b';')
            .map(|p| i + 1 + p);
        let Some(end) = end else {
            out.push('&');
            i += 1;
            continue;
        };
        let entity = &s[i + 1..end];
        let replacement = match entity {
            "amp" => Some('&'),
            "lt" => Some('<'),
            "gt" => Some('>'),
            "quot" => Some('"'),
            "apos" => Some('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                u32::from_str_radix(&entity[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
            }
            _ if entity.starts_with('#') => {
                entity[1..].parse::<u32>().ok().and_then(char::from_u32)
            }
            _ => None,
        };
        match replacement {
            Some(ch) => {
                out.push(ch);
                i = end + 1;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escapes_core_three() {
        assert_eq!(escape_text("<a href=x>"), "&lt;a href=x&gt;");
        assert_eq!(escape_text("a&b"), "a&amp;b");
    }

    #[test]
    fn text_leaves_quote_alone() {
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn attr_escapes_quote() {
        assert_eq!(escape_attr("\""), "&quot;");
    }

    #[test]
    fn clean_string_borrows() {
        assert!(matches!(escape_text("hello"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("hello"), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_round_trips_escape() {
        let original = "x < y & y > \"z\"";
        assert_eq!(unescape(&escape_attr(original)), original);
    }

    #[test]
    fn unescape_numeric_forms() {
        assert_eq!(unescape("&#60;&#x3E;"), "<>");
    }

    #[test]
    fn unescape_handles_multibyte_passthrough() {
        assert_eq!(unescape("héllo ☃"), "héllo ☃");
    }

    #[test]
    fn unescape_dangling_ampersand() {
        assert_eq!(unescape("AT&T"), "AT&T");
        assert_eq!(unescape("x &"), "x &");
    }

    #[test]
    fn unescape_ignores_overlong_entity() {
        // No ';' within the window: treated as literal.
        assert_eq!(
            unescape("&thisistoolongtobeanentity;"),
            "&thisistoolongtobeanentity;"
        );
    }

    #[test]
    fn unescape_rejects_invalid_codepoint() {
        assert_eq!(unescape("&#xD800;"), "&#xD800;");
    }
}
