//! Extraction of HTML form controls.
//!
//! Section 2.2 of the paper describes how a browser packages the values of
//! `INPUT` and `SELECT` controls into `name=value` pairs on submission. This
//! module recovers the form model from a page so the test client (our stand-in
//! for Mosaic/Netscape) can reproduce that behaviour exactly, including
//! checkbox semantics (unchecked boxes send *nothing*) and multi-valued
//! `SELECT MULTIPLE` lists.

use crate::token::{Token, Tokenizer};

/// HTTP method declared by a `<FORM METHOD=...>` tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FormMethod {
    /// `METHOD="get"` — variables travel in the URL query string.
    #[default]
    Get,
    /// `METHOD="post"` — variables travel in the request body.
    Post,
}

/// One interactive control inside a form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormControl {
    /// `<INPUT TYPE=text|hidden|password|radio|checkbox|submit|reset>`.
    Input {
        /// `TYPE` attribute, lowercased; defaults to `text`.
        kind: String,
        /// `NAME` attribute (controls without a name submit nothing).
        name: String,
        /// `VALUE` attribute.
        value: Option<String>,
        /// Whether `CHECKED` was present (radio / checkbox).
        checked: bool,
    },
    /// `<SELECT>` with its options.
    Select {
        /// `NAME` attribute.
        name: String,
        /// Whether `MULTIPLE` was present.
        multiple: bool,
        /// `(value, selected)` for each `<OPTION>`; value falls back to the
        /// option's text when no `VALUE` attribute is given.
        options: Vec<(String, bool)>,
    },
    /// `<TEXTAREA>` with its default text.
    TextArea {
        /// `NAME` attribute.
        name: String,
        /// Initial content between the tags.
        value: String,
    },
}

impl FormControl {
    /// The control's submission name.
    pub fn name(&self) -> &str {
        match self {
            FormControl::Input { name, .. } => name,
            FormControl::Select { name, .. } => name,
            FormControl::TextArea { name, .. } => name,
        }
    }
}

/// A parsed `<FORM>` element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Form {
    /// The `ACTION` URL the form submits to.
    pub action: String,
    /// Submission method.
    pub method: FormMethod,
    /// Controls in document order.
    pub controls: Vec<FormControl>,
}

/// In-flight `<SELECT>` state: `(name, multiple, options)`.
type PendingSelect = (String, bool, Vec<(String, bool)>);
/// In-flight `<OPTION>` state: `(value attr, selected, text)`.
type PendingOption = (Option<String>, bool, String);

impl Form {
    /// Parse every `<FORM>` in `html`, in document order.
    ///
    /// Controls that appear outside any form are ignored, as browsers do.
    pub fn parse_all(html: &str) -> Vec<Form> {
        let mut forms = Vec::new();
        let mut current: Option<Form> = None;
        let mut pending_select: Option<PendingSelect> = None;
        let mut pending_option: Option<PendingOption> = None;
        let mut pending_textarea: Option<(String, String)> = None;

        for tok in Tokenizer::new(html) {
            match tok {
                Token::Open { name, attrs, .. } => {
                    let attr = |want: &str| -> Option<String> {
                        attrs
                            .iter()
                            .find(|a| a.name == want)
                            .and_then(|a| a.value.clone())
                    };
                    let has = |want: &str| attrs.iter().any(|a| a.name == want);
                    match name.as_str() {
                        "form" => {
                            // An unclosed previous form is implicitly ended.
                            if let Some(done) = current.take() {
                                forms.push(done);
                            }
                            current = Some(Form {
                                action: attr("action").unwrap_or_default(),
                                method: match attr("method").as_deref() {
                                    Some(m) if m.eq_ignore_ascii_case("post") => FormMethod::Post,
                                    _ => FormMethod::Get,
                                },
                                controls: Vec::new(),
                            });
                        }
                        "input" => {
                            if let (Some(form), Some(ctl_name)) = (current.as_mut(), attr("name")) {
                                form.controls.push(FormControl::Input {
                                    kind: attr("type").unwrap_or_else(|| "text".into()),
                                    name: ctl_name,
                                    value: attr("value"),
                                    checked: has("checked"),
                                });
                            }
                        }
                        "select" => {
                            if let Some(ctl_name) = attr("name") {
                                pending_select = Some((ctl_name, has("multiple"), Vec::new()));
                            }
                        }
                        "option" => {
                            // An <option> implicitly closes the previous one.
                            finish_option(&mut pending_option, &mut pending_select);
                            pending_option = Some((attr("value"), has("selected"), String::new()));
                        }
                        "textarea" => {
                            if let Some(ctl_name) = attr("name") {
                                pending_textarea = Some((ctl_name, String::new()));
                            }
                        }
                        _ => {}
                    }
                }
                Token::Close { name } => match name.as_str() {
                    "form" => {
                        if let Some(done) = current.take() {
                            forms.push(done);
                        }
                    }
                    "select" => {
                        finish_option(&mut pending_option, &mut pending_select);
                        if let (Some(form), Some((sel_name, multiple, options))) =
                            (current.as_mut(), pending_select.take())
                        {
                            form.controls.push(FormControl::Select {
                                name: sel_name,
                                multiple,
                                options,
                            });
                        }
                    }
                    "option" => finish_option(&mut pending_option, &mut pending_select),
                    "textarea" => {
                        if let (Some(form), Some((ta_name, value))) =
                            (current.as_mut(), pending_textarea.take())
                        {
                            form.controls.push(FormControl::TextArea {
                                name: ta_name,
                                value,
                            });
                        }
                    }
                    _ => {}
                },
                Token::Text(text) => {
                    if let Some((_, _, body)) = pending_option.as_mut() {
                        body.push_str(&text);
                    } else if let Some((_, body)) = pending_textarea.as_mut() {
                        body.push_str(&text);
                    }
                }
                Token::Comment(_) | Token::Declaration(_) => {}
            }
        }
        if let Some(done) = current.take() {
            forms.push(done);
        }
        forms
    }

    /// Parse and return the first form, if any.
    pub fn parse_first(html: &str) -> Option<Form> {
        Form::parse_all(html).into_iter().next()
    }

    /// The set of `(name, value)` pairs a browser would submit given this
    /// form's *default* state (checked boxes, selected options, initial text),
    /// per the packaging rules of §2.2 of the paper.
    ///
    /// Unchecked checkboxes/radios contribute nothing; `submit`/`reset`
    /// buttons contribute nothing (we model clicking the lone submit button,
    /// whose value the original examples never referenced).
    pub fn default_submission(&self) -> Vec<(String, String)> {
        let mut pairs = Vec::new();
        for ctl in &self.controls {
            match ctl {
                FormControl::Input {
                    kind,
                    name,
                    value,
                    checked,
                } => match kind.as_str() {
                    "checkbox" | "radio" => {
                        if *checked {
                            pairs
                                .push((name.clone(), value.clone().unwrap_or_else(|| "on".into())));
                        }
                    }
                    "submit" | "reset" | "button" | "image" => {}
                    _ => pairs.push((name.clone(), value.clone().unwrap_or_default())),
                },
                FormControl::Select { name, options, .. } => {
                    for (value, selected) in options {
                        if *selected {
                            pairs.push((name.clone(), value.clone()));
                        }
                    }
                }
                FormControl::TextArea { name, value } => {
                    pairs.push((name.clone(), value.clone()));
                }
            }
        }
        pairs
    }
}

fn finish_option(
    pending_option: &mut Option<PendingOption>,
    pending_select: &mut Option<PendingSelect>,
) {
    if let Some((value, selected, text)) = pending_option.take() {
        if let Some((_, _, options)) = pending_select.as_mut() {
            let value = value.unwrap_or_else(|| text.trim().to_owned());
            options.push((value, selected));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The HTML input form of Figure 2 in the paper, abbreviated.
    const FIGURE2: &str = r#"
<TITLE>DB2 WWW URL Query</TITLE>
<FORM METHOD="post" ACTION="/cgi-bin/db2www.exe/urlquery.d2w/report">
Please enter a search string:
<INPUT TYPE="text" NAME="SEARCH" SIZE=20>
<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED> URL<br>
<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED> Title<br>
<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes">Description
<SELECT NAME="DBFIELD" SIZE=3 MULTIPLE>
<OPTION VALUE="url">URL
<OPTION VALUE="title" SELECTED> Title
<OPTION VALUE="desc">Description
</SELECT>
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="YES"> Yes
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="" CHECKED> No
<INPUT TYPE="submit" VALUE="Submit Query">
<INPUT TYPE="reset" VALUE="Reset Input">
</FORM>"#;

    #[test]
    fn parses_figure2_form() {
        let form = Form::parse_first(FIGURE2).expect("form");
        assert_eq!(form.method, FormMethod::Post);
        assert_eq!(form.action, "/cgi-bin/db2www.exe/urlquery.d2w/report");
        // submit/reset carry no NAME attribute, so they are not controls.
        assert_eq!(form.controls.len(), 7);
        let names: Vec<&str> = form.controls.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "SEARCH",
                "USE_URL",
                "USE_TITLE",
                "USE_DESC",
                "DBFIELD",
                "SHOWSQL",
                "SHOWSQL"
            ]
        );
    }

    #[test]
    fn figure2_default_submission_matches_paper() {
        // §2.2 shows the variable set the client sends for the default state.
        let form = Form::parse_first(FIGURE2).unwrap();
        let pairs = form.default_submission();
        assert_eq!(
            pairs,
            vec![
                ("SEARCH".to_owned(), String::new()),
                ("USE_URL".to_owned(), "yes".to_owned()),
                ("USE_TITLE".to_owned(), "yes".to_owned()),
                ("DBFIELD".to_owned(), "title".to_owned()),
                ("SHOWSQL".to_owned(), String::new()),
            ]
        );
    }

    #[test]
    fn multiple_select_sends_every_selected_option() {
        let html = r#"<form action="/a"><select name="F" multiple>
            <option value="1" selected>one
            <option value="2">two
            <option value="3" selected>three
            </select></form>"#;
        let form = Form::parse_first(html).unwrap();
        let pairs = form.default_submission();
        assert_eq!(
            pairs,
            vec![
                ("F".to_owned(), "1".to_owned()),
                ("F".to_owned(), "3".to_owned())
            ]
        );
    }

    #[test]
    fn option_without_value_uses_text() {
        let html = "<form><select name=S><option selected>Hello</option></select></form>";
        let form = Form::parse_first(html).unwrap();
        assert_eq!(
            form.default_submission(),
            vec![("S".into(), "Hello".into())]
        );
    }

    #[test]
    fn textarea_contributes_content() {
        let html = "<form><textarea name=msg>dear sirs</textarea></form>";
        let form = Form::parse_first(html).unwrap();
        assert_eq!(
            form.default_submission(),
            vec![("msg".into(), "dear sirs".into())]
        );
    }

    #[test]
    fn controls_outside_forms_ignored() {
        let html = "<input name=stray><form action=x></form>";
        let forms = Form::parse_all(html);
        assert_eq!(forms.len(), 1);
        assert!(forms[0].controls.is_empty());
    }

    #[test]
    fn two_forms_parsed_in_order() {
        let html = "<form action=a></form><form action=b></form>";
        let forms = Form::parse_all(html);
        assert_eq!(forms.len(), 2);
        assert_eq!(forms[0].action, "a");
        assert_eq!(forms[1].action, "b");
    }

    #[test]
    fn hidden_input_submitted() {
        let html = r#"<form><input type="hidden" name="h" value="secret"></form>"#;
        let form = Form::parse_first(html).unwrap();
        assert_eq!(
            form.default_submission(),
            vec![("h".into(), "secret".into())]
        );
    }

    #[test]
    fn method_defaults_to_get() {
        let form = Form::parse_first("<form action=x></form>").unwrap();
        assert_eq!(form.method, FormMethod::Get);
    }

    #[test]
    fn unclosed_form_still_returned() {
        let html = "<form action=z><input name=a value=1>";
        let forms = Form::parse_all(html);
        assert_eq!(forms.len(), 1);
        assert_eq!(forms[0].controls.len(), 1);
    }
}
