//! HTML tooling substrate for the Web-DBMS gateway.
//!
//! The 1996 system relied on browsers (Mosaic, Netscape) to render HTML and on
//! visual HTML editors to author forms. This crate provides the minimum HTML
//! machinery the reproduction needs in their place:
//!
//! * [`escape`] — text and attribute escaping for safely embedding SQL result
//!   values inside generated pages,
//! * [`token`] — a small, forgiving HTML tokenizer (tags, attributes, text,
//!   comments) in the spirit of mid-90s parsers,
//! * [`form`] — extraction of form controls (`INPUT`, `SELECT`/`OPTION`,
//!   `TEXTAREA`) from a page, used by the programmatic "browser" client to fill
//!   out and submit `%HTML_INPUT` forms,
//! * [`table`] — the default `<table>` report renderer used when a `%SQL`
//!   section has no custom `%SQL_REPORT` block,
//! * [`validate`] — a tag-balance checker used in tests to assert generated
//!   reports are well-formed.

pub mod error;
pub mod escape;
pub mod form;
pub mod table;
pub mod token;
pub mod validate;

pub use error::HtmlError;
pub use escape::{escape_attr, escape_text, unescape};
pub use form::{Form, FormControl, FormMethod};
pub use table::TableBuilder;
pub use token::{Attribute, Token, Tokenizer};
pub use validate::check_balanced;
