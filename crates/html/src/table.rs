//! Default tabular report rendering.
//!
//! When a `%SQL` section has no `%SQL_REPORT` block, the gateway prints the
//! query result "in a default table format" (§3.4). This builder produces that
//! format: a bordered HTML 3.0 table with a header row of column names and one
//! row per fetched tuple, all cell values HTML-escaped.

use crate::escape::escape_text;

/// Incremental builder for the default `<table>` report.
///
/// ```
/// use dbgw_html::TableBuilder;
/// let mut t = TableBuilder::new(&["NAME", "AGE"]);
/// t.push_row(&["O'Leary <jr>", "41"]);
/// let html = t.finish();
/// assert!(html.contains("<TABLE BORDER=1>"));
/// assert!(html.contains("O'Leary &lt;jr&gt;"));
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    out: String,
    columns: usize,
    rows: usize,
}

impl TableBuilder {
    /// The closing fragment of a default table; pairs with [`header_html`]
    /// and [`row_html`] for streaming emission.
    ///
    /// [`header_html`]: TableBuilder::header_html
    /// [`row_html`]: TableBuilder::row_html
    pub const FOOTER_HTML: &'static str = "</TABLE>\n";

    /// The opening `<TABLE>` tag and header row, standalone — for renderers
    /// that flush the table piecewise instead of accumulating it.
    pub fn header_html<S: AsRef<str>>(columns: &[S]) -> String {
        let mut out = String::with_capacity(128 + columns.len() * 16);
        out.push_str("<TABLE BORDER=1>\n<TR>");
        for c in columns {
            out.push_str("<TH>");
            out.push_str(&escape_text(c.as_ref()));
            out.push_str("</TH>");
        }
        out.push_str("</TR>\n");
        out
    }

    /// One data row, standalone. Missing trailing cells render as empty;
    /// extra cells are still rendered (the 90s engine trusted the DBMS row
    /// width).
    pub fn row_html<S: AsRef<str>>(columns: usize, cells: &[S]) -> String {
        let mut out = String::with_capacity(16 + cells.len() * 16);
        out.push_str("<TR>");
        for i in 0..columns.max(cells.len()) {
            out.push_str("<TD>");
            if let Some(cell) = cells.get(i) {
                out.push_str(&escape_text(cell.as_ref()));
            }
            out.push_str("</TD>");
        }
        out.push_str("</TR>\n");
        out
    }

    /// Begin a table with the given header row (column names are escaped).
    pub fn new<S: AsRef<str>>(columns: &[S]) -> Self {
        TableBuilder {
            out: Self::header_html(columns),
            columns: columns.len(),
            rows: 0,
        }
    }

    /// Append a data row (see [`row_html`](TableBuilder::row_html) for the
    /// padding rules).
    pub fn push_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let row = Self::row_html(self.columns, cells);
        self.out.push_str(&row);
        self.rows += 1;
    }

    /// Number of data rows appended so far.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Close the table and return the HTML.
    pub fn finish(mut self) -> String {
        self.out.push_str(Self::FOOTER_HTML);
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_balanced;

    #[test]
    fn renders_header_and_rows() {
        let mut t = TableBuilder::new(&["URL", "TITLE"]);
        t.push_row(&["http://x", "X site"]);
        t.push_row(&["http://y", "Y site"]);
        let html = t.finish();
        assert!(html.contains("<TH>URL</TH><TH>TITLE</TH>"));
        assert!(html.contains("<TD>http://x</TD><TD>X site</TD>"));
        assert_eq!(html.matches("<TR>").count(), 3);
    }

    #[test]
    fn escapes_cells() {
        let mut t = TableBuilder::new(&["a&b"]);
        t.push_row(&["<tag>"]);
        let html = t.finish();
        assert!(html.contains("a&amp;b"));
        assert!(html.contains("&lt;tag&gt;"));
    }

    #[test]
    fn short_row_padded() {
        let mut t = TableBuilder::new(&["A", "B", "C"]);
        t.push_row(&["only"]);
        let html = t.finish();
        assert_eq!(html.matches("<TD>").count(), 3);
    }

    #[test]
    fn output_is_balanced_html() {
        let mut t = TableBuilder::new(&["A"]);
        t.push_row(&["1"]);
        t.push_row(&["2"]);
        assert!(check_balanced(&t.finish()).is_ok());
    }

    #[test]
    fn piecewise_emission_matches_builder() {
        let mut t = TableBuilder::new(&["A", "B"]);
        t.push_row(&["1", "2"]);
        t.push_row(&["only"]);
        let whole = t.finish();
        let pieces = format!(
            "{}{}{}{}",
            TableBuilder::header_html(&["A", "B"]),
            TableBuilder::row_html(2, &["1", "2"]),
            TableBuilder::row_html(2, &["only"]),
            TableBuilder::FOOTER_HTML
        );
        assert_eq!(whole, pieces);
    }

    #[test]
    fn empty_table_valid() {
        let t = TableBuilder::new(&["A"]);
        assert_eq!(t.row_count(), 0);
        assert!(check_balanced(&t.finish()).is_ok());
    }
}
