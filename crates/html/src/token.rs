//! A small, forgiving HTML tokenizer.
//!
//! This models the permissive parsing of mid-90s browsers: attribute values
//! may be double-quoted, single-quoted or bare; tag and attribute names are
//! case-insensitive (normalized to lowercase); unknown constructs degrade to
//! text rather than failing. It is deliberately *not* an HTML5 parser — the
//! pages the gateway generates and consumes are HTML 2.0/3.0 era.

use std::fmt;

/// A single `name[=value]` attribute inside a tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, lowercased.
    pub name: String,
    /// Attribute value with entities resolved; `None` for bare boolean
    /// attributes such as `CHECKED` or `MULTIPLE`.
    pub value: Option<String>,
}

impl Attribute {
    /// Construct an attribute (test/builder convenience).
    pub fn new(name: &str, value: Option<&str>) -> Self {
        Attribute {
            name: name.to_ascii_lowercase(),
            value: value.map(str::to_owned),
        }
    }
}

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An opening tag like `<input type="text">`. `self_closing` records a
    /// trailing `/` (XHTML style), which 90s HTML rarely used but we accept.
    Open {
        /// Tag name, lowercased.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attribute>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// A closing tag like `</form>`.
    Close {
        /// Tag name, lowercased.
        name: String,
    },
    /// A run of character data between tags, entities *not* resolved (the
    /// gateway must pass the developer's HTML through verbatim).
    Text(String),
    /// An HTML comment, contents between `<!--` and `-->`.
    Comment(String),
    /// A declaration such as `<!DOCTYPE html>`, contents after `<!`.
    Declaration(String),
}

impl Token {
    /// The tag name if this token is an opening tag.
    pub fn open_name(&self) -> Option<&str> {
        match self {
            Token::Open { name, .. } => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Open {
                name,
                attrs,
                self_closing,
            } => {
                write!(f, "<{name}")?;
                for a in attrs {
                    match &a.value {
                        Some(v) => write!(f, " {}=\"{}\"", a.name, v)?,
                        None => write!(f, " {}", a.name)?,
                    }
                }
                if *self_closing {
                    write!(f, " /")?;
                }
                write!(f, ">")
            }
            Token::Close { name } => write!(f, "</{name}>"),
            Token::Text(t) => write!(f, "{t}"),
            Token::Comment(c) => write!(f, "<!--{c}-->"),
            Token::Declaration(d) => write!(f, "<!{d}>"),
        }
    }
}

/// Streaming tokenizer over an HTML source string.
///
/// ```
/// use dbgw_html::{Token, Tokenizer};
/// let tokens: Vec<Token> = Tokenizer::new("<b>hi</b>").collect();
/// assert_eq!(tokens.len(), 3);
/// assert_eq!(tokens[0].open_name(), Some("b"));
/// ```
pub struct Tokenizer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `src`.
    pub fn new(src: &'a str) -> Self {
        Tokenizer { src, pos: 0 }
    }

    /// Current byte offset into the source.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn read_text(&mut self) -> Token {
        let rest = self.rest();
        let end = rest.find('<').unwrap_or(rest.len());
        let text = &rest[..end];
        self.bump(end);
        Token::Text(text.to_owned())
    }

    fn read_comment(&mut self) -> Token {
        // self.rest() starts with "<!--"
        self.bump(4);
        let rest = self.rest();
        match rest.find("-->") {
            Some(end) => {
                let body = &rest[..end];
                self.bump(end + 3);
                Token::Comment(body.to_owned())
            }
            None => {
                let body = rest;
                self.bump(rest.len());
                Token::Comment(body.to_owned())
            }
        }
    }

    fn read_declaration(&mut self) -> Token {
        // self.rest() starts with "<!"
        self.bump(2);
        let rest = self.rest();
        let end = rest.find('>').unwrap_or(rest.len());
        let body = &rest[..end];
        self.bump(end.min(rest.len()) + usize::from(end < rest.len()));
        Token::Declaration(body.to_owned())
    }

    fn read_tag(&mut self) -> Token {
        // self.rest() starts with '<'
        let start = self.pos;
        self.bump(1);
        let closing = self.rest().starts_with('/');
        if closing {
            self.bump(1);
        }
        let name = self.read_name();
        if name.is_empty() {
            // A lone '<' that does not begin a tag: emit as text, browsers did.
            self.pos = start + 1;
            return Token::Text("<".to_owned());
        }
        if closing {
            self.skip_to_gt();
            return Token::Close { name };
        }
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_ws();
            let rest = self.rest();
            if rest.is_empty() {
                break;
            }
            if let Some(stripped) = rest.strip_prefix("/>") {
                let _ = stripped;
                self.bump(2);
                self_closing = true;
                break;
            }
            if rest.starts_with('>') {
                self.bump(1);
                break;
            }
            let attr_name = self.read_name();
            if attr_name.is_empty() {
                // Junk character inside a tag; skip the whole (possibly
                // multi-byte) character to guarantee progress on a boundary.
                let skip = self.rest().chars().next().map_or(1, char::len_utf8);
                self.bump(skip);
                continue;
            }
            self.skip_ws();
            let value = if self.rest().starts_with('=') {
                self.bump(1);
                self.skip_ws();
                Some(self.read_attr_value())
            } else {
                None
            };
            attrs.push(Attribute {
                name: attr_name,
                value: value.map(|v| crate::escape::unescape(&v)),
            });
        }
        Token::Open {
            name,
            attrs,
            self_closing,
        }
    }

    fn read_name(&mut self) -> String {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|&(_, c)| {
                !(c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':' || c == '.')
            })
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let name = rest[..end].to_ascii_lowercase();
        self.bump(end);
        name
    }

    fn read_attr_value(&mut self) -> String {
        let rest = self.rest();
        if let Some(quote) = rest.chars().next().filter(|&c| c == '"' || c == '\'') {
            let inner = &rest[1..];
            let end = inner.find(quote).unwrap_or(inner.len());
            let value = inner[..end].to_owned();
            self.bump(1 + end + usize::from(end < inner.len()));
            value
        } else {
            let end = rest
                .char_indices()
                .find(|&(_, c)| c.is_ascii_whitespace() || c == '>')
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let value = rest[..end].to_owned();
            self.bump(end);
            value
        }
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|&(_, c)| !c.is_ascii_whitespace())
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        self.bump(end);
    }

    fn skip_to_gt(&mut self) {
        let rest = self.rest();
        match rest.find('>') {
            Some(i) => self.bump(i + 1),
            None => self.bump(rest.len()),
        }
    }
}

impl Iterator for Tokenizer<'_> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        let rest = self.rest();
        if rest.is_empty() {
            return None;
        }
        if rest.starts_with("<!--") {
            return Some(self.read_comment());
        }
        if rest.starts_with("<!") {
            return Some(self.read_declaration());
        }
        if rest.starts_with('<') {
            return Some(self.read_tag());
        }
        Some(self.read_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        Tokenizer::new(s).collect()
    }

    #[test]
    fn simple_open_close() {
        let t = toks("<B>hello</B>");
        assert_eq!(
            t,
            vec![
                Token::Open {
                    name: "b".into(),
                    attrs: vec![],
                    self_closing: false
                },
                Token::Text("hello".into()),
                Token::Close { name: "b".into() },
            ]
        );
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let t = toks(r#"<INPUT TYPE="checkbox" NAME='USE_URL' VALUE=yes CHECKED>"#);
        let Token::Open { name, attrs, .. } = &t[0] else {
            panic!("expected open tag")
        };
        assert_eq!(name, "input");
        assert_eq!(attrs[0], Attribute::new("type", Some("checkbox")));
        assert_eq!(attrs[1], Attribute::new("name", Some("USE_URL")));
        assert_eq!(attrs[2], Attribute::new("value", Some("yes")));
        assert_eq!(attrs[3], Attribute::new("checked", None));
    }

    #[test]
    fn attribute_value_case_preserved() {
        let t = toks(r#"<input name="MixedCase">"#);
        let Token::Open { attrs, .. } = &t[0] else {
            panic!()
        };
        assert_eq!(attrs[0].value.as_deref(), Some("MixedCase"));
    }

    #[test]
    fn entities_in_attr_values_resolved() {
        let t = toks(r#"<option value="a &amp; b">"#);
        let Token::Open { attrs, .. } = &t[0] else {
            panic!()
        };
        assert_eq!(attrs[0].value.as_deref(), Some("a & b"));
    }

    #[test]
    fn comment_and_declaration() {
        let t = toks("<!-- note --><!DOCTYPE html><p>");
        assert_eq!(t[0], Token::Comment(" note ".into()));
        assert_eq!(t[1], Token::Declaration("DOCTYPE html".into()));
        assert!(matches!(&t[2], Token::Open { name, .. } if name == "p"));
    }

    #[test]
    fn stray_less_than_is_text() {
        let t = toks("a < b");
        assert_eq!(
            t,
            vec![
                Token::Text("a ".into()),
                Token::Text("<".into()),
                Token::Text(" b".into()),
            ]
        );
    }

    #[test]
    fn self_closing_accepted() {
        let t = toks("<br/>");
        assert!(matches!(
            &t[0],
            Token::Open {
                name,
                self_closing: true,
                ..
            } if name == "br"
        ));
    }

    #[test]
    fn unterminated_tag_does_not_loop() {
        let t = toks("<input name=");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unterminated_comment_consumes_rest() {
        let t = toks("<!-- never ends");
        assert_eq!(t, vec![Token::Comment(" never ends".into())]);
    }

    #[test]
    fn display_round_trip_simple() {
        let src = "<a href=\"x\">link</a>";
        let rendered: String = toks(src).iter().map(|t| t.to_string()).collect();
        assert_eq!(rendered, src);
    }

    #[test]
    fn multibyte_text_survives() {
        let t = toks("<p>héllo ☃</p>");
        assert_eq!(t[1], Token::Text("héllo ☃".into()));
    }
}
