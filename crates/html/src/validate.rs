//! Structural validation of generated HTML.
//!
//! Used by the test suite to assert that every page the gateway emits is
//! well-formed enough for a browser: close tags match open tags in LIFO order,
//! modulo the *void* elements (`<br>`, `<input>`, …) and the optional-close
//! elements (`<p>`, `<li>`, `<option>`, `<tr>`, `<td>`, `<th>`) that HTML 2.0
//! let authors leave open.

use crate::error::HtmlError;
use crate::token::{Token, Tokenizer};

/// Elements that never take a closing tag.
const VOID: &[&str] = &[
    "br", "hr", "img", "input", "meta", "link", "base", "area", "col", "isindex",
];

/// Elements whose closing tag is optional in HTML 2.0/3.2; an unclosed one is
/// implicitly ended by a sibling or parent close.
const OPTIONAL_CLOSE: &[&str] = &["p", "li", "option", "tr", "td", "th", "dt", "dd"];

/// Check that `html` has balanced tags.
///
/// Returns `Ok(())` for well-formed input, or the first structural error.
///
/// ```
/// use dbgw_html::check_balanced;
/// assert!(check_balanced("<ul><li>a<li>b</ul>").is_ok());
/// assert!(check_balanced("<b><i>x</b></i>").is_err());
/// ```
pub fn check_balanced(html: &str) -> Result<(), HtmlError> {
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut tokenizer = Tokenizer::new(html);
    loop {
        let offset = tokenizer.offset();
        let Some(token) = tokenizer.next() else { break };
        match token {
            Token::Open {
                name, self_closing, ..
            } => {
                if self_closing || VOID.contains(&name.as_str()) {
                    continue;
                }
                // An optional-close element is implicitly closed by a sibling
                // of the same name (e.g. <li>a<li>b).
                if OPTIONAL_CLOSE.contains(&name.as_str())
                    && stack.last().map(|(n, _)| n.as_str()) == Some(name.as_str())
                {
                    stack.pop();
                }
                stack.push((name, offset));
            }
            Token::Close { name } => {
                // Pop implicitly-closable elements until we find the match.
                while let Some((top, _)) = stack.last() {
                    if *top == name {
                        break;
                    }
                    if OPTIONAL_CLOSE.contains(&top.as_str()) {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                match stack.pop() {
                    Some((top, _)) if top == name => {}
                    Some((top, _)) => {
                        return Err(HtmlError::MisnestedTag {
                            expected: top,
                            found: name,
                            offset,
                        })
                    }
                    None => return Err(HtmlError::UnmatchedClose { tag: name, offset }),
                }
            }
            _ => {}
        }
    }
    // Whatever remains must all be optional-close elements.
    for (tag, offset) in stack {
        if !OPTIONAL_CLOSE.contains(&tag.as_str()) {
            return Err(HtmlError::UnclosedTag { tag, offset });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_simple_nesting() {
        assert!(check_balanced("<html><body><b>x</b></body></html>").is_ok());
    }

    #[test]
    fn accepts_void_elements() {
        assert!(check_balanced("a<br>b<hr><input name=x>").is_ok());
    }

    #[test]
    fn accepts_unclosed_li_and_option() {
        let html = "<select name=s><option value=1>one<option value=2>two</select>";
        assert!(check_balanced(html).is_ok());
    }

    #[test]
    fn accepts_unclosed_trailing_p() {
        assert!(check_balanced("<p>one<p>two").is_ok());
    }

    #[test]
    fn rejects_misnesting() {
        let err = check_balanced("<b><i>x</b></i>").unwrap_err();
        assert!(matches!(err, HtmlError::MisnestedTag { .. }));
    }

    #[test]
    fn rejects_unmatched_close() {
        let err = check_balanced("x</div>").unwrap_err();
        assert_eq!(
            err,
            HtmlError::UnmatchedClose {
                tag: "div".into(),
                offset: 1
            }
        );
    }

    #[test]
    fn rejects_unclosed_table() {
        let err = check_balanced("<table><tr><td>x").unwrap_err();
        assert!(matches!(err, HtmlError::UnclosedTag { ref tag, .. } if tag == "table"));
    }

    #[test]
    fn implicit_close_of_td_by_tr() {
        assert!(check_balanced("<table><tr><td>a<td>b<tr><td>c</table>").is_ok());
    }

    #[test]
    fn figure2_form_is_balanced() {
        let html = r#"<FORM METHOD="post" ACTION="/x">
            <INPUT TYPE="text" NAME="SEARCH" SIZE=20>
            <SELECT NAME="DBFIELD" SIZE=3 MULTIPLE>
            <OPTION VALUE="url">URL
            <OPTION VALUE="title" SELECTED>Title
            </SELECT>
            </FORM>"#;
        assert!(check_balanced(html).is_ok());
    }
}
