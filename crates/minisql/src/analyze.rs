//! EXPLAIN ANALYZE: per-operator runtime instrumentation.
//!
//! `EXPLAIN` describes what the planner *intends*; `EXPLAIN ANALYZE` runs the
//! statement and reports what actually happened — rows in and out of every
//! operator, how many times it ran, and its wall time. The executor stays
//! uninstrumented by default: a statement only pays for collection when a
//! [`Collector`] is installed on its thread (by `EXPLAIN ANALYZE` itself, by
//! `DBGW_TRACE=1` request tracing, or by the gateway's slow-query log via
//! [`set_passive_capture`]).
//!
//! Time is read from the request's injectable [`Clock`], so a test pinning a
//! `TestClock` at the HTTP edge sees fully deterministic operator timings.
//!
//! Operators are keyed by [`OpId`], whose variants correspond one-to-one with
//! the line positions `exec::explain_into` renders — which is what lets the
//! renderer annotate the *estimated* plan tree with the *actual* numbers.
//! Only the outermost SELECT block records: subqueries and set-operation
//! branches run at collector depth ≥ 2 and are ignored, because their
//! operator ids would collide with the outer block's.

use dbgw_obs::Clock;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identity of one operator within a single SELECT block. Variants map onto
/// the deterministic line order of the EXPLAIN tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpId {
    /// Base table access (index probe or full scan).
    Base,
    /// Scan of the `i`-th join's right side.
    JoinScan(usize),
    /// The `i`-th JOIN (hash or nested loop), including its post-filters.
    Join(usize),
    /// Residual WHERE filter (conjuncts the planner did not push down).
    WhereFilter,
    /// Window function computation (partition + in-partition sort).
    Window,
    /// Grouping and aggregate computation.
    Aggregate,
    /// HAVING filter, evaluated once per group.
    Having,
    /// DISTINCT over output rows.
    Distinct,
    /// ORDER BY (full or top-k sort).
    Sort,
    /// LIMIT / OFFSET.
    Limit,
}

impl OpId {
    /// Short label used in trace notes and slow-query plan summaries.
    pub fn label(&self) -> String {
        match self {
            OpId::Base => "scan".to_owned(),
            OpId::JoinScan(i) => format!("scan#{i}"),
            OpId::Join(i) => format!("join#{i}"),
            OpId::WhereFilter => "where".to_owned(),
            OpId::Window => "window".to_owned(),
            OpId::Aggregate => "agg".to_owned(),
            OpId::Having => "having".to_owned(),
            OpId::Distinct => "distinct".to_owned(),
            OpId::Sort => "sort".to_owned(),
            OpId::Limit => "limit".to_owned(),
        }
    }
}

/// Actuals accumulated for one operator over a statement's execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpActuals {
    /// Rows entering the operator (for scans: heap rows examined).
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Times the operator ran.
    pub loops: u64,
    /// Wall time, nanoseconds on the collector's clock.
    pub time_ns: u64,
}

struct Collector {
    clock: Arc<dyn Clock>,
    /// SELECT-block nesting depth: 1 = the outer block (recorded); deeper
    /// blocks (subqueries, set-operation branches) are ignored.
    depth: usize,
    ops: Vec<(OpId, OpActuals)>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    static LAST_SUMMARY: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Process-wide switch: when on, `Connection::execute_with_params` collects
/// actuals for every SELECT even without `EXPLAIN ANALYZE` or an active
/// trace, so the slow-query log can attach a plan summary after the fact.
/// The gateway enables this when `DBGW_SLOW_MS` is configured.
static PASSIVE: AtomicBool = AtomicBool::new(false);

/// Enable or disable passive per-statement collection (see [`PASSIVE`]'s
/// docs). Monotonic enablement is the expected pattern; toggling it off
/// mid-flight only stops *future* statements from collecting.
pub fn set_passive_capture(on: bool) {
    PASSIVE.store(on, Ordering::Relaxed);
}

/// Is passive per-statement collection enabled?
pub fn passive_capture() -> bool {
    PASSIVE.load(Ordering::Relaxed)
}

/// Should the statement path wrap this SELECT in a collector? True when the
/// thread is tracing (`DBGW_TRACE`) or passive capture is on.
pub(crate) fn capture_wanted() -> bool {
    passive_capture() || dbgw_obs::trace::trace_active()
}

/// Run `f` with a fresh collector installed on this thread, returning its
/// result plus the per-operator actuals recorded by the outermost SELECT
/// block. Re-entrant calls (a collector is already installed) run `f`
/// without a new collector and return no actuals.
pub fn collect<R>(clock: Arc<dyn Clock>, f: impl FnOnce() -> R) -> (R, Vec<(OpId, OpActuals)>) {
    let installed = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.is_some() {
            return false;
        }
        *slot = Some(Collector {
            clock,
            depth: 0,
            ops: Vec::new(),
        });
        true
    });
    let result = f();
    if !installed {
        return (result, Vec::new());
    }
    let ops = COLLECTOR
        .with(|c| c.borrow_mut().take())
        .map(|col| col.ops)
        .unwrap_or_default();
    (result, ops)
}

/// RAII marker for one SELECT block; created at the top of `run_single` and
/// `run_compound` so nested blocks land at depth ≥ 2 and stay unrecorded.
pub(crate) struct BlockGuard {
    active: bool,
}

pub(crate) fn enter_block() -> BlockGuard {
    let active = COLLECTOR.with(|c| match c.borrow_mut().as_mut() {
        Some(col) => {
            col.depth += 1;
            true
        }
        None => false,
    });
    BlockGuard { active }
}

impl Drop for BlockGuard {
    fn drop(&mut self) {
        if self.active {
            COLLECTOR.with(|c| {
                if let Some(col) = c.borrow_mut().as_mut() {
                    col.depth = col.depth.saturating_sub(1);
                }
            });
        }
    }
}

/// A clock reading, if the outermost block is being recorded — the start of
/// one operator execution. `None` (collection off) makes the matching
/// [`record`] a no-op, so instrumented sites cost one thread-local read when
/// ANALYZE is inactive.
pub(crate) fn start() -> Option<u64> {
    COLLECTOR.with(|c| {
        c.borrow()
            .as_ref()
            .filter(|col| col.depth == 1)
            .map(|col| col.clock.now_ns())
    })
}

/// Fold one operator execution into the collector: `started` is the matching
/// [`start`] reading; rows flow `rows_in` → `rows_out`.
pub(crate) fn record(op: OpId, started: Option<u64>, rows_in: u64, rows_out: u64) {
    let Some(t0) = started else { return };
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(col) = slot.as_mut() else { return };
        if col.depth != 1 {
            return;
        }
        let elapsed = col.clock.now_ns().saturating_sub(t0);
        let actuals = match col.ops.iter_mut().find(|(o, _)| *o == op) {
            Some((_, a)) => a,
            None => {
                col.ops.push((op, OpActuals::default()));
                &mut col.ops.last_mut().expect("just pushed").1
            }
        };
        actuals.rows_in += rows_in;
        actuals.rows_out += rows_out;
        actuals.loops += 1;
        actuals.time_ns += elapsed;
    });
}

/// Look up one operator's actuals in a collected set.
pub fn lookup(ops: &[(OpId, OpActuals)], op: OpId) -> Option<OpActuals> {
    ops.iter().find(|(o, _)| *o == op).map(|(_, a)| *a)
}

/// One-line compact summary of a collected set, for the `DBGW_TRACE`
/// `plan_actuals` note and the slow-query log:
/// `scan 5→3 x1 0.010ms; join#0 3→7 x1 0.021ms; total 0.055ms`.
pub fn summarize(ops: &[(OpId, OpActuals)], total_ns: u64) -> String {
    let mut parts: Vec<String> = ops
        .iter()
        .map(|(op, a)| {
            format!(
                "{} {}\u{2192}{} x{} {:.3}ms",
                op.label(),
                a.rows_in,
                a.rows_out,
                a.loops,
                a.time_ns as f64 / 1e6
            )
        })
        .collect();
    parts.push(format!("total {:.3}ms", total_ns as f64 / 1e6));
    parts.join("; ")
}

/// Stash the plan summary of the statement that just finished, for the
/// slow-query log to pick up ([`take_last_summary`]).
pub fn set_last_summary(summary: String) {
    LAST_SUMMARY.with(|s| *s.borrow_mut() = Some(summary));
}

/// Take (and clear) the last statement's plan summary on this thread.
pub fn take_last_summary() -> Option<String> {
    LAST_SUMMARY.with(|s| s.borrow_mut().take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgw_obs::TestClock;

    #[test]
    fn collect_records_outer_block_only() {
        let clock = Arc::new(TestClock::new());
        let c2 = Arc::clone(&clock);
        let ((), ops) = collect(clock, move || {
            let _outer = enter_block();
            let t = start();
            c2.advance_micros(5);
            record(OpId::Base, t, 10, 3);
            {
                // A nested block (subquery): must not record.
                let _inner = enter_block();
                let t = start();
                assert!(t.is_none(), "nested block must not time");
                record(OpId::Base, t, 99, 99);
            }
            // Same op again accumulates (loops).
            let t = start();
            c2.advance_micros(3);
            record(OpId::Base, t, 10, 2);
        });
        let base = lookup(&ops, OpId::Base).unwrap();
        assert_eq!(base.rows_in, 20);
        assert_eq!(base.rows_out, 5);
        assert_eq!(base.loops, 2);
        assert_eq!(base.time_ns, 8_000);
        assert!(lookup(&ops, OpId::Sort).is_none());
    }

    #[test]
    fn no_collector_means_no_ops_and_no_cost() {
        let _block = enter_block();
        assert!(start().is_none());
        record(OpId::Sort, None, 1, 1); // no-op
        assert!(take_last_summary().is_none());
    }

    #[test]
    fn reentrant_collect_leaves_outer_collector_intact() {
        let clock: Arc<dyn Clock> = Arc::new(TestClock::new());
        let inner_clock = Arc::clone(&clock);
        let ((), ops) = collect(Arc::clone(&clock), move || {
            let _outer = enter_block();
            let ((), inner_ops) = collect(inner_clock, || {});
            assert!(inner_ops.is_empty());
            let t = start();
            record(OpId::Limit, t, 4, 2);
        });
        assert_eq!(lookup(&ops, OpId::Limit).unwrap().rows_out, 2);
    }

    #[test]
    fn summary_formats_rows_loops_and_total() {
        let ops = vec![
            (
                OpId::Base,
                OpActuals {
                    rows_in: 5,
                    rows_out: 3,
                    loops: 1,
                    time_ns: 10_000,
                },
            ),
            (
                OpId::Join(0),
                OpActuals {
                    rows_in: 3,
                    rows_out: 7,
                    loops: 1,
                    time_ns: 21_000,
                },
            ),
        ];
        let s = summarize(&ops, 55_000);
        assert_eq!(
            s,
            "scan 5\u{2192}3 x1 0.010ms; join#0 3\u{2192}7 x1 0.021ms; total 0.055ms"
        );
        set_last_summary(s.clone());
        assert_eq!(take_last_summary().as_deref(), Some(s.as_str()));
        assert!(take_last_summary().is_none());
    }
}
