//! Abstract syntax tree for the supported SQL subset.

use crate::types::{SqlType, Value};

/// A column reference, possibly qualified (`table.column`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Optional table or alias qualifier.
    pub table: Option<String>,
    /// Column name as written.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (modulo; DB2 spelled it MOD())
    Mod,
    /// `||`
    Concat,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggFunc {
    /// Function name for result-column labelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference.
    Column(ColumnRef),
    /// `?` positional parameter (1-based index assigned during parse).
    Param(usize),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `expr [NOT] LIKE pattern [ESCAPE ch]`.
    Like {
        /// Value being matched.
        expr: Box<Expr>,
        /// Pattern expression (usually a literal).
        pattern: Box<Expr>,
        /// Optional escape character.
        escape: Option<char>,
        /// Whether NOT was present.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Whether NOT was present.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Whether NOT was present.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// Whether NOT was present.
        negated: bool,
    },
    /// Scalar function call (`UPPER`, `LOWER`, `LENGTH`, `ABS`, `COALESCE`,
    /// `SUBSTR`, `TRIM`).
    Func {
        /// Uppercased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call; only legal in SELECT/HAVING/ORDER BY.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// Whether DISTINCT was present (`COUNT(DISTINCT x)`).
        distinct: bool,
    },
    /// Scalar subquery `(SELECT ...)` — must yield one column; zero rows is
    /// NULL, more than one row is an error. Uncorrelated only.
    Subquery(Box<Select>),
    /// `expr [NOT] IN (SELECT ...)`. Uncorrelated only.
    InSelect {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (must yield one column).
        select: Box<Select>,
        /// Whether NOT was present.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`. Uncorrelated only.
    Exists {
        /// The subquery.
        select: Box<Select>,
        /// Whether NOT was present.
        negated: bool,
    },
    /// `CASE [operand] WHEN ... THEN ... [ELSE ...] END`.
    Case {
        /// Simple-CASE operand; `None` for searched CASE.
        operand: Option<Box<Expr>>,
        /// `(when, then)` arms in order.
        arms: Vec<(Expr, Expr)>,
        /// ELSE result; NULL when absent.
        otherwise: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// The value.
        expr: Box<Expr>,
        /// Target type.
        ty: SqlType,
    },
    /// Window function call `func(...) OVER (...)`; only legal in the
    /// SELECT list of a non-grouped query.
    Window(Box<WindowExpr>),
}

/// Which function a window call computes.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowFunc {
    /// `ROW_NUMBER()` — 1-based position within the partition.
    RowNumber,
    /// `RANK()` — 1-based rank with gaps over the window ORDER BY keys.
    Rank,
    /// An aggregate over the window frame (`SUM(x) OVER (...)` etc.).
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<Box<Expr>>,
    },
}

impl WindowFunc {
    /// Function name for result-column labelling.
    pub fn name(&self) -> &'static str {
        match self {
            WindowFunc::RowNumber => "ROW_NUMBER",
            WindowFunc::Rank => "RANK",
            WindowFunc::Agg { func, .. } => func.name(),
        }
    }
}

/// A window function call: function plus the `OVER (...)` specification.
/// With ORDER BY the frame is the SQL default `RANGE BETWEEN UNBOUNDED
/// PRECEDING AND CURRENT ROW` (running totals, peers included); without it
/// the frame is the whole partition.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExpr {
    /// The function being windowed.
    pub func: WindowFunc,
    /// `PARTITION BY` expressions (empty = one partition).
    pub partition_by: Vec<Expr>,
    /// `ORDER BY` keys inside the OVER clause.
    pub order_by: Vec<OrderKey>,
}

impl Expr {
    /// Convenience: `lhs op rhs`.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Does this expression tree contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => false,
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(),
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
            // A subquery's own aggregates are its own business.
            Expr::Subquery(_) | Expr::Exists { .. } => false,
            Expr::InSelect { expr, .. } => expr.contains_aggregate(),
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                operand.as_ref().is_some_and(|o| o.contains_aggregate())
                    || arms
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || otherwise.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::Cast { expr, .. } => expr.contains_aggregate(),
            // A window call computes its own value per row; it does not make
            // the query a grouped aggregate query.
            Expr::Window(_) => false,
        }
    }

    /// Does this expression tree contain a window function call?
    pub fn contains_window(&self) -> bool {
        match self {
            Expr::Window(_) => true,
            Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => false,
            Expr::Neg(e) | Expr::Not(e) => e.contains_window(),
            Expr::Binary { lhs, rhs, .. } => lhs.contains_window() || rhs.contains_window(),
            Expr::Like { expr, pattern, .. } => expr.contains_window() || pattern.contains_window(),
            Expr::IsNull { expr, .. } => expr.contains_window(),
            Expr::InList { expr, list, .. } => {
                expr.contains_window() || list.iter().any(Expr::contains_window)
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_window() || lo.contains_window() || hi.contains_window()
            }
            Expr::Func { args, .. } => args.iter().any(Expr::contains_window),
            Expr::Agg { arg, .. } => arg.as_ref().is_some_and(|a| a.contains_window()),
            Expr::Subquery(_) | Expr::Exists { .. } => false,
            Expr::InSelect { expr, .. } => expr.contains_window(),
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                operand.as_ref().is_some_and(|o| o.contains_window())
                    || arms
                        .iter()
                        .any(|(w, t)| w.contains_window() || t.contains_window())
                    || otherwise.as_ref().is_some_and(|e| e.contains_window())
            }
            Expr::Cast { expr, .. } => expr.contains_window(),
        }
    }

    /// Does this expression tree contain a subquery?
    pub fn contains_subquery(&self) -> bool {
        match self {
            Expr::Subquery(_) | Expr::InSelect { .. } | Expr::Exists { .. } => true,
            Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => false,
            Expr::Neg(e) | Expr::Not(e) => e.contains_subquery(),
            Expr::Binary { lhs, rhs, .. } => lhs.contains_subquery() || rhs.contains_subquery(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_subquery() || pattern.contains_subquery()
            }
            Expr::IsNull { expr, .. } => expr.contains_subquery(),
            Expr::InList { expr, list, .. } => {
                expr.contains_subquery() || list.iter().any(Expr::contains_subquery)
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_subquery() || lo.contains_subquery() || hi.contains_subquery()
            }
            Expr::Func { args, .. } => args.iter().any(Expr::contains_subquery),
            Expr::Agg { arg, .. } => arg.as_ref().is_some_and(|a| a.contains_subquery()),
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                operand.as_ref().is_some_and(|o| o.contains_subquery())
                    || arms
                        .iter()
                        .any(|(w, t)| w.contains_subquery() || t.contains_subquery())
                    || otherwise.as_ref().is_some_and(|e| e.contains_subquery())
            }
            Expr::Cast { expr, .. } => expr.contains_subquery(),
            Expr::Window(w) => {
                let arg_has = match &w.func {
                    WindowFunc::Agg { arg: Some(a), .. } => a.contains_subquery(),
                    _ => false,
                };
                arg_has
                    || w.partition_by.iter().any(Expr::contains_subquery)
                    || w.order_by.iter().any(|k| k.expr.contains_subquery())
            }
        }
    }
}

/// One item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr {
        /// The expression.
        expr: Expr,
        /// Output column alias.
        alias: Option<String>,
    },
}

/// A table in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in the query.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// A join clause (`JOIN t ON cond`; comma joins become cross joins with the
/// condition folded into WHERE by the parser).
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// The ON condition; `None` for a cross join.
    pub on: Option<Expr>,
    /// True for LEFT OUTER JOIN.
    pub left_outer: bool,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortDir {
    /// ASC (default).
    #[default]
    Asc,
    /// DESC.
    Desc,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression; an integer literal N means "the Nth output column"
    /// (SQL-92 positional sort, which the Appendix A macro relies on).
    pub expr: Expr,
    /// Direction.
    pub dir: SortDir,
}

/// A set operation combining SELECT branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION` (duplicate-eliminating) or `UNION ALL`.
    Union {
        /// Whether ALL was present (keep duplicates).
        all: bool,
    },
    /// `EXCEPT [ALL]` — rows of the left not in the right.
    Except {
        /// Whether ALL was present (bag difference: `max(l - r, 0)` copies).
        all: bool,
    },
    /// `INTERSECT [ALL]` — rows in both.
    Intersect {
        /// Whether ALL was present (bag intersection: `min(l, r)` copies).
        all: bool,
    },
}

/// A full SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Whether DISTINCT was present.
    pub distinct: bool,
    /// Output columns.
    pub items: Vec<SelectItem>,
    /// First FROM table; `None` for table-less `SELECT 1+1`.
    pub from: Option<TableRef>,
    /// Subsequent joins.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count (`FETCH FIRST n ROWS ONLY` also accepted).
    pub limit: Option<usize>,
    /// OFFSET row count.
    pub offset: Option<usize>,
    /// Further branches combined with set operations. ORDER BY/LIMIT on the
    /// *first* branch apply to the combined result (and later branches may
    /// not carry their own).
    pub set_ops: Vec<(SetOp, Select)>,
}

/// A column definition inside CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// PRIMARY KEY constraint (implies NOT NULL and a unique index).
    pub primary_key: bool,
    /// UNIQUE constraint.
    pub unique: bool,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Select is big; statements are transient
pub enum Statement {
    /// SELECT query.
    Select(Select),
    /// INSERT.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, empty = all columns in schema order.
        columns: Vec<String>,
        /// One or more VALUES tuples (empty when `select` is used).
        values: Vec<Vec<Expr>>,
        /// `INSERT INTO t SELECT ...` source, instead of VALUES.
        select: Option<Box<Select>>,
    },
    /// UPDATE.
    Update {
        /// Target table.
        table: String,
        /// `SET col = expr` assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional WHERE.
        where_clause: Option<Expr>,
    },
    /// DELETE.
    Delete {
        /// Target table.
        table: String,
        /// Optional WHERE.
        where_clause: Option<Expr>,
    },
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// IF NOT EXISTS given.
        if_not_exists: bool,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS given.
        if_exists: bool,
    },
    /// CREATE \[UNIQUE\] INDEX.
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// Indexed column.
        column: String,
        /// UNIQUE given.
        unique: bool,
    },
    /// DROP INDEX.
    DropIndex {
        /// Index name.
        name: String,
    },
    /// EXPLAIN — describe the plan of the wrapped statement. With
    /// `analyze`, the statement is also executed and each plan operator is
    /// annotated with its measured rows, loops, and wall time.
    Explain {
        /// EXPLAIN ANALYZE: execute and annotate with actuals.
        analyze: bool,
        /// The statement being explained.
        inner: Box<Statement>,
    },
    /// BEGIN / BEGIN WORK / BEGIN TRANSACTION.
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
}

// ---------------------------------------------------------------------------
// SQL printer. `parse(print(ast)) == ast` for every AST the parser can
// produce: expressions print fully parenthesized (grouping parens do not
// appear in the tree), and literals print in the lexer's own notation.
// ---------------------------------------------------------------------------

/// Format a literal value in re-parseable SQL notation.
fn fmt_literal(f: &mut std::fmt::Formatter<'_>, v: &Value) -> std::fmt::Result {
    match v {
        Value::Null => write!(f, "NULL"),
        Value::Int(i) => write!(f, "{i}"),
        Value::Double(d) => write!(f, "{d:?}"),
        Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
        Value::Date(d) => write!(f, "DATE '{}'", crate::date::format_date(*d)),
    }
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        })
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Literal(v) => fmt_literal(f, v),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Param(_) => write!(f, "?"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Like {
                expr,
                pattern,
                escape,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}LIKE {pattern}",
                    if *negated { "NOT " } else { "" }
                )?;
                if let Some(c) = escape {
                    write!(
                        f,
                        " ESCAPE '{}'",
                        if *c == '\'' {
                            "''".into()
                        } else {
                            c.to_string()
                        }
                    )?;
                }
                write!(f, ")")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                fmt_comma_sep(f, list)?;
                write!(f, "))")
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {lo} AND {hi})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                fmt_comma_sep(f, args)?;
                write!(f, ")")
            }
            Expr::Agg {
                func,
                arg,
                distinct,
            } => match arg {
                Some(a) => write!(
                    f,
                    "{}({}{a})",
                    func.name(),
                    if *distinct { "DISTINCT " } else { "" }
                ),
                None => write!(f, "{}(*)", func.name()),
            },
            Expr::Subquery(s) => write!(f, "({s})"),
            Expr::InSelect {
                expr,
                select,
                negated,
            } => write!(
                f,
                "({expr} {}IN ({select}))",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Exists { select, negated } => write!(
                f,
                "({}EXISTS ({select}))",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (when, then) in arms {
                    write!(f, " WHEN {when} THEN {then}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
            Expr::Window(w) => write!(f, "{w}"),
        }
    }
}

impl std::fmt::Display for WindowExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.func {
            WindowFunc::RowNumber => write!(f, "ROW_NUMBER()")?,
            WindowFunc::Rank => write!(f, "RANK()")?,
            WindowFunc::Agg { func, arg } => match arg {
                Some(a) => write!(f, "{}({a})", func.name())?,
                None => write!(f, "{}(*)", func.name())?,
            },
        }
        write!(f, " OVER (")?;
        let mut space = "";
        if !self.partition_by.is_empty() {
            write!(f, "PARTITION BY ")?;
            fmt_comma_sep(f, &self.partition_by)?;
            space = " ";
        }
        if !self.order_by.is_empty() {
            write!(f, "{space}ORDER BY ")?;
            fmt_comma_sep(f, &self.order_by)?;
        }
        write!(f, ")")
    }
}

fn fmt_comma_sep<T: std::fmt::Display>(
    f: &mut std::fmt::Formatter<'_>,
    items: &[T],
) -> std::fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl std::fmt::Display for OrderKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.dir == SortDir::Desc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for SelectItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

impl std::fmt::Display for TableRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl std::fmt::Display for SetOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetOp::Union { all: false } => write!(f, "UNION"),
            SetOp::Union { all: true } => write!(f, "UNION ALL"),
            SetOp::Except { all: false } => write!(f, "EXCEPT"),
            SetOp::Except { all: true } => write!(f, "EXCEPT ALL"),
            SetOp::Intersect { all: false } => write!(f, "INTERSECT"),
            SetOp::Intersect { all: true } => write!(f, "INTERSECT ALL"),
        }
    }
}

impl Select {
    /// Print one branch: everything except set operations and the hoisted
    /// compound-level ORDER BY / LIMIT / OFFSET (the parser attaches those to
    /// the root, so the printer emits them after the last branch).
    fn fmt_branch(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        fmt_comma_sep(f, &self.items)?;
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
            for join in &self.joins {
                match &join.on {
                    None if !join.left_outer => write!(f, ", {}", join.table)?,
                    on => {
                        let kw = if join.left_outer { "LEFT JOIN" } else { "JOIN" };
                        write!(f, " {kw} {}", join.table)?;
                        if let Some(cond) = on {
                            write!(f, " ON {cond}")?;
                        }
                    }
                }
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            fmt_comma_sep(f, &self.group_by)?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }

    fn fmt_tail(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            fmt_comma_sep(f, &self.order_by)?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        if let Some(n) = self.offset {
            write!(f, " OFFSET {n}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Select {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.fmt_branch(f)?;
        for (op, branch) in &self.set_ops {
            write!(f, " {op} ")?;
            branch.fmt_branch(f)?;
        }
        self.fmt_tail(f)
    }
}

impl std::fmt::Display for Statement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert {
                table,
                columns,
                values,
                select,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if !columns.is_empty() {
                    write!(f, " (")?;
                    fmt_comma_sep(f, columns)?;
                    write!(f, ")")?;
                }
                if let Some(s) = select {
                    write!(f, " {s}")
                } else {
                    write!(f, " VALUES ")?;
                    for (i, tuple) in values.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "(")?;
                        fmt_comma_sep(f, tuple)?;
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (col, expr)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{col} = {expr}")?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                write!(
                    f,
                    "CREATE TABLE {}{name} (",
                    if *if_not_exists { "IF NOT EXISTS " } else { "" }
                )?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", c.name, c.ty)?;
                    if c.primary_key {
                        write!(f, " PRIMARY KEY")?;
                    }
                    if c.not_null && !c.primary_key {
                        write!(f, " NOT NULL")?;
                    }
                    if c.unique {
                        write!(f, " UNIQUE")?;
                    }
                }
                write!(f, ")")
            }
            Statement::DropTable { name, if_exists } => write!(
                f,
                "DROP TABLE {}{name}",
                if *if_exists { "IF EXISTS " } else { "" }
            ),
            Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            } => write!(
                f,
                "CREATE {}INDEX {name} ON {table} ({column})",
                if *unique { "UNIQUE " } else { "" }
            ),
            Statement::DropIndex { name } => write!(f, "DROP INDEX {name}"),
            Statement::Explain { analyze, inner } => write!(
                f,
                "EXPLAIN {}{inner}",
                if *analyze { "ANALYZE " } else { "" }
            ),
            Statement::Begin => write!(f, "BEGIN"),
            Statement::Commit => write!(f, "COMMIT"),
            Statement::Rollback => write!(f, "ROLLBACK"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg = Expr::Agg {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        };
        let nested = Expr::binary(BinOp::Add, Expr::Literal(Value::Int(1)), agg);
        assert!(nested.contains_aggregate());
        assert!(!Expr::Literal(Value::Int(1)).contains_aggregate());
    }

    #[test]
    fn table_ref_effective_name() {
        let t = TableRef {
            name: "urldb".into(),
            alias: Some("u".into()),
        };
        assert_eq!(t.effective_name(), "u");
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::bare("x").to_string(), "x");
        assert_eq!(
            ColumnRef {
                table: Some("t".into()),
                column: "x".into()
            }
            .to_string(),
            "t.x"
        );
    }
}
