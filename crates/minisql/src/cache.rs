//! The engine-side cache layers: prepared statements and SELECT results.
//!
//! Both layers live in a [`DbCaches`] instance shared by every connection to
//! one [`Database`](crate::Database) and sit on the generic
//! [`ShardedCache`] from `dbgw-cache`:
//!
//! * **Statement cache** — normalized SQL text → parsed [`Statement`].
//!   A hit skips tokenizing and parsing entirely; the AST is shared via
//!   `Arc`, so SELECTs execute straight off the cached plan and mutating
//!   statements clone it.
//! * **Result cache** — (normalized SQL, bind values) → materialized
//!   [`ResultSet`], for `SELECT` only. Each entry records the version of
//!   every table the query read (captured under the same read lock that ran
//!   it); a lookup revalidates those versions under the read lock, so any
//!   committed — or merely applied — write to a referenced table makes the
//!   entry invisible immediately. Correctness never depends on the TTL.
//!
//! Keys are built with [`dbgw_cache::normalize_sql`], which canonicalizes
//! whitespace/case only *outside* string literals, and bind values are
//! encoded with explicit type tags and length prefixes so `'1'` and `1`
//! (or adjacent text params) can never alias.

use crate::ast::{Expr, Select, SelectItem, Statement};
use crate::exec::ResultSet;
use crate::state::DbState;
use crate::types::Value;
use dbgw_cache::{CacheConfig, CacheStatsSnapshot, ShardedCache};
use dbgw_obs::Clock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached SELECT result plus the table versions it depends on.
#[derive(Debug, Clone)]
pub(crate) struct CachedSelect {
    /// The materialized rows.
    pub rows: ResultSet,
    /// `(lowercased table, version at read time)` for every referenced
    /// table, sorted and deduped. Empty for table-less SELECTs, which are
    /// always valid.
    pub deps: Vec<(String, u64)>,
}

/// The per-database cache pair plus local counters. Shared by all
/// connections via `Arc`; absent entirely when caching is disabled.
pub struct DbCaches {
    /// Normalized SQL → parsed statement.
    pub(crate) stmts: ShardedCache<Arc<Statement>>,
    /// Result-cache entries (see [`CachedSelect`]).
    pub(crate) results: ShardedCache<Arc<CachedSelect>>,
    /// Lookups rejected because a referenced table's version moved.
    pub(crate) invalidations: AtomicU64,
}

impl DbCaches {
    /// Build both layers from one config. The statement cache gets a small
    /// fixed slice of the budget (ASTs are tiny next to row sets).
    pub fn new(config: &CacheConfig, clock: Arc<dyn Clock>) -> DbCaches {
        let stmt_config = CacheConfig {
            // Statements are not invalidated by writes and parse cheaply;
            // cap the AST cache at 1/8 of the budget (min 64 KiB).
            max_bytes: (config.max_bytes / 8).max(64 * 1024),
            ..config.clone()
        };
        DbCaches {
            stmts: ShardedCache::new(&stmt_config, clock.clone()),
            results: ShardedCache::new(config, clock),
            invalidations: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes resident across both layers.
    pub fn bytes(&self) -> usize {
        self.stmts.bytes() + self.results.bytes()
    }

    /// Snapshot both layers' counters (per-instance, race-free for tests).
    pub fn stats(&self) -> DbCacheStats {
        DbCacheStats {
            statements: self.stmts.stats(),
            results: self.results.stats(),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time counters for one database's cache pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbCacheStats {
    /// Statement-cache counters.
    pub statements: CacheStatsSnapshot,
    /// Result-cache counters.
    pub results: CacheStatsSnapshot,
    /// Result-cache lookups rejected by table-version invalidation.
    pub invalidations: u64,
}

/// Build the result-cache key for a normalized statement and its binds.
///
/// Values are encoded with a type tag and, for text, a length prefix —
/// `t3:abc;` — so no two distinct bind vectors can produce the same key
/// (`["ab","c"]` vs `["a","bc"]`, `1` vs `'1'`, NULL vs `'NULL'`).
pub(crate) fn result_key(normalized_sql: &str, params: &[Value]) -> String {
    let mut key = String::with_capacity(normalized_sql.len() + 16 * params.len() + 1);
    key.push_str(normalized_sql);
    key.push('\0');
    for p in params {
        match p {
            Value::Null => key.push_str("n;"),
            Value::Int(i) => {
                key.push('i');
                key.push_str(&i.to_string());
                key.push(';');
            }
            Value::Double(f) => {
                key.push('f');
                key.push_str(&format!("{:016x}", f.to_bits()));
                key.push(';');
            }
            Value::Text(s) => {
                key.push('t');
                key.push_str(&s.len().to_string());
                key.push(':');
                key.push_str(s);
                key.push(';');
            }
            Value::Date(d) => {
                key.push('d');
                key.push_str(&d.to_string());
                key.push(';');
            }
        }
    }
    key
}

/// Approximate resident size of a result set, for byte-budget accounting.
pub(crate) fn result_cost(rs: &ResultSet) -> usize {
    let mut cost = 32;
    for c in &rs.columns {
        cost += c.len() + 24;
    }
    for row in &rs.rows {
        cost += 24;
        for v in row {
            cost += match v {
                Value::Text(s) => s.len() + 24,
                _ => 16,
            };
        }
    }
    cost
}

/// Every table a SELECT reads (FROM, JOINs, set operations, and subqueries
/// in any expression position), lowercased, sorted, deduped.
pub(crate) fn referenced_tables(sel: &Select) -> Vec<String> {
    let mut out = Vec::new();
    collect_select(sel, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

/// Capture `(table, version)` dependencies for `sel` against `state`.
/// Must be called under the same read lock that runs the query.
pub(crate) fn capture_deps(state: &DbState, sel: &Select) -> Vec<(String, u64)> {
    referenced_tables(sel)
        .into_iter()
        .map(|t| {
            let v = state.version(&t);
            (t, v)
        })
        .collect()
}

/// Are all recorded dependencies still current in `state`?
pub(crate) fn deps_valid(state: &DbState, deps: &[(String, u64)]) -> bool {
    deps.iter().all(|(t, v)| state.version(t) == *v)
}

fn collect_select(sel: &Select, out: &mut Vec<String>) {
    if let Some(t) = &sel.from {
        out.push(t.name.to_ascii_lowercase());
    }
    for join in &sel.joins {
        out.push(join.table.name.to_ascii_lowercase());
        if let Some(on) = &join.on {
            collect_expr(on, out);
        }
    }
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_expr(expr, out);
        }
    }
    if let Some(e) = &sel.where_clause {
        collect_expr(e, out);
    }
    for e in &sel.group_by {
        collect_expr(e, out);
    }
    if let Some(e) = &sel.having {
        collect_expr(e, out);
    }
    for key in &sel.order_by {
        collect_expr(&key.expr, out);
    }
    for (_, s) in &sel.set_ops {
        collect_select(s, out);
    }
}

fn collect_expr(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => {}
        Expr::Neg(e) | Expr::Not(e) => collect_expr(e, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, out);
            collect_expr(rhs, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_expr(expr, out);
            collect_expr(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_expr(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_expr(expr, out);
            for e in list {
                collect_expr(e, out);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_expr(expr, out);
            collect_expr(lo, out);
            collect_expr(hi, out);
        }
        Expr::Func { args, .. } => {
            for e in args {
                collect_expr(e, out);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(e) = arg {
                collect_expr(e, out);
            }
        }
        Expr::Subquery(s) => collect_select(s, out),
        Expr::InSelect { expr, select, .. } => {
            collect_expr(expr, out);
            collect_select(select, out);
        }
        Expr::Exists { select, .. } => collect_select(select, out),
        Expr::Window(w) => {
            if let crate::ast::WindowFunc::Agg { arg: Some(a), .. } = &w.func {
                collect_expr(a, out);
            }
            for e in &w.partition_by {
                collect_expr(e, out);
            }
            for key in &w.order_by {
                collect_expr(&key.expr, out);
            }
        }
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => {
            if let Some(e) = operand {
                collect_expr(e, out);
            }
            for (when, then) in arms {
                collect_expr(when, out);
                collect_expr(then, out);
            }
            if let Some(e) = otherwise {
                collect_expr(e, out);
            }
        }
        Expr::Cast { expr, .. } => collect_expr(expr, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn tables_of(sql: &str) -> Vec<String> {
        match parse(sql).unwrap() {
            Statement::Select(sel) => referenced_tables(&sel),
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn from_and_joins_collected() {
        assert_eq!(tables_of("SELECT * FROM a"), vec!["a"]);
        assert_eq!(
            tables_of("SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y"),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn subqueries_in_every_position_collected() {
        assert_eq!(
            tables_of("SELECT (SELECT MAX(x) FROM s1) FROM a WHERE a.x IN (SELECT x FROM s2)"),
            vec!["a", "s1", "s2"]
        );
        assert_eq!(
            tables_of("SELECT * FROM a WHERE EXISTS (SELECT 1 FROM s3)"),
            vec!["a", "s3"]
        );
    }

    #[test]
    fn set_ops_collected_and_deduped() {
        assert_eq!(
            tables_of("SELECT x FROM a UNION SELECT x FROM b UNION ALL SELECT x FROM a"),
            vec!["a", "b"]
        );
    }

    #[test]
    fn tableless_select_has_no_deps() {
        assert!(tables_of("SELECT 1 + 1").is_empty());
    }

    #[test]
    fn case_insensitive_table_names() {
        assert_eq!(tables_of("SELECT * FROM GUEST"), vec!["guest"]);
    }

    #[test]
    fn result_keys_never_alias_across_types_or_splits() {
        use Value::*;
        let keys: Vec<String> = vec![
            result_key("select ?", &[Int(1)]),
            result_key("select ?", &[Text("1".into())]),
            result_key("select ?", &[Double(1.0)]),
            result_key("select ?", &[Null]),
            result_key("select ?", &[Text("NULL".into())]),
            result_key("select ?", &[Date(1)]),
            result_key("select ?, ?", &[Text("ab".into()), Text("c".into())]),
            result_key("select ?, ?", &[Text("a".into()), Text("bc".into())]),
            result_key("select ?, ?", &[Text("a;b".into()), Text("c".into())]),
            result_key("select ?, ?", &[Text("a".into()), Text("b;c".into())]),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} alias");
            }
        }
    }
}
