//! Checkpoints: rewrite the redo log as a base snapshot.
//!
//! The write-ahead log grows without bound as statements commit; a
//! checkpoint bounds it (and bounds recovery time) by replacing the whole
//! history with an equivalent **base snapshot** — a fresh log whose records
//! recreate the current published state directly. The checkpoint file *is*
//! a WAL: the same magic, framing, and record vocabulary
//! ([`crate::wal`]), just with one synthetic history (DDL first, then every
//! row at its stable [`RowId`]) instead of the real one. Recovery cannot
//! tell the difference, which is the point.
//!
//! # Protocol
//!
//! Writers hold the read side of the persistence barrier across
//! *append → fsync-ack → publish* (see `db.rs`); the checkpointer takes the
//! write side. With the barrier held exclusively, the published snapshot is
//! exactly the replay of the log — no acknowledged-but-unpublished
//! statement can exist — so the checkpointer:
//!
//! 1. pins the published snapshot;
//! 2. serializes it into `wal.tmp` and fsyncs;
//! 3. atomically renames `wal.tmp` over `wal.log` (a crash before the
//!    rename leaves the old log intact; after it, the new one — never a
//!    mix);
//! 4. hands the reopened append handle to the [`Wal`], which resumes
//!    appending where the base records end.
//!
//! Because [`Heap`] row ids are stable (tombstones are never renumbered),
//! the snapshot preserves each row's `RowId` — a log tail written *after*
//! the checkpoint keeps addressing the same rows.
//!
//! A background daemon (spawned by [`Database::open`]) checkpoints whenever
//! the log exceeds `DBGW_CHECKPOINT_BYTES`; [`Database::checkpoint_now`]
//! forces one.
//!
//! [`RowId`]: crate::storage::RowId
//! [`Heap`]: crate::storage::Heap
//! [`Wal`]: crate::wal::Wal
//! [`Database::open`]: crate::Database::open
//! [`Database::checkpoint_now`]: crate::Database::checkpoint_now

use crate::db::DbCore;
use crate::error::{SqlError, SqlResult};
use crate::state::DbState;
use crate::wal::{encode_record, WalOp, LOG_FILE, MAGIC};
use std::io::Write;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

/// The checkpoint's scratch file, renamed over [`LOG_FILE`] on success.
pub const TMP_FILE: &str = "wal.tmp";

/// Row inserts per base record: large enough to amortize framing, small
/// enough that no single record balloons.
const ROWS_PER_RECORD: usize = 512;

/// Serialize a state as base records: one DDL record recreating the catalog
/// (tables in name order; constraint-implied indexes omitted — the CREATE
/// TABLE constraints recreate them), then each table's rows at their
/// original ids, chunked.
pub(crate) fn snapshot_records(state: &DbState) -> Vec<Vec<WalOp>> {
    let mut names: Vec<&String> = state.tables.keys().collect();
    names.sort();
    let mut ddl = Vec::new();
    for name in &names {
        let t = &state.tables[*name];
        ddl.push(WalOp::Ddl {
            sql: crate::dump::create_table_sql(name, &t.schema),
        });
        let mut index_names = t.index_names.clone();
        index_names.sort();
        for idx_name in &index_names {
            if let Some(idx) = state.indexes.get(idx_name) {
                if !crate::dump::implied_by_constraint(idx, &t.schema) {
                    let column = &t.schema.columns[idx.column].name;
                    ddl.push(WalOp::Ddl {
                        sql: crate::dump::create_index_sql(idx, column),
                    });
                }
            }
        }
    }
    let mut records = Vec::new();
    if !ddl.is_empty() {
        records.push(ddl);
    }
    for name in &names {
        let t = &state.tables[*name];
        let mut chunk = Vec::new();
        for (id, row) in t.heap.iter() {
            chunk.push(WalOp::Insert {
                table: (*name).clone(),
                id,
                row: row.clone(),
            });
            if chunk.len() >= ROWS_PER_RECORD {
                records.push(std::mem::take(&mut chunk));
            }
        }
        if !chunk.is_empty() {
            records.push(chunk);
        }
    }
    records
}

/// Run one checkpoint: pin, serialize, fsync, rename, swap the append
/// handle. No-op for in-memory databases and after a simulated crash (the
/// on-disk bytes must stay exactly as the power cut left them).
pub(crate) fn checkpoint_now(core: &DbCore) -> SqlResult<()> {
    let Some(p) = &core.persist else {
        return Ok(());
    };
    if p.wal.crashed() {
        return Ok(());
    }
    // Exclusive barrier: every writer is either fully published or has not
    // yet appended — the pinned snapshot and the log agree.
    let _exclusive = p.barrier.write();
    let state = core.published.load();
    let tmp_path = p.dir.join(TMP_FILE);
    let log_path = p.dir.join(LOG_FILE);
    let mut tmp =
        std::fs::File::create(&tmp_path).map_err(|e| SqlError::io("create checkpoint file", &e))?;
    tmp.write_all(MAGIC)
        .map_err(|e| SqlError::io("write checkpoint header", &e))?;
    let mut written = MAGIC.len() as u64;
    for record in snapshot_records(&state) {
        let bytes = encode_record(&record);
        tmp.write_all(&bytes)
            .map_err(|e| SqlError::io("write checkpoint record", &e))?;
        written += bytes.len() as u64;
    }
    tmp.sync_data()
        .map_err(|e| SqlError::io("sync checkpoint file", &e))?;
    drop(tmp);
    if dbgw_testkit::crash::hit("checkpoint.before_rename") {
        // Simulated power cut between fsync and rename: the old log is
        // still current; the orphaned wal.tmp is what recovery would find
        // (and ignore) after a real crash here.
        return Ok(());
    }
    std::fs::rename(&tmp_path, &log_path).map_err(|e| SqlError::io("install checkpoint", &e))?;
    let file = std::fs::OpenOptions::new()
        .append(true)
        .open(&log_path)
        .map_err(|e| SqlError::io("reopen checkpointed log", &e))?;
    p.wal.swap_file(file, written);
    let m = dbgw_obs::metrics();
    m.checkpoints.inc();
    m.checkpoint_last_bytes.set(written as i64);
    Ok(())
}

/// Background loop: poll the log size every 50 ms, checkpoint past
/// `threshold` bytes, exit when the stop flag is set or the core is gone.
pub(crate) fn checkpoint_daemon(
    core: Weak<DbCore>,
    stop: Arc<(Mutex<bool>, Condvar)>,
    threshold: u64,
) {
    loop {
        {
            let (flag, wake) = &*stop;
            let mut stopped = flag.lock().unwrap_or_else(|e| e.into_inner());
            if !*stopped {
                let (guard, _timeout) = wake
                    .wait_timeout(stopped, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                stopped = guard;
            }
            if *stopped {
                return;
            }
        }
        let Some(core) = core.upgrade() else {
            return;
        };
        if let Some(p) = &core.persist {
            if p.wal.size() > threshold {
                // An IO error here wedges nothing: the log keeps growing
                // and the next poll retries.
                let _ = checkpoint_now(&core);
            }
        }
    }
}
