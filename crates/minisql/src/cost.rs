//! Selectivity estimation and cost-based join ordering.
//!
//! The cost model consumes the per-table statistics of [`crate::stats`] and
//! makes two kinds of decisions:
//!
//! * **Join order** — [`reorder_select`] rewrites an eligible multi-way
//!   inner-join SELECT into the greedy smallest-intermediate order: start
//!   from the table with the smallest *filtered* cardinality, then repeatedly
//!   add the connected table that minimizes the estimated intermediate
//!   result, leaving cross joins for last. The rewrite merges every ON
//!   conjunct and the WHERE clause into one conjunction, so the existing
//!   pushdown/hash-key classifier in [`crate::plan`] re-derives join keys
//!   for the new order; plan choices change performance, never results.
//! * **Access path** — [`probe_worthwhile`] estimates a pushed conjunct's
//!   selectivity and votes against an index probe when the predicate keeps
//!   more than half the table (a full scan touches each row once; a wide
//!   probe touches almost all of them *plus* the index).
//!
//! Estimates use equality selectivity `1/NDV`, histogram interpolation for
//! ranges, and `1/max(NDV_l, NDV_r)` for equi-join edges — the classic
//! System-R repertoire, sized to the statistics the engine actually keeps.

use crate::ast::{BinOp, Expr, Join, Select, SelectItem, TableRef};
use crate::eval::Bindings;
use crate::plan::{conjunct_mask, flatten_and};
use crate::state::DbState;
use crate::types::Value;

/// Default selectivity for predicates the model cannot estimate.
const DEFAULT_SEL: f64 = 0.33;
/// Default selectivity for an equi-join edge with no NDV on either side.
const DEFAULT_EQ_JOIN_SEL: f64 = 0.1;
/// LIKE keeps roughly this fraction (prefix patterns are the common case).
const LIKE_SEL: f64 = 0.1;
/// Above this estimated selectivity an index probe loses to the full scan.
const PROBE_SEL_CEILING: f64 = 0.5;

/// Constant-fold the trivial cases that appear as probe/filter operands
/// after subquery rewriting: literals, parameters, negated literals.
fn const_operand(e: &Expr, params: &[Value]) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Param(i) => params.get(i - 1).cloned(),
        Expr::Neg(inner) => match const_operand(inner, params)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Double(d) => Some(Value::Double(-d)),
            _ => None,
        },
        _ => None,
    }
}

/// A value as a histogram coordinate.
fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Double(d) => Some(*d),
        Value::Date(d) => Some(*d as f64),
        Value::Null | Value::Text(_) => None,
    }
}

/// The column name in `e` if it is a bare reference to `effective`'s table.
fn local_column<'a>(e: &'a Expr, effective: &str) -> Option<&'a str> {
    match e {
        Expr::Column(c)
            if c.table
                .as_ref()
                .is_none_or(|t| t.eq_ignore_ascii_case(effective)) =>
        {
            Some(&c.column)
        }
        _ => None,
    }
}

/// Per-column stats for `column` of `table`, with the table's schema ordinal
/// resolved.
fn column_stats<'a>(
    state: &'a DbState,
    table: &TableRef,
    column: &str,
) -> Option<&'a crate::stats::ColumnStats> {
    let t = state.table(&table.name).ok()?;
    let ordinal = t.schema.column_index(column)?;
    t.stats.as_ref()?.columns.get(ordinal)
}

/// Estimated fraction of `table`'s rows a single-table conjunct keeps.
fn conj_selectivity(state: &DbState, table: &TableRef, conj: &Expr, params: &[Value]) -> f64 {
    let effective = table.effective_name();
    let Some(stats) = state.table(&table.name).ok().and_then(|t| t.stats.as_ref()) else {
        return DEFAULT_SEL;
    };
    let rows = stats.rows.max(1) as f64;
    let col = |e: &Expr| -> Option<&crate::stats::ColumnStats> {
        column_stats(state, table, local_column(e, effective)?)
    };
    match conj {
        Expr::Binary { op, lhs, rhs } => {
            // Normalize to "column op constant".
            let (cs, v, op) = if let (Some(cs), Some(v)) = (col(lhs), const_operand(rhs, params)) {
                (cs, v, *op)
            } else if let (Some(cs), Some(v)) = (col(rhs), const_operand(lhs, params)) {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => *other,
                };
                (cs, v, flipped)
            } else {
                return DEFAULT_SEL;
            };
            if v.is_null() {
                return 0.0; // col op NULL keeps nothing
            }
            let eq_sel = 1.0 / cs.distinct().max(1) as f64;
            match op {
                BinOp::Eq => eq_sel,
                BinOp::Ne => (1.0 - eq_sel).max(0.0),
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let (Some(h), Some(n)) = (cs.histogram.as_ref(), numeric(&v)) else {
                        return DEFAULT_SEL;
                    };
                    let below = h.fraction_below(n);
                    match op {
                        BinOp::Lt => below,
                        BinOp::Le => (below + eq_sel).min(1.0),
                        BinOp::Gt => ((1.0 - below) - eq_sel).max(0.0),
                        _ => 1.0 - below,
                    }
                }
                _ => DEFAULT_SEL,
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let (Some(cs), Some(lo), Some(hi)) = (
                col(expr),
                const_operand(lo, params).as_ref().and_then(numeric),
                const_operand(hi, params).as_ref().and_then(numeric),
            ) else {
                return DEFAULT_SEL;
            };
            let Some(h) = cs.histogram.as_ref() else {
                return DEFAULT_SEL;
            };
            let inside = (h.fraction_below(hi) - h.fraction_below(lo)).clamp(0.0, 1.0);
            if *negated {
                1.0 - inside
            } else {
                inside
            }
        }
        Expr::IsNull { expr, negated } => {
            let Some(cs) = col(expr) else {
                return DEFAULT_SEL;
            };
            let null_frac = cs.nulls as f64 / rows;
            if *negated {
                1.0 - null_frac
            } else {
                null_frac
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let Some(cs) = col(expr) else {
                return DEFAULT_SEL;
            };
            let inside = (list.len() as f64 / cs.distinct().max(1) as f64).clamp(0.0, 1.0);
            if *negated {
                1.0 - inside
            } else {
                inside
            }
        }
        Expr::Like { negated, .. } => {
            if *negated {
                1.0 - LIKE_SEL
            } else {
                LIKE_SEL
            }
        }
        _ => DEFAULT_SEL,
    }
}

/// Should the executor attempt an index probe for `conj` on `table_name`?
/// `false` only when statistics exist *and* say the predicate keeps more
/// than half the table; without stats the pre-existing probe-first behavior
/// is preserved.
pub(crate) fn probe_worthwhile(
    state: &DbState,
    effective: &str,
    table_name: &str,
    conj: &Expr,
    params: &[Value],
) -> bool {
    let table = TableRef {
        name: table_name.to_owned(),
        alias: if effective == table_name {
            None
        } else {
            Some(effective.to_owned())
        },
    };
    let Ok(t) = state.table(table_name) else {
        return true;
    };
    if t.stats.is_none() {
        return true;
    }
    conj_selectivity(state, &table, conj, params) <= PROBE_SEL_CEILING
}

/// The join graph over a SELECT's tables: filtered per-table cardinalities
/// plus pairwise selectivity edges.
struct Graph {
    /// Estimated rows of each table after its single-table conjuncts.
    card: Vec<f64>,
    /// `(table_a, table_b, selectivity)` with `a < b`; multiple conjuncts on
    /// the same pair appear as separate (multiplying) edges.
    edges: Vec<(usize, usize, f64)>,
}

/// Estimated distinct count of `e` when it is a simple column of table `t`.
fn side_ndv(state: &DbState, tables: &[TableRef], t: usize, e: &Expr) -> Option<f64> {
    let table = tables.get(t)?;
    let cs = column_stats(state, table, local_column(e, table.effective_name())?)?;
    Some(cs.distinct().max(1) as f64)
}

/// Selectivity of a two-table join conjunct.
fn edge_selectivity(state: &DbState, tables: &[TableRef], a: usize, b: usize, conj: &Expr) -> f64 {
    if let Expr::Binary {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = conj
    {
        // `l = r`: which side belongs to which table is irrelevant for
        // 1/max(NDV) — try both assignments.
        let ndv_l = side_ndv(state, tables, a, lhs).or_else(|| side_ndv(state, tables, b, lhs));
        let ndv_r = side_ndv(state, tables, a, rhs).or_else(|| side_ndv(state, tables, b, rhs));
        return match (ndv_l, ndv_r) {
            (Some(l), Some(r)) => 1.0 / l.max(r),
            (Some(n), None) | (None, Some(n)) => 1.0 / n,
            (None, None) => DEFAULT_EQ_JOIN_SEL,
        };
    }
    DEFAULT_SEL
}

/// Build the join graph for `sel`, whose FROM-clause tables are `tables`.
/// `None` when any table is unknown (the executor will produce the error).
fn build_graph(
    state: &DbState,
    sel: &Select,
    tables: &[TableRef],
    params: &[Value],
) -> Option<Graph> {
    let mut bindings: Option<Bindings> = None;
    for t in tables {
        let cols: Vec<String> = state
            .table(&t.name)
            .ok()?
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        match &mut bindings {
            None => bindings = Some(Bindings::single(t.effective_name(), cols)),
            Some(b) => b.push_table(t.effective_name(), cols),
        }
    }
    let bindings = bindings?;

    let mut conjuncts: Vec<&Expr> = Vec::new();
    for join in &sel.joins {
        if let Some(on) = &join.on {
            flatten_and(on, &mut conjuncts);
        }
    }
    if let Some(w) = &sel.where_clause {
        flatten_and(w, &mut conjuncts);
    }

    let mut card: Vec<f64> = Vec::with_capacity(tables.len());
    for t in tables {
        let rows = match state.table(&t.name).ok()?.stats.as_ref() {
            Some(s) => s.rows as f64,
            None => state.table(&t.name).ok()?.heap.len() as f64,
        };
        card.push(rows.max(1.0));
    }
    let mut edges = Vec::new();
    for conj in conjuncts {
        let Some(mask) = conjunct_mask(conj, &bindings) else {
            continue; // unclassifiable: no effect on the estimate
        };
        match mask.count_ones() {
            1 => {
                let t = mask.trailing_zeros() as usize;
                card[t] *= conj_selectivity(state, &tables[t], conj, params);
            }
            2 => {
                let a = mask.trailing_zeros() as usize;
                let b = 63 - mask.leading_zeros() as usize;
                edges.push((a, b, edge_selectivity(state, tables, a, b, conj)));
            }
            _ => {} // 0 tables (constant) or 3+: no effect on the estimate
        }
    }
    for c in card.iter_mut() {
        *c = c.max(1.0);
    }
    Some(Graph { card, edges })
}

/// Greedy smallest-intermediate join order over `g`: seed with the smallest
/// filtered table, then repeatedly append the (preferably connected) table
/// that minimizes the running intermediate cardinality. Ties break on the
/// lower syntactic position, keeping the choice deterministic.
fn greedy_order(g: &Graph) -> Vec<usize> {
    let n = g.card.len();
    let mut order = Vec::with_capacity(n);
    let mut chosen = vec![false; n];
    let start = (0..n)
        .min_by(|&a, &b| g.card[a].total_cmp(&g.card[b]).then(a.cmp(&b)))
        .expect("at least one table");
    order.push(start);
    chosen[start] = true;
    let mut cur = g.card[start];
    while order.len() < n {
        let step = |j: usize| -> f64 {
            let mut est = cur * g.card[j];
            for &(a, b, sel) in &g.edges {
                if (a == j && chosen[b]) || (b == j && chosen[a]) {
                    est *= sel;
                }
            }
            est
        };
        let connected = |j: usize| {
            g.edges
                .iter()
                .any(|&(a, b, _)| (a == j && chosen[b]) || (b == j && chosen[a]))
        };
        let candidates: Vec<usize> = {
            let linked: Vec<usize> = (0..n).filter(|&j| !chosen[j] && connected(j)).collect();
            if linked.is_empty() {
                (0..n).filter(|&j| !chosen[j]).collect() // cross joins last
            } else {
                linked
            }
        };
        let next = candidates
            .into_iter()
            .min_by(|&a, &b| step(a).total_cmp(&step(b)).then(a.cmp(&b)))
            .expect("candidates nonempty");
        cur = step(next).max(1.0);
        order.push(next);
        chosen[next] = true;
    }
    order
}

/// Cumulative estimated rows along `sel`'s syntactic join order: element 0
/// is the filtered base scan, element `j + 1` the result after join `j`.
pub(crate) fn estimate_steps(state: &DbState, sel: &Select, params: &[Value]) -> Option<Vec<f64>> {
    let tables = from_tables(sel)?;
    let g = build_graph(state, sel, &tables, params)?;
    let mut steps = Vec::with_capacity(tables.len());
    let mut cur = g.card[0];
    steps.push(cur);
    for j in 1..tables.len() {
        let mut est = cur * g.card[j];
        for &(a, b, sel) in &g.edges {
            if (a < j && b == j) || (b < j && a == j) {
                est *= sel;
            }
        }
        cur = est.max(1.0);
        steps.push(cur);
    }
    Some(steps)
}

/// The FROM-clause tables of `sel` in syntactic order, or `None` for a
/// table-less SELECT.
fn from_tables(sel: &Select) -> Option<Vec<TableRef>> {
    let base = sel.from.as_ref()?;
    let mut tables = vec![base.clone()];
    tables.extend(sel.joins.iter().map(|j| j.table.clone()));
    Some(tables)
}

/// Rewrite `sel` into the cost model's join order, or `None` when the query
/// is ineligible or the chosen order is already the syntactic one.
///
/// Eligible queries have ≥ 3 tables, inner joins only, no bare `*` (whose
/// output column order is the join order), and pairwise-distinct effective
/// table names. The rewrite permutes FROM/JOIN, drops every ON, and merges
/// all ON conjuncts with the WHERE clause into a single conjunction — the
/// planner's conjunct classifier then re-places each predicate (pushdown,
/// hash keys, residual) for the new order, so results are unchanged.
pub(crate) fn reorder_select(state: &DbState, sel: &Select, params: &[Value]) -> Option<Select> {
    if sel.joins.len() < 2 {
        return None;
    }
    if sel.joins.iter().any(|j| j.left_outer) {
        return None;
    }
    if sel.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
        return None;
    }
    let tables = from_tables(sel)?;
    for (i, a) in tables.iter().enumerate() {
        for b in &tables[..i] {
            if a.effective_name().eq_ignore_ascii_case(b.effective_name()) {
                return None;
            }
        }
    }
    let g = build_graph(state, sel, &tables, params)?;
    let order = greedy_order(&g);
    if order.iter().copied().eq(0..tables.len()) {
        return None;
    }

    let mut merged: Option<Expr> = None;
    let mut push = |e: &Expr| {
        merged = Some(match merged.take() {
            Some(acc) => Expr::binary(BinOp::And, acc, e.clone()),
            None => e.clone(),
        });
    };
    for join in &sel.joins {
        if let Some(on) = &join.on {
            let mut conjs = Vec::new();
            flatten_and(on, &mut conjs);
            for c in conjs {
                push(c);
            }
        }
    }
    if let Some(w) = &sel.where_clause {
        let mut conjs = Vec::new();
        flatten_and(w, &mut conjs);
        for c in conjs {
            push(c);
        }
    }

    let mut out = sel.clone();
    out.from = Some(tables[order[0]].clone());
    out.joins = order[1..]
        .iter()
        .map(|&k| Join {
            table: tables[k].clone(),
            on: None,
            left_outer: false,
        })
        .collect();
    out.where_clause = merged;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::db::Database;
    use crate::parser::parse;

    fn sel(sql: &str) -> Select {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    /// Three tables sized so the syntactic order is maximally wrong:
    /// `big` (1000 rows, 10 distinct k), `mid` (1000 unique ids), `small`
    /// (10 rows referencing mid ids).
    fn join_db() -> Database {
        let db = Database::new();
        db.run_script(
            "CREATE TABLE big (id INTEGER PRIMARY KEY, k INTEGER);
             CREATE TABLE mid (id INTEGER PRIMARY KEY, k INTEGER);
             CREATE TABLE small (id INTEGER PRIMARY KEY, mid_id INTEGER);",
        )
        .unwrap();
        let mut conn = db.connect();
        conn.execute("BEGIN").unwrap();
        for i in 0..1000 {
            conn.execute_with_params(
                "INSERT INTO big VALUES (?, ?)",
                &[Value::Int(i), Value::Int(i % 10)],
            )
            .unwrap();
            conn.execute_with_params(
                "INSERT INTO mid VALUES (?, ?)",
                &[Value::Int(i), Value::Int(i % 10)],
            )
            .unwrap();
        }
        for i in 0..10 {
            conn.execute_with_params(
                "INSERT INTO small VALUES (?, ?)",
                &[Value::Int(i), Value::Int(i * 97)],
            )
            .unwrap();
        }
        conn.execute("COMMIT").unwrap();
        db
    }

    #[test]
    fn reorder_starts_from_smallest_table() {
        let db = join_db();
        let snapshot = db.pin();
        let s = sel("SELECT big.id FROM big \
             JOIN mid ON big.k = mid.k \
             JOIN small ON small.mid_id = mid.id");
        let reordered = reorder_select(&snapshot, &s, &[]).expect("should reorder");
        assert_eq!(reordered.from.as_ref().unwrap().name, "small");
        // All ONs merged into WHERE; joins carry no ON of their own.
        assert!(reordered.joins.iter().all(|j| j.on.is_none()));
        assert!(reordered.where_clause.is_some());
    }

    #[test]
    fn identity_order_returns_none() {
        let db = join_db();
        let snapshot = db.pin();
        let s = sel("SELECT small.id FROM small \
             JOIN mid ON small.mid_id = mid.id \
             JOIN big ON mid.k = big.k");
        assert!(reorder_select(&snapshot, &s, &[]).is_none());
    }

    #[test]
    fn outer_joins_and_bare_star_are_ineligible() {
        let db = join_db();
        let snapshot = db.pin();
        let outer = sel("SELECT big.id FROM big JOIN mid ON big.k = mid.k \
             LEFT JOIN small ON small.mid_id = mid.id");
        assert!(reorder_select(&snapshot, &outer, &[]).is_none());
        let star = sel("SELECT * FROM big JOIN mid ON big.k = mid.k \
             JOIN small ON small.mid_id = mid.id");
        assert!(reorder_select(&snapshot, &star, &[]).is_none());
    }

    #[test]
    fn estimate_steps_shrink_with_selective_predicates() {
        let db = join_db();
        let snapshot = db.pin();
        let s = sel("SELECT big.id FROM big JOIN mid ON big.id = mid.id WHERE big.id = 7");
        let steps = estimate_steps(&snapshot, &s, &[]).unwrap();
        assert_eq!(steps.len(), 2);
        // big.id is unique: the filtered base estimate is ~1 row.
        assert!(steps[0] <= 2.0, "base estimate {} too high", steps[0]);
    }

    #[test]
    fn probe_not_worthwhile_for_wide_range() {
        let db = join_db();
        let snapshot = db.pin();
        // id > 5 keeps ~99.5% of big: scanning wins over probing.
        let wide = sel("SELECT id FROM big WHERE id > 5");
        let narrow = sel("SELECT id FROM big WHERE id = 5");
        let wide_conj = wide.where_clause.unwrap();
        let narrow_conj = narrow.where_clause.unwrap();
        assert!(!probe_worthwhile(&snapshot, "big", "big", &wide_conj, &[]));
        assert!(probe_worthwhile(&snapshot, "big", "big", &narrow_conj, &[]));
    }
}
