//! CSV import/export for tables.
//!
//! The 1996 workflow for populating a web-facing DB2 table was a bulk load
//! from flat files; this module is the equivalent for the substrate, and the
//! benchmark harness uses it to snapshot generated datasets. The dialect is
//! RFC-4180-ish: comma separator, `"` quoting with `""` escaping, first row
//! is the header. NULL is an *unquoted* empty field; an empty string must be
//! quoted (`""`), so the round trip is lossless.

use crate::db::Database;
use crate::error::{SqlError, SqlResult};
use crate::types::Value;

/// Serialize one field.
fn write_field(out: &mut String, value: &Value) {
    match value {
        Value::Null => {} // unquoted empty == NULL
        other => {
            let text = other.to_display_string();
            // Text must be quoted when it could be mistaken for something
            // else on import: empty (NULL ambiguity), separators/quotes, or
            // numeric-looking content (type-guess ambiguity).
            let needs_quotes = matches!(other, Value::Text(_))
                && (text.is_empty()
                    || text.contains(',')
                    || text.contains('"')
                    || text.contains('\n')
                    || text.contains('\r')
                    || text.trim() != text
                    || text.parse::<f64>().is_ok()
                    || text.parse::<i64>().is_ok()
                    || crate::date::parse_date(&text).is_some());
            if needs_quotes {
                out.push('"');
                for ch in text.chars() {
                    if ch == '"' {
                        out.push('"');
                    }
                    out.push(ch);
                }
                out.push('"');
            } else {
                out.push_str(&text);
            }
        }
    }
}

/// Export a whole table (header + rows, `\n` line endings).
pub fn export_table(db: &Database, table: &str) -> SqlResult<String> {
    let mut conn = db.connect();
    let result = conn.execute(&format!("SELECT * FROM {table}"))?;
    let rs = result
        .rows()
        .ok_or_else(|| SqlError::syntax("export expected a result set"))?;
    let mut out = String::new();
    out.push_str(&rs.columns.join(","));
    out.push('\n');
    for row in &rs.rows {
        for (i, value) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, value);
        }
        out.push('\n');
    }
    Ok(out)
}

/// One parsed field: `None` is NULL (unquoted empty); otherwise the text and
/// whether it was quoted (quoted fields are always imported as text).
type Field = Option<(String, bool)>;
/// One parsed CSV record.
type Record = Vec<Field>;

/// Parse CSV text into records.
fn parse_csv(text: &str) -> SqlResult<Vec<Record>> {
    let mut records = Vec::new();
    let mut record: Record = Vec::new();
    let mut field = String::new();
    let mut quoted = false; // the *current* field was opened with a quote
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    loop {
        let ch = chars.next();
        match ch {
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if field.is_empty() && !quoted => {
                quoted = true;
                in_quotes = true;
            }
            Some('"') => {
                return Err(SqlError::syntax("stray quote inside unquoted CSV field"));
            }
            Some(',') if !in_quotes => {
                record.push(finish_field(&mut field, &mut quoted));
            }
            Some('\r') if !in_quotes => {} // tolerate CRLF
            Some('\n') if !in_quotes => {
                record.push(finish_field(&mut field, &mut quoted));
                records.push(std::mem::take(&mut record));
            }
            Some(c) => field.push(c),
            None => {
                if in_quotes {
                    return Err(SqlError::syntax("unterminated quoted CSV field"));
                }
                if !field.is_empty() || quoted || !record.is_empty() {
                    record.push(finish_field(&mut field, &mut quoted));
                    records.push(record);
                }
                return Ok(records);
            }
        }
    }
}

fn finish_field(field: &mut String, quoted: &mut bool) -> Field {
    let text = std::mem::take(field);
    let was_quoted = std::mem::take(quoted);
    if text.is_empty() && !was_quoted {
        None // unquoted empty == NULL
    } else {
        Some((text, was_quoted))
    }
}

/// Import CSV into an existing table.
///
/// The header row must name a subset of the table's columns (any order);
/// values are coerced per column type — numeric columns parse their text,
/// everything loads inside one transaction (all-or-nothing).
pub fn import_table(db: &Database, table: &str, csv: &str) -> SqlResult<usize> {
    let records = parse_csv(csv)?;
    let Some((header, data)) = records.split_first() else {
        return Ok(0);
    };
    let columns: Vec<String> = header
        .iter()
        .map(|f| {
            f.clone()
                .map(|(name, _)| name)
                .ok_or_else(|| SqlError::syntax("CSV header may not contain empty names"))
        })
        .collect::<SqlResult<_>>()?;
    let column_list = columns.join(", ");
    let markers = vec!["?"; columns.len()].join(", ");
    let insert = format!("INSERT INTO {table} ({column_list}) VALUES ({markers})");

    // Column types for coercion, from a zero-row probe.
    let mut conn = db.connect();
    conn.execute("BEGIN")?;
    let mut loaded = 0usize;
    for (line_no, record) in data.iter().enumerate() {
        if record.len() != columns.len() {
            conn.execute("ROLLBACK")?;
            return Err(SqlError::syntax(format!(
                "CSV row {} has {} fields, header has {}",
                line_no + 2,
                record.len(),
                columns.len()
            )));
        }
        let params: Vec<Value> = record
            .iter()
            .map(|f| match f {
                None => Value::Null,
                // Quoted fields are literal text; only bare fields get the
                // numeric type guess.
                Some((text, true)) => Value::Text(text.clone()),
                Some((text, false)) => coerce(text),
            })
            .collect();
        if let Err(e) = conn.execute_with_params(&insert, &params) {
            conn.execute("ROLLBACK")?;
            return Err(e);
        }
        loaded += 1;
    }
    conn.execute("COMMIT")?;
    Ok(loaded)
}

/// Guess an *unquoted* field's type from its text: integer, then float, then
/// date, else text. Export quotes any text that would round-trip wrong, so
/// the guess is only ever applied to fields that genuinely carry numbers,
/// dates, or plain words.
fn coerce(text: &str) -> Value {
    if let Ok(i) = text.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(d) = text.parse::<f64>() {
        if text.chars().any(|c| c.is_ascii_digit()) {
            return Value::Double(d);
        }
    }
    if let Some(days) = crate::date::parse_date(text) {
        return Value::Date(days);
    }
    Value::Text(text.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        db.run_script(
            "CREATE TABLE t (id INTEGER, name VARCHAR(40), score DOUBLE);
             INSERT INTO t VALUES (1, 'plain', 1.5),
                                  (2, 'comma, quoted', NULL),
                                  (3, NULL, -2.0),
                                  (4, 'say ''\"hi\"''', 0.25),
                                  (5, '', 9.0);",
        )
        .unwrap();
        db
    }

    #[test]
    fn export_shape() {
        let csv = export_table(&db(), "t").unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("id,name,score"));
        assert_eq!(lines.next(), Some("1,plain,1.5"));
        assert_eq!(lines.next(), Some("2,\"comma, quoted\","));
        assert_eq!(lines.next(), Some("3,,-2.0"));
        assert_eq!(lines.next(), Some("4,\"say '\"\"hi\"\"'\",0.25"));
        assert_eq!(lines.next(), Some("5,\"\",9.0"));
    }

    #[test]
    fn round_trip_preserves_everything_including_null_vs_empty() {
        let source = db();
        let csv = export_table(&source, "t").unwrap();
        let dest = Database::new();
        dest.run_script("CREATE TABLE t (id INTEGER, name VARCHAR(40), score DOUBLE)")
            .unwrap();
        assert_eq!(import_table(&dest, "t", &csv).unwrap(), 5);
        assert_eq!(export_table(&dest, "t").unwrap(), csv);
    }

    #[test]
    fn import_subset_of_columns_any_order() {
        let dest = Database::new();
        dest.run_script("CREATE TABLE t (id INTEGER, name VARCHAR(40), score DOUBLE)")
            .unwrap();
        let n = import_table(&dest, "t", "name,id\nAda,1\nBob,2\n").unwrap();
        assert_eq!(n, 2);
        let mut conn = dest.connect();
        let r = conn.execute("SELECT score FROM t").unwrap();
        assert!(r.rows().unwrap().rows.iter().all(|row| row[0].is_null()));
    }

    #[test]
    fn import_is_atomic_on_failure() {
        let dest = Database::new();
        dest.run_script("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(40))")
            .unwrap();
        let err = import_table(&dest, "t", "id,name\n1,a\n1,dup\n").unwrap_err();
        assert_eq!(err.code, crate::error::SqlCode::DUPLICATE_KEY);
        assert_eq!(dest.table_len("t").unwrap(), 0);
    }

    #[test]
    fn malformed_csv_rejected() {
        let dest = Database::new();
        dest.run_script("CREATE TABLE t (id INTEGER)").unwrap();
        assert!(import_table(&dest, "t", "id\n\"unterminated").is_err());
        assert!(import_table(&dest, "t", "id\n1,2\n").is_err()); // arity
    }

    #[test]
    fn numeric_and_date_looking_text_round_trips_as_text() {
        let db = Database::new();
        db.run_script("CREATE TABLE t (v VARCHAR(20))").unwrap();
        let mut conn = db.connect();
        for s in ["42", "3.5", "1996-06-04", "-7"] {
            conn.execute_with_params("INSERT INTO t VALUES (?)", &[Value::Text(s.into())])
                .unwrap();
        }
        let csv = export_table(&db, "t").unwrap();
        assert!(csv.contains("\"42\""), "{csv}");
        let dest = Database::new();
        dest.run_script("CREATE TABLE t (v VARCHAR(20))").unwrap();
        import_table(&dest, "t", &csv).unwrap();
        assert!(crate::dump::databases_equal(&db, &dest).unwrap());
    }

    #[test]
    fn unquoted_dates_import_as_dates() {
        let db = Database::new();
        db.run_script("CREATE TABLE e (d DATE)").unwrap();
        assert_eq!(import_table(&db, "e", "d\n1996-06-04\n").unwrap(), 1);
        let mut conn = db.connect();
        let r = conn.execute("SELECT YEAR(d) FROM e").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(1996));
    }

    #[test]
    fn crlf_accepted() {
        let dest = Database::new();
        dest.run_script("CREATE TABLE t (id INTEGER)").unwrap();
        assert_eq!(import_table(&dest, "t", "id\r\n7\r\n").unwrap(), 1);
    }

    #[test]
    fn empty_csv_loads_nothing() {
        let dest = Database::new();
        dest.run_script("CREATE TABLE t (id INTEGER)").unwrap();
        assert_eq!(import_table(&dest, "t", "").unwrap(), 0);
    }
}
