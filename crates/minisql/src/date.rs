//! Civil-date arithmetic: days-since-epoch ↔ (year, month, day).
//!
//! The DATE type stores days since 1970-01-01 (proleptic Gregorian). The
//! conversions are Howard Hinnant's `days_from_civil` / `civil_from_days`
//! algorithms, exact over the full supported range.

/// Days since 1970-01-01 for a civil date. Returns `None` for invalid
/// month/day combinations (including bad leap days).
pub fn days_from_civil(year: i32, month: u32, day: u32) -> Option<i64> {
    if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
        return None;
    }
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let doy = i64::from((153 * (if month > 2 { month - 3 } else { month + 9 }) + 2) / 5 + day - 1);
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some(era * 146_097 + doe - 719_468)
}

/// Civil date for days since 1970-01-01.
pub fn civil_from_days(days: i64) -> (i32, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Days in a month, honoring leap years.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Gregorian leap-year rule.
pub fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Parse `YYYY-MM-DD` into days since epoch.
pub fn parse_date(text: &str) -> Option<i64> {
    let mut parts = text.trim().split('-');
    // A leading '-' means a negative year; keep it simple: years >= 0 only.
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    days_from_civil(year, month, day)
}

/// Format days since epoch as `YYYY-MM-DD`.
pub fn format_date(days: i64) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_and_known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), Some(0));
        assert_eq!(days_from_civil(1970, 1, 2), Some(1));
        assert_eq!(days_from_civil(1969, 12, 31), Some(-1));
        // SIGMOD '96 was in June 1996.
        assert_eq!(days_from_civil(1996, 6, 4), Some(9651));
        assert_eq!(civil_from_days(9651), (1996, 6, 4));
    }

    #[test]
    fn round_trip_across_centuries() {
        for days in (-200_000..200_000).step_by(373) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), Some(days), "{y}-{m}-{d}");
        }
    }

    #[test]
    fn leap_rules() {
        assert!(is_leap(1996));
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(!is_leap(1995));
        assert_eq!(days_in_month(1996, 2), 29);
        assert_eq!(days_in_month(1995, 2), 28);
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_date("1996-06-04"), Some(9651));
        assert_eq!(format_date(9651), "1996-06-04");
        assert_eq!(parse_date(" 1970-01-01 "), Some(0));
        assert_eq!(parse_date("1996-02-30"), None);
        assert_eq!(parse_date("1996-13-01"), None);
        assert_eq!(parse_date("1996-06"), None);
        assert_eq!(parse_date("1996-06-04-01"), None);
        assert_eq!(parse_date("not a date"), None);
        assert_eq!(format_date(parse_date("0071-01-01").unwrap()), "0071-01-01");
    }
}
