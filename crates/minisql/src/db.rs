//! The database façade: connections, statement execution, transactions.
//!
//! Mirrors what the gateway needed from DB2's dynamic SQL interface:
//! PREPARE/EXECUTE of arbitrary SQL strings, result sets with named columns,
//! SQLCODEs, and two transaction modes —
//!
//! * **auto-commit** (each statement its own transaction), and
//! * **explicit** (`BEGIN` … `COMMIT`/`ROLLBACK`, everything undone on
//!   rollback) — the paper's "all SQL statements in a macro are executed as a
//!   single transaction (i.e., a rollback will occur if any SQL statement
//!   fails)" mode (§5).
//!
//! Every statement is *statement-atomic* in both modes: a multi-row INSERT
//! that fails on row 3 leaves no trace of rows 1–2.
//!
//! # Concurrency: snapshot reads, per-table write latches
//!
//! There is no global database lock. The current state lives in a
//! [`SnapshotCell`]; queries *pin* one immutable `Arc<DbState>` and run
//! against it lock-free for their whole lifetime — a reader can never block a
//! writer, observe a torn multi-row state, or be blocked by one.
//!
//! Writers:
//!
//! 1. acquire short **per-table exclusive latches** for the statement's write
//!    set, always in sorted name order (the catalog latch `""` sorts before
//!    every table name), so writer-writer deadlock is impossible;
//! 2. shallow-clone the published state and mutate the working copy
//!    copy-on-write (only tables/indexes actually touched are deep-cloned);
//! 3. **publish** atomically: an RCU step re-reads the then-current state and
//!    patches in exactly the entries this writer changed (diffed against its
//!    base by `Arc` pointer identity), so concurrent writers on disjoint
//!    tables never overwrite each other's publications.
//!
//! A failed statement simply drops its working copy — statement atomicity
//! without touching the published state. DDL additionally holds the catalog
//! latch, serialising changes to the *set* of tables and indexes.
//!
//! Transactions provide atomicity via an undo log, not cross-statement
//! isolation — faithful to the original system, where each CGI request was a
//! short single-threaded process: between the statements of an explicit
//! transaction, other connections' commits remain visible (read-committed),
//! and ROLLBACK re-latches the touched tables to undo in reverse.
//!
//! # Durability
//!
//! [`Database::new`] is purely in-memory, as before. [`Database::open`]
//! adds a durable write path: the write sequence becomes *latch → mutate →
//! log → fsync-ack → publish*. After a statement's working copy is built
//! (step 2 above), its effects are serialized as logical redo records and
//! appended to the write-ahead log ([`crate::wal`]); only once the
//! group-commit daemon acknowledges them as durable does the writer
//! publish. A statement whose log append fails reports SQLCODE −904 and
//! publishes nothing — readers can never observe state that would not
//! survive a crash. ROLLBACK logs its compensating images the same way.
//! Recovery ([`crate::recovery`]) and background checkpoints
//! ([`crate::checkpoint`]) complete the lifecycle.

use crate::ast::Statement;
use crate::cache::{self, CachedSelect, DbCacheStats, DbCaches};
use crate::error::{SqlCode, SqlError, SqlResult};
use crate::eval::{eval, eval_truth, Bindings, NoAggregates};
use crate::exec::{run_select, ResultSet};
use crate::index::Index;
use crate::parser::{parse, parse_script};
use crate::schema::TableSchema;
use crate::state::{DbState, TableData};
use crate::storage::{Heap, Row, RowId};
use crate::sync::{LatchSet, LatchTable, SnapshotCell, CATALOG_LATCH};
use crate::types::Value;
use crate::wal::{DurabilityConfig, Wal, WalOp};
use dbgw_cache::{CacheConfig, Lookup};
use dbgw_obs::{Clock, RequestCtx};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// A SELECT produced a result set.
    Rows(ResultSet),
    /// DML touched this many rows.
    Count(usize),
    /// DDL succeeded.
    Ddl,
    /// BEGIN/COMMIT/ROLLBACK processed.
    TxnControl,
}

impl ExecResult {
    /// The SQLCODE this outcome reports to `%SQL_MESSAGE` handlers: `+100`
    /// for empty results / zero-row DML, `0` otherwise.
    pub fn sqlcode(&self) -> SqlCode {
        match self {
            ExecResult::Rows(r) if r.is_empty() => SqlCode::NO_DATA,
            ExecResult::Count(0) => SqlCode::NO_DATA,
            _ => SqlCode::SUCCESS,
        }
    }

    /// The result set, if this was a query.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            ExecResult::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// One undo record; applied in reverse on rollback.
///
/// Dropped catalog objects are kept behind their original `Arc`s, so holding
/// an undo log costs pointers, not copies of table data.
///
/// The undo log is also the source of the WAL's *redo* records: each entry
/// names the row or object a statement touched, and [`redo_ops`] pairs it
/// with the final image from the working copy.
#[derive(Debug)]
pub(crate) enum Undo {
    Insert {
        table: String,
        id: RowId,
    },
    Update {
        table: String,
        id: RowId,
        old: Row,
    },
    Delete {
        table: String,
        id: RowId,
        old: Row,
    },
    CreateTable {
        name: String,
    },
    DropTable {
        name: String,
        data: Arc<TableData>,
        indexes: Vec<Arc<Index>>,
    },
    CreateIndex {
        name: String,
        table: String,
    },
    DropIndex {
        index: Arc<Index>,
    },
}

/// Poison-recovering lock on a std mutex (same posture as `dbgw_sync`: a
/// panicking daemon must not wedge shutdown).
fn std_lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Durable-write machinery shared by every connection of one database:
/// the write-ahead log, the checkpoint barrier, and the checkpoint daemon's
/// lifecycle. Absent (`None` in [`DbCore`]) for purely in-memory databases,
/// whose write path skips straight from mutation to publication.
pub(crate) struct Persistence {
    /// The append-only redo log (group-commit daemon inside).
    pub(crate) wal: Arc<Wal>,
    /// Checkpoint barrier. Writers hold the **read** side across
    /// append → fsync-ack → publish; the checkpointer takes the **write**
    /// side, so the snapshot it pins is exactly the replay of the log it
    /// rewrites — no statement can be durable-but-unpublished (or the
    /// reverse) while the log is being swapped.
    pub(crate) barrier: crate::sync::RwLock<()>,
    /// The data directory (`wal.log` and the checkpoint's `wal.tmp` live
    /// here).
    pub(crate) dir: PathBuf,
    /// Stop flag + wakeup for the checkpoint daemon.
    stop: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    /// The checkpoint daemon's handle, joined at shutdown.
    checkpointer: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Persistence {
    /// Stop the checkpoint daemon, flush the log, stop the group-commit
    /// daemon. Idempotent; called from [`DbCore`]'s `Drop` and from
    /// [`Database::close`]. Writes after this fail with SQLCODE −904.
    pub(crate) fn shutdown(&self) {
        {
            let (flag, wake) = &*self.stop;
            *std_lock(flag) = true;
            wake.notify_all();
        }
        if let Some(handle) = std_lock(&self.checkpointer).take() {
            // The last `Arc<DbCore>` can die on the checkpoint daemon's own
            // thread (it briefly upgrades its weak reference); joining
            // ourselves would deadlock, and the thread is about to exit
            // anyway — detach instead.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
        self.wal.shutdown();
    }
}

/// The shared engine core: the published snapshot plus the write latches.
pub(crate) struct DbCore {
    /// The current committed state. Readers pin it; writers replace it.
    pub(crate) published: SnapshotCell<DbState>,
    /// Per-table exclusive write latches (plus the catalog latch).
    pub(crate) latches: LatchTable,
    /// The durable write path, when this database was [`Database::open`]ed
    /// from a data directory.
    pub(crate) persist: Option<Arc<Persistence>>,
}

impl Drop for DbCore {
    fn drop(&mut self) {
        if let Some(p) = &self.persist {
            p.shutdown();
        }
    }
}

impl DbCore {
    fn new() -> DbCore {
        DbCore {
            published: SnapshotCell::new(DbState::default()),
            latches: LatchTable::new(),
            persist: None,
        }
    }

    /// Atomically publish a writer's working copy.
    ///
    /// `work` was cloned from `base` and mutated under this writer's latches.
    /// The RCU step re-reads the *current* state (which may have advanced —
    /// concurrent writers on other tables publish freely) and patches in only
    /// the entries this writer changed, found by diffing `work` against
    /// `base` with `Arc` pointer identity. Safety invariant: every differing
    /// entry belongs to a table whose latch this writer holds, so no other
    /// writer can have touched it since `base` was loaded.
    fn publish(&self, base: &Arc<DbState>, work: DbState) {
        #[cfg(test)]
        tests::PANIC_IN_PUBLISH.with(|f| {
            if f.replace(false) {
                panic!("injected: writer dies inside publication");
            }
        });
        let epoch = self.published.rcu(move |current| {
            let mut next = (**current).clone();
            for (name, arc) in &work.tables {
                if base.tables.get(name).map_or(true, |b| !Arc::ptr_eq(b, arc)) {
                    next.tables.insert(name.clone(), Arc::clone(arc));
                }
            }
            for name in base.tables.keys() {
                if !work.tables.contains_key(name) {
                    next.tables.remove(name);
                }
            }
            for (name, arc) in &work.indexes {
                if base
                    .indexes
                    .get(name)
                    .map_or(true, |b| !Arc::ptr_eq(b, arc))
                {
                    next.indexes.insert(name.clone(), Arc::clone(arc));
                }
            }
            for name in base.indexes.keys() {
                if !work.indexes.contains_key(name) {
                    next.indexes.remove(name);
                }
            }
            // Version counters only ever grow and are never removed (a
            // dropped table's counter must survive — see DbState::versions).
            for (name, v) in &work.versions {
                if base.versions.get(name) != Some(v) {
                    next.versions.insert(name.clone(), *v);
                }
            }
            next.epoch = current.epoch + 1;
            let epoch = next.epoch;
            (Arc::new(next), epoch)
        });
        let m = dbgw_obs::metrics();
        m.snapshots_published.inc();
        m.snapshot_epoch.set(epoch as i64);
        m.snapshot_publish_ms
            .set(dbgw_obs::process_mono_ms() as i64);
    }
}

/// A shared in-memory database.
#[derive(Clone)]
pub struct Database {
    core: Arc<DbCore>,
    /// Statement + result caches shared by every connection; `None` when
    /// the subsystem is disabled (`DBGW_CACHE=0`).
    caches: Option<Arc<DbCaches>>,
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Database {
    /// Create an empty database, with caching configured from the
    /// `DBGW_CACHE*` environment variables (enabled by default).
    pub fn new() -> Database {
        Database::with_cache_config(
            &CacheConfig::from_env(),
            Arc::new(dbgw_obs::StdClock::new()),
        )
    }

    /// Create an empty database with an explicit cache configuration and
    /// clock (tests drive TTL expiry with a `TestClock`).
    pub fn with_cache_config(config: &CacheConfig, clock: Arc<dyn Clock>) -> Database {
        Database {
            core: Arc::new(DbCore::new()),
            caches: config
                .enabled
                .then(|| Arc::new(DbCaches::new(config, clock))),
        }
    }

    /// Create an empty database with every cache layer disabled.
    pub fn without_cache() -> Database {
        Database::with_cache_config(
            &CacheConfig::disabled(),
            Arc::new(dbgw_obs::StdClock::new()),
        )
    }

    /// Open a **durable** database rooted at `dir` (created if absent):
    /// recover the state from `dir/wal.log` (truncating any torn tail),
    /// then arrange for every subsequent committed statement to be logged
    /// and fsynced before it is published. Durability knobs (`DBGW_FSYNC`,
    /// `DBGW_GROUP_COMMIT_US`, `DBGW_CHECKPOINT_BYTES`) and the cache
    /// configuration are read from the environment.
    pub fn open(dir: impl AsRef<Path>) -> SqlResult<Database> {
        Database::open_with_config(
            dir,
            &DurabilityConfig::from_env(),
            &CacheConfig::from_env(),
            Arc::new(dbgw_obs::StdClock::new()),
        )
    }

    /// [`Database::open`] with explicit durability/cache configuration
    /// (tests pin knobs without touching the environment).
    pub fn open_with_config(
        dir: impl AsRef<Path>,
        durability: &DurabilityConfig,
        cache: &CacheConfig,
        clock: Arc<dyn Clock>,
    ) -> SqlResult<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| SqlError::io("create data directory", &e))?;
        let log_path = dir.join(crate::wal::LOG_FILE);
        let state = crate::recovery::recover(&log_path)?;
        let wal = Arc::new(
            Wal::open(&log_path, durability)
                .map_err(|e| SqlError::io("open write-ahead log", &e))?,
        );
        wal.start();
        let persist = Arc::new(Persistence {
            wal,
            barrier: crate::sync::RwLock::new(()),
            dir,
            stop: Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new())),
            checkpointer: std::sync::Mutex::new(None),
        });
        let core = Arc::new(DbCore {
            published: SnapshotCell::new(state),
            latches: LatchTable::new(),
            persist: Some(Arc::clone(&persist)),
        });
        // The daemon holds only a weak reference: dropping the last
        // `Database` tears the core (and thereby the daemon) down.
        let weak = Arc::downgrade(&core);
        let stop = Arc::clone(&persist.stop);
        let threshold = durability.checkpoint_bytes;
        let handle = std::thread::Builder::new()
            .name("dbgw-checkpoint".to_owned())
            .spawn(move || crate::checkpoint::checkpoint_daemon(weak, stop, threshold))
            .expect("spawn checkpoint daemon");
        *std_lock(&persist.checkpointer) = Some(handle);
        Ok(Database {
            core,
            caches: cache.enabled.then(|| Arc::new(DbCaches::new(cache, clock))),
        })
    }

    /// Open from `DBGW_DATA_DIR` when it is set and non-empty; otherwise a
    /// plain in-memory [`Database::new`]. The one-line boot path for the
    /// gateway binaries and examples.
    pub fn open_from_env() -> SqlResult<Database> {
        match std::env::var("DBGW_DATA_DIR") {
            Ok(dir) if !dir.trim().is_empty() => Database::open(dir.trim()),
            _ => Ok(Database::new()),
        }
    }

    /// Rewrite the log as a base snapshot right now (the background daemon
    /// does this automatically past `DBGW_CHECKPOINT_BYTES`). No-op for
    /// in-memory databases.
    pub fn checkpoint_now(&self) -> SqlResult<()> {
        crate::checkpoint::checkpoint_now(&self.core)
    }

    /// Current write-ahead log size in bytes; 0 for in-memory databases.
    pub fn wal_size(&self) -> u64 {
        self.core.persist.as_ref().map_or(0, |p| p.wal.size())
    }

    /// The data directory this database persists to, if any.
    pub fn data_dir(&self) -> Option<&Path> {
        self.core.persist.as_deref().map(|p| p.dir.as_path())
    }

    /// Flush the log and stop the durability daemons. Idempotent; writes
    /// after this fail with SQLCODE −904 (reads keep working). Dropping the
    /// last handle to a database does the same implicitly.
    pub fn close(&self) {
        if let Some(p) = &self.core.persist {
            p.shutdown();
        }
    }

    /// Per-instance cache counters, or `None` when caching is disabled.
    pub fn cache_stats(&self) -> Option<DbCacheStats> {
        self.caches.as_ref().map(|c| c.stats())
    }

    /// Open a connection with no request context (unbounded execution).
    pub fn connect(&self) -> Connection {
        self.connect_with_ctx(RequestCtx::unbounded())
    }

    /// Open a connection bound to a request context: every statement executed
    /// on it polls `ctx` cooperatively and fails with SQLCODE −952 once the
    /// request's deadline passes or it is cancelled.
    pub fn connect_with_ctx(&self, ctx: Arc<RequestCtx>) -> Connection {
        Connection {
            core: Arc::clone(&self.core),
            caches: self.caches.clone(),
            txn: None,
            ctx,
        }
    }

    /// Convenience: run a `;`-separated setup script on a fresh connection,
    /// auto-commit, failing on the first error.
    pub fn run_script(&self, sql: &str) -> SqlResult<Vec<ExecResult>> {
        let mut conn = self.connect();
        let stmts = parse_script(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(conn.execute_statement(stmt, &[])?);
        }
        Ok(out)
    }

    /// Pin the current committed snapshot. The returned state is immutable
    /// and internally consistent forever; concurrent writers publish new
    /// snapshots without disturbing it. This is the read path's only
    /// synchronisation point (one brief read-lock of the snapshot cell).
    pub fn pin(&self) -> Arc<DbState> {
        self.core.published.load()
    }

    /// The modification counter of `name` in the current snapshot.
    pub fn table_version(&self, name: &str) -> u64 {
        self.pin().version(name)
    }

    /// The publication epoch of the current snapshot: incremented once per
    /// committed write, strictly monotonic over the database's lifetime.
    pub fn snapshot_epoch(&self) -> u64 {
        self.pin().epoch
    }

    /// Live row count of a table (testing/benchmark helper).
    pub fn table_len(&self, name: &str) -> SqlResult<usize> {
        Ok(self.pin().table(name)?.heap.len())
    }

    /// An owned copy of the current snapshot (dump/inspection). Cheap: the
    /// clone is shallow, sharing table storage with the published state.
    pub fn snapshot(&self) -> crate::state::DbState {
        (*self.pin()).clone()
    }
}

/// A session against a [`Database`].
pub struct Connection {
    core: Arc<DbCore>,
    /// The owning database's cache pair (`None` when caching is disabled).
    caches: Option<Arc<DbCaches>>,
    /// Open explicit transaction's undo log, if any.
    txn: Option<Vec<Undo>>,
    /// The owning request's context (the unbounded context for plain
    /// [`Database::connect`] sessions).
    ctx: Arc<RequestCtx>,
}

impl Connection {
    /// Is an explicit transaction open?
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Rebind this connection to a request context (see
    /// [`Database::connect_with_ctx`]).
    pub fn set_request_ctx(&mut self, ctx: Arc<RequestCtx>) {
        self.ctx = ctx;
    }

    /// Pin the current committed snapshot (see [`Database::pin`]).
    pub fn pin(&self) -> Arc<DbState> {
        self.core.published.load()
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> SqlResult<ExecResult> {
        self.execute_with_params(sql, &[])
    }

    /// Parse and execute with positional `?` parameters.
    ///
    /// When the owning database has caching enabled this is the cached
    /// path: the normalized statement text is looked up in the prepared-
    /// statement cache (a hit skips `sql_parse` entirely), and SELECTs
    /// additionally go through the table-version-validated result cache.
    ///
    /// Every statement is also folded into the process-wide query digest
    /// table (unless `DBGW_DIGESTS=0`): latency on this connection's request
    /// clock, rows returned and scanned, errors, result-cache outcome, and
    /// latch wait, keyed by the literal-masked statement shape.
    pub fn execute_with_params(&mut self, sql: &str, params: &[Value]) -> SqlResult<ExecResult> {
        let store = dbgw_obs::digests();
        if !store.enabled() {
            return self.execute_undigested(sql, params);
        }
        // Clear notes a digest-disabled window may have left behind, so this
        // statement only folds in its own attribution.
        let _ = dbgw_obs::digest::take_notes();
        let text = dbgw_cache::digest_sql(sql);
        let key = dbgw_cache::fnv1a_64(text.as_bytes());
        let clock = Arc::clone(self.ctx.clock());
        let start_ns = clock.now_ns();
        let scanned_before = crate::plan::thread_stats().rows_scanned;
        let result = self.execute_undigested(sql, params);
        let dur_ns = clock.now_ns().saturating_sub(start_ns);
        let rows_scanned = crate::plan::thread_stats()
            .rows_scanned
            .saturating_sub(scanned_before);
        let (cache_hit, latch_wait_ns) = dbgw_obs::digest::take_notes();
        let rows_returned = match &result {
            Ok(ExecResult::Rows(rs)) => rs.len() as u64,
            Ok(ExecResult::Count(n)) => *n as u64,
            Ok(_) | Err(_) => 0,
        };
        store.record(
            key,
            &text,
            &dbgw_obs::DigestObservation {
                dur_ns,
                error: result.is_err(),
                rows_returned,
                rows_scanned,
                cache_hit,
                latch_wait_ns,
            },
        );
        result
    }

    /// [`execute_with_params`](Self::execute_with_params) without the digest
    /// accounting wrapper.
    fn execute_undigested(&mut self, sql: &str, params: &[Value]) -> SqlResult<ExecResult> {
        let Some(caches) = self.caches.clone() else {
            let stmt = {
                let _span = dbgw_obs::trace::span("sql_parse");
                parse(sql)?
            };
            let _span = dbgw_obs::trace::span("sql_execute");
            return self.execute_statement(stmt, params);
        };
        let metrics = dbgw_obs::metrics();
        let normalized = dbgw_cache::normalize_sql(sql);
        let stmt: Arc<Statement> = match caches.stmts.get(&normalized) {
            Lookup::Hit(stmt) => {
                metrics.stmt_cache_hits.inc();
                stmt
            }
            Lookup::Miss | Lookup::Expired => {
                metrics.stmt_cache_misses.inc();
                let parsed = {
                    let _span = dbgw_obs::trace::span("sql_parse");
                    parse(sql)?
                };
                let stmt = Arc::new(parsed);
                // ASTs cost roughly a few times their source text; the exact
                // figure only affects budget accounting, not correctness.
                caches
                    .stmts
                    .put(normalized.clone(), Arc::clone(&stmt), 4 * sql.len());
                stmt
            }
        };
        if let Statement::Select(sel) = &*stmt {
            let key = cache::result_key(&normalized, params);
            let lookup = {
                let _span = dbgw_obs::trace::span("cache_lookup");
                caches.results.get(&key)
            };
            match lookup {
                Lookup::Hit(cached) => {
                    let valid = cache::deps_valid(&self.pin(), &cached.deps);
                    if valid {
                        // The hit path still honours the request's deadline
                        // and cancellation, like any statement would.
                        self.ctx.check().map_err(SqlError::cancelled)?;
                        metrics.cache_hits.inc();
                        dbgw_obs::digest::note_cache_hit(true);
                        return Ok(ExecResult::Rows(cached.rows.clone()));
                    }
                    // A referenced table changed since the entry was stored:
                    // drop it and fall through to a fresh execution.
                    caches.results.remove(&key);
                    caches.record_invalidation();
                    metrics.cache_invalidations.inc();
                    metrics.cache_misses.inc();
                }
                Lookup::Expired => {
                    metrics.cache_evictions.inc();
                    metrics.cache_misses.inc();
                }
                Lookup::Miss => {
                    metrics.cache_misses.inc();
                }
            }
            dbgw_obs::digest::note_cache_hit(false);
            let _span = dbgw_obs::trace::span("sql_execute");
            // Run the query and capture the referenced tables' versions
            // from the SAME pinned snapshot, so the dependency set can never
            // race a concurrent writer.
            let state = self.pin();
            let rows = self.run_select_observed(&state, sel, params)?;
            let deps = cache::capture_deps(&state, sel);
            {
                let _span = dbgw_obs::trace::span("cache_store");
                let cost = cache::result_cost(&rows);
                let stored = caches.results.put(
                    key,
                    Arc::new(CachedSelect {
                        rows: rows.clone(),
                        deps,
                    }),
                    cost,
                );
                metrics.cache_evictions.add(stored.evicted);
                metrics.cache_bytes.set(caches.bytes() as i64);
            }
            return Ok(ExecResult::Rows(rows));
        }
        let _span = dbgw_obs::trace::span("sql_execute");
        self.execute_statement((*stmt).clone(), params)
    }

    /// Run a SELECT, collecting per-operator actuals when request tracing or
    /// passive ANALYZE capture is on. The compact summary is attached to the
    /// trace as a `plan_actuals` note and stashed in a thread-local slot for
    /// the gateway's slow-query log to pick up after the statement returns.
    fn run_select_observed(
        &self,
        state: &DbState,
        sel: &crate::ast::Select,
        params: &[Value],
    ) -> SqlResult<ResultSet> {
        if !crate::analyze::capture_wanted() {
            return run_select(state, sel, params, &self.ctx);
        }
        let clock = Arc::clone(self.ctx.clock());
        let start_ns = clock.now_ns();
        let (result, ops) = crate::analyze::collect(Arc::clone(&clock), || {
            run_select(state, sel, params, &self.ctx)
        });
        let total_ns = clock.now_ns().saturating_sub(start_ns);
        let summary = crate::analyze::summarize(&ops, total_ns);
        if dbgw_obs::trace::trace_active() {
            dbgw_obs::trace::note("plan_actuals", summary.clone());
        }
        crate::analyze::set_last_summary(summary);
        result
    }

    /// Execute a pre-parsed statement.
    pub fn execute_statement(
        &mut self,
        stmt: Statement,
        params: &[Value],
    ) -> SqlResult<ExecResult> {
        match stmt {
            Statement::Select(sel) => {
                let state = self.pin();
                Ok(ExecResult::Rows(run_select(
                    &state, &sel, params, &self.ctx,
                )?))
            }
            Statement::Explain { analyze, inner } => {
                let state = self.pin();
                let lines = match &*inner {
                    // ANALYZE executes the query under the operator collector
                    // (on this connection's request clock) and annotates the
                    // plan with the observed actuals.
                    Statement::Select(sel) if analyze => {
                        crate::exec::explain_analyze_select(&state, sel, params, &self.ctx)?
                    }
                    Statement::Select(sel) => crate::exec::explain_select(&state, sel, params)?,
                    Statement::Insert {
                        table,
                        values,
                        select,
                        ..
                    } => {
                        if select.is_some() {
                            vec![format!("INSERT INTO {table} (from SELECT)")]
                        } else {
                            vec![format!("INSERT INTO {table} ({} row(s))", values.len())]
                        }
                    }
                    Statement::Update {
                        table,
                        where_clause,
                        ..
                    } => vec![format!(
                        "UPDATE {table} via FULL SCAN{}",
                        if where_clause.is_some() {
                            " + FILTER"
                        } else {
                            ""
                        }
                    )],
                    Statement::Delete {
                        table,
                        where_clause,
                    } => vec![format!(
                        "DELETE FROM {table} via FULL SCAN{}",
                        if where_clause.is_some() {
                            " + FILTER"
                        } else {
                            ""
                        }
                    )],
                    other => vec![format!("{other:?}")],
                };
                Ok(ExecResult::Rows(ResultSet {
                    columns: vec!["plan".to_owned()],
                    rows: lines.into_iter().map(|l| vec![Value::Text(l)]).collect(),
                }))
            }
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(SqlError::new(
                        SqlCode::TXN_STATE,
                        "a transaction is already open",
                    ));
                }
                self.txn = Some(Vec::new());
                Ok(ExecResult::TxnControl)
            }
            Statement::Commit => {
                self.commit()?;
                Ok(ExecResult::TxnControl)
            }
            Statement::Rollback => {
                self.rollback()?;
                Ok(ExecResult::TxnControl)
            }
            other => self.execute_mutation(other, params),
        }
    }

    /// The write path: latch the statement's write set, mutate a working
    /// copy, publish on success. A failed statement's working copy is simply
    /// dropped — the published state never sees partial effects.
    fn execute_mutation(&mut self, stmt: Statement, params: &[Value]) -> SqlResult<ExecResult> {
        let mut held: Vec<LatchSet> = Vec::new();
        match write_set(&stmt) {
            Some(names) => held.push(self.core.latches.acquire(&names)),
            None => {
                // DROP INDEX names an index, not a table: take the catalog
                // latch first (freezing the set of indexes — every change to
                // it holds this latch), resolve the owning table, then latch
                // the table. Incremental acquisition is order-safe because
                // the catalog latch sorts before every table name and is
                // never requested while a table latch is held.
                let Statement::DropIndex { name } = &stmt else {
                    unreachable!("write_set covers every other mutation");
                };
                held.push(self.core.latches.acquire(&[CATALOG_LATCH]));
                let table = self
                    .core
                    .published
                    .load()
                    .indexes
                    .get(&name.to_ascii_lowercase())
                    .map(|i| i.table.clone());
                if let Some(table) = table {
                    held.push(self.core.latches.acquire(&[table]));
                }
            }
        }
        record_latch_metrics(&held);
        let base = self.core.published.load();
        let mut work = (*base).clone();
        let mut undo: Vec<Undo> = Vec::new();
        let result = apply_mutation(&mut work, stmt, params, &mut undo, &self.ctx);
        match result {
            Ok(res) => {
                #[cfg(test)]
                tests::PANIC_BEFORE_PUBLISH.with(|f| {
                    if f.replace(false) {
                        panic!("injected: writer dies before publishing");
                    }
                });
                match &self.core.persist {
                    Some(p) => {
                        // Durable path: log → fsync-ack → publish, all under
                        // the checkpoint barrier's read side so a checkpoint
                        // can never run between the append and the publish.
                        // A failed append publishes nothing — the statement
                        // reports −904 and `work` is dropped.
                        let _durable = p.barrier.read();
                        p.wal.commit(&redo_ops(&work, &undo))?;
                        self.core.publish(&base, work);
                    }
                    None => self.core.publish(&base, work),
                }
                // Explicit transaction: keep the records for a possible
                // ROLLBACK later. Auto-commit: the statement is durable now
                // and the undo log is discarded.
                if let Some(log) = self.txn.as_mut() {
                    log.extend(undo);
                }
                Ok(res)
            }
            // Nothing was published; dropping `work` is the rollback.
            Err(e) => Err(e),
        }
    }

    /// Commit the open transaction (no-op error if none).
    pub fn commit(&mut self) -> SqlResult<()> {
        match self.txn.take() {
            Some(_) => Ok(()),
            None => Err(SqlError::new(SqlCode::TXN_STATE, "no transaction is open")),
        }
    }

    /// Roll back the open transaction (no-op error if none).
    pub fn rollback(&mut self) -> SqlResult<()> {
        match self.txn.take() {
            Some(undo) => {
                if undo.is_empty() {
                    return Ok(());
                }
                // Re-latch every table the transaction touched (and the
                // catalog, if DDL is being undone), then undo against the
                // current state and publish the result as one snapshot.
                let names = undo_latch_names(&undo);
                let held = [self.core.latches.acquire(&names)];
                record_latch_metrics(&held);
                let base = self.core.published.load();
                let mut work = (*base).clone();
                apply_undo(&mut work, &undo);
                match &self.core.persist {
                    Some(p) => {
                        // The rollback is itself a logged publication: its
                        // compensating images go to the WAL as ordinary redo
                        // ops (recovery stays strictly redo-only).
                        let _durable = p.barrier.read();
                        p.wal.commit(&rollback_ops(&work, &undo))?;
                        self.core.publish(&base, work);
                    }
                    None => self.core.publish(&base, work),
                }
                Ok(())
            }
            None => Err(SqlError::new(SqlCode::TXN_STATE, "no transaction is open")),
        }
    }
}

impl Drop for Connection {
    /// An abandoned open transaction rolls back, as DB2 connections did.
    fn drop(&mut self) {
        if self.txn.is_some() {
            let _ = self.rollback();
        }
    }
}

/// The latch names a statement's mutations are confined to, lowercased,
/// including the catalog latch for DDL. `None` for DROP INDEX, whose owning
/// table is only known once the catalog latch is held.
fn write_set(stmt: &Statement) -> Option<Vec<String>> {
    match stmt {
        Statement::Insert { table, .. }
        | Statement::Update { table, .. }
        | Statement::Delete { table, .. } => Some(vec![table.to_ascii_lowercase()]),
        Statement::CreateTable { name, .. } | Statement::DropTable { name, .. } => {
            Some(vec![CATALOG_LATCH.to_owned(), name.to_ascii_lowercase()])
        }
        Statement::CreateIndex { table, .. } => {
            Some(vec![CATALOG_LATCH.to_owned(), table.to_ascii_lowercase()])
        }
        Statement::DropIndex { .. } => None,
        Statement::Select(_)
        | Statement::Explain { .. }
        | Statement::Begin
        | Statement::Commit
        | Statement::Rollback => {
            unreachable!("not a mutation")
        }
    }
}

/// Every latch name a transaction's undo log needs to be re-applied safely.
fn undo_latch_names(undo: &[Undo]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for record in undo {
        match record {
            Undo::Insert { table, .. }
            | Undo::Update { table, .. }
            | Undo::Delete { table, .. } => names.push(table.to_ascii_lowercase()),
            Undo::CreateTable { name } | Undo::DropTable { name, .. } => {
                names.push(CATALOG_LATCH.to_owned());
                names.push(name.clone());
            }
            Undo::CreateIndex { table, .. } => {
                names.push(CATALOG_LATCH.to_owned());
                names.push(table.clone());
            }
            Undo::DropIndex { index } => {
                names.push(CATALOG_LATCH.to_owned());
                names.push(index.table.clone());
            }
        }
    }
    names // acquire() sorts and dedups
}

/// Record one write path's latch acquisition in the global metrics: one
/// histogram observation per latch set acquired, plus the thread-local note
/// the digest table folds into the running statement's row.
fn record_latch_metrics(held: &[LatchSet]) {
    let m = dbgw_obs::metrics();
    m.latch_waits.add(held.iter().map(|l| l.len() as u64).sum());
    let mut total_ns = 0u64;
    for set in held {
        let waited = set.waited().as_nanos() as u64;
        m.latch_wait_ns.observe_ns(waited);
        total_ns += waited;
    }
    dbgw_obs::digest::note_latch_wait_ns(total_ns);
}

fn apply_undo(state: &mut DbState, undo: &[Undo]) {
    for record in undo.iter().rev() {
        match record {
            Undo::Insert { table, id } => {
                let _ = state.delete_row(table, *id);
            }
            Undo::Update { table, id, old } => {
                let _ = state.update_row(table, *id, old.clone());
            }
            Undo::Delete { table, id, old } => {
                let _ = state.restore_row(table, *id, old.clone());
            }
            Undo::CreateTable { name } => {
                if let Some(t) = state.tables.remove(name) {
                    for idx in &t.index_names {
                        state.indexes.remove(idx);
                    }
                }
                state.bump_version(name);
            }
            Undo::DropTable {
                name,
                data,
                indexes,
            } => {
                state.tables.insert(name.clone(), Arc::clone(data));
                for idx in indexes {
                    state
                        .indexes
                        .insert(idx.name.to_ascii_lowercase(), Arc::clone(idx));
                }
                state.bump_version(name);
            }
            Undo::CreateIndex { name, table } => {
                state.indexes.remove(name);
                if let Ok(t) = state.table_mut(table) {
                    t.index_names.retain(|n| n != name);
                }
            }
            Undo::DropIndex { index } => {
                let key = index.name.to_ascii_lowercase();
                if let Ok(t) = state.table_mut(&index.table) {
                    t.index_names.push(key.clone());
                }
                state.indexes.insert(key, Arc::clone(index));
            }
        }
    }
}

/// Derive the WAL record for a committed statement: pair each undo entry
/// with the **final** image from the statement's working copy. Sound
/// because a single statement touches each `(table, id)` with at most one
/// kind of operation, and the per-table latch is held from mutation through
/// log append to publication — so per table, log order equals publication
/// order.
fn redo_ops(work: &DbState, undo: &[Undo]) -> Vec<WalOp> {
    let mut ops = Vec::with_capacity(undo.len());
    let image = |table: &str, id: RowId| {
        work.tables
            .get(&table.to_ascii_lowercase())
            .and_then(|t| t.heap.get(id))
            .cloned()
    };
    for record in undo {
        match record {
            Undo::Insert { table, id } => {
                if let Some(row) = image(table, *id) {
                    ops.push(WalOp::Insert {
                        table: table.to_ascii_lowercase(),
                        id: *id,
                        row,
                    });
                }
            }
            Undo::Update { table, id, .. } => {
                if let Some(row) = image(table, *id) {
                    ops.push(WalOp::Update {
                        table: table.to_ascii_lowercase(),
                        id: *id,
                        row,
                    });
                }
            }
            Undo::Delete { table, id, .. } => ops.push(WalOp::Delete {
                table: table.to_ascii_lowercase(),
                id: *id,
            }),
            // DDL goes to the log as canonical SQL, replayed through the
            // ordinary DDL path at recovery (`name` keys are lowercased at
            // undo-record creation).
            Undo::CreateTable { name } => {
                if let Some(t) = work.tables.get(name) {
                    ops.push(WalOp::Ddl {
                        sql: crate::dump::create_table_sql(name, &t.schema),
                    });
                }
            }
            Undo::DropTable { name, .. } => ops.push(WalOp::Ddl {
                sql: format!("DROP TABLE {name}"),
            }),
            Undo::CreateIndex { name, table } => {
                if let (Some(idx), Some(t)) = (work.indexes.get(name), work.tables.get(table)) {
                    let column = &t.schema.columns[idx.column].name;
                    ops.push(WalOp::Ddl {
                        sql: crate::dump::create_index_sql(idx, column),
                    });
                }
            }
            Undo::DropIndex { index } => ops.push(WalOp::Ddl {
                sql: format!("DROP INDEX {}", index.name),
            }),
        }
    }
    ops
}

/// Derive the WAL record for a ROLLBACK: the compensating image of each
/// undo entry, in the order `apply_undo` applied them (reversed). `work` is
/// the post-undo state, so restored tables are present for lookups.
fn rollback_ops(work: &DbState, undo: &[Undo]) -> Vec<WalOp> {
    let mut ops = Vec::with_capacity(undo.len());
    for record in undo.iter().rev() {
        match record {
            Undo::Insert { table, id } => ops.push(WalOp::Delete {
                table: table.to_ascii_lowercase(),
                id: *id,
            }),
            Undo::Update { table, id, old } => ops.push(WalOp::Update {
                table: table.to_ascii_lowercase(),
                id: *id,
                row: old.clone(),
            }),
            Undo::Delete { table, id, old } => ops.push(WalOp::Insert {
                table: table.to_ascii_lowercase(),
                id: *id,
                row: old.clone(),
            }),
            Undo::CreateTable { name } => ops.push(WalOp::Ddl {
                sql: format!("DROP TABLE {name}"),
            }),
            Undo::DropTable {
                name,
                data,
                indexes,
            } => {
                // Undoing a DROP TABLE recreates everything: schema (whose
                // constraints recreate the system indexes), secondary
                // indexes, then every surviving row at its original id.
                ops.push(WalOp::Ddl {
                    sql: crate::dump::create_table_sql(name, &data.schema),
                });
                for idx in indexes {
                    if !crate::dump::implied_by_constraint(idx, &data.schema) {
                        let column = &data.schema.columns[idx.column].name;
                        ops.push(WalOp::Ddl {
                            sql: crate::dump::create_index_sql(idx, column),
                        });
                    }
                }
                for (id, row) in data.heap.iter() {
                    ops.push(WalOp::Insert {
                        table: name.clone(),
                        id,
                        row: row.clone(),
                    });
                }
            }
            Undo::CreateIndex { name, .. } => ops.push(WalOp::Ddl {
                sql: format!("DROP INDEX {name}"),
            }),
            Undo::DropIndex { index } => {
                if let Some(t) = work.tables.get(&index.table) {
                    let column = &t.schema.columns[index.column].name;
                    ops.push(WalOp::Ddl {
                        sql: crate::dump::create_index_sql(index, column),
                    });
                }
            }
        }
    }
    ops
}

/// Apply one mutation statement to a working state, recording undo entries.
/// `pub(crate)` so WAL recovery can replay logged DDL through the same path.
pub(crate) fn apply_mutation(
    state: &mut DbState,
    stmt: Statement,
    params: &[Value],
    undo: &mut Vec<Undo>,
    ctx: &RequestCtx,
) -> SqlResult<ExecResult> {
    match stmt {
        Statement::Insert {
            table,
            columns,
            values,
            select,
        } => {
            let (schema, width) = {
                let t = state.table(&table)?;
                (t.schema.clone(), t.schema.width())
            };
            // Map the written column list to ordinals.
            let ordinals: Vec<usize> = if columns.is_empty() {
                (0..width).collect()
            } else {
                columns
                    .iter()
                    .map(|c| schema.require_column(c))
                    .collect::<SqlResult<_>>()?
            };
            // INSERT ... SELECT: evaluate the query first, then insert its
            // rows (fully materialized, so self-insertion cannot loop).
            if let Some(select) = select {
                let rs = run_select(state, &select, params, ctx)?;
                if rs.columns.len() != ordinals.len() {
                    return Err(SqlError::syntax(format!(
                        "INSERT target has {} columns but SELECT produced {}",
                        ordinals.len(),
                        rs.columns.len()
                    )));
                }
                let mut inserted = 0usize;
                for src_row in rs.rows {
                    let mut row = vec![Value::Null; width];
                    for (value, &ordinal) in src_row.into_iter().zip(&ordinals) {
                        row[ordinal] = value;
                    }
                    let row = schema.check_row(row)?;
                    let id = state.insert_row(&table, row)?;
                    undo.push(Undo::Insert {
                        table: table.clone(),
                        id,
                    });
                    inserted += 1;
                }
                return Ok(ExecResult::Count(inserted));
            }
            let mut inserted = 0usize;
            for tuple in values {
                if tuple.len() != ordinals.len() {
                    return Err(SqlError::syntax(format!(
                        "INSERT supplies {} values for {} columns",
                        tuple.len(),
                        ordinals.len()
                    )));
                }
                let mut row = vec![Value::Null; width];
                for (expr, &ordinal) in tuple.iter().zip(&ordinals) {
                    let expr = crate::exec::rewrite_expr_subqueries(state, expr, params, ctx)?;
                    row[ordinal] = eval(&expr, &Bindings::empty(), &[], params, &NoAggregates)?;
                }
                let row = schema.check_row(row)?;
                let id = state.insert_row(&table, row)?;
                undo.push(Undo::Insert {
                    table: table.clone(),
                    id,
                });
                inserted += 1;
            }
            Ok(ExecResult::Count(inserted))
        }
        Statement::Update {
            table,
            assignments,
            where_clause,
        } => {
            let (schema, bindings, targets) =
                collect_targets(state, &table, where_clause.as_ref(), params, ctx)?;
            let ordinals: Vec<usize> = assignments
                .iter()
                .map(|(c, _)| schema.require_column(c))
                .collect::<SqlResult<_>>()?;
            let mut updated = 0usize;
            for (id, old_row) in targets {
                let mut new_row = old_row.clone();
                for ((_, expr), &ordinal) in assignments.iter().zip(&ordinals) {
                    let expr = crate::exec::rewrite_expr_subqueries(state, expr, params, ctx)?;
                    new_row[ordinal] = eval(&expr, &bindings, &old_row, params, &NoAggregates)?;
                }
                let new_row = schema.check_row(new_row)?;
                let old = state.update_row(&table, id, new_row)?;
                undo.push(Undo::Update {
                    table: table.clone(),
                    id,
                    old,
                });
                updated += 1;
            }
            Ok(ExecResult::Count(updated))
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let (_, _, targets) =
                collect_targets(state, &table, where_clause.as_ref(), params, ctx)?;
            let mut deleted = 0usize;
            for (id, _) in targets {
                if let Some(old) = state.delete_row(&table, id)? {
                    undo.push(Undo::Delete {
                        table: table.clone(),
                        id,
                        old,
                    });
                    deleted += 1;
                }
            }
            Ok(ExecResult::Count(deleted))
        }
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            let key = name.to_ascii_lowercase();
            if state.tables.contains_key(&key) {
                if if_not_exists {
                    return Ok(ExecResult::Ddl);
                }
                return Err(SqlError::new(
                    SqlCode::DUPLICATE_OBJECT,
                    format!("table {name} already exists"),
                ));
            }
            let schema = TableSchema::from_defs(&name, &columns)?;
            // Unique columns get system indexes enforcing them.
            let mut index_names = Vec::new();
            for (ordinal, col) in schema.columns.iter().enumerate() {
                if col.unique {
                    let idx_name = format!("{key}_{}_unique", col.name.to_ascii_lowercase());
                    state.indexes.insert(
                        idx_name.clone(),
                        Arc::new(Index::new(&idx_name, &key, ordinal, true)),
                    );
                    index_names.push(idx_name);
                }
            }
            state.tables.insert(
                key.clone(),
                Arc::new(TableData {
                    schema,
                    heap: Heap::new(),
                    index_names,
                    stats: None,
                }),
            );
            state.bump_version(&key);
            undo.push(Undo::CreateTable { name: key });
            Ok(ExecResult::Ddl)
        }
        Statement::DropTable { name, if_exists } => {
            let key = name.to_ascii_lowercase();
            match state.tables.remove(&key) {
                Some(data) => {
                    let mut indexes = Vec::new();
                    for idx_name in &data.index_names {
                        if let Some(idx) = state.indexes.remove(idx_name) {
                            indexes.push(idx);
                        }
                    }
                    state.bump_version(&key);
                    undo.push(Undo::DropTable {
                        name: key,
                        data,
                        indexes,
                    });
                    Ok(ExecResult::Ddl)
                }
                None if if_exists => Ok(ExecResult::Ddl),
                None => Err(SqlError::no_such_table(&name)),
            }
        }
        Statement::CreateIndex {
            name,
            table,
            column,
            unique,
        } => {
            let key = name.to_ascii_lowercase();
            if state.indexes.contains_key(&key) {
                return Err(SqlError::new(
                    SqlCode::DUPLICATE_OBJECT,
                    format!("index {name} already exists"),
                ));
            }
            let table_key = table.to_ascii_lowercase();
            let ordinal = {
                let t = state.table(&table)?;
                t.schema.require_column(&column)?
            };
            let mut index = Index::new(&key, &table_key, ordinal, unique);
            // Populate from existing rows; uniqueness can fail here.
            {
                let t = state.table(&table)?;
                for (id, row) in t.heap.iter() {
                    let v = row.get(ordinal).cloned().unwrap_or(Value::Null);
                    index.insert(&v, id)?;
                }
            }
            state.indexes.insert(key.clone(), Arc::new(index));
            state.table_mut(&table)?.index_names.push(key.clone());
            undo.push(Undo::CreateIndex {
                name: key,
                table: table_key,
            });
            Ok(ExecResult::Ddl)
        }
        Statement::DropIndex { name } => {
            let key = name.to_ascii_lowercase();
            let index = state.indexes.remove(&key).ok_or_else(|| {
                SqlError::new(
                    SqlCode::UNDEFINED_OBJECT,
                    format!("index {name} does not exist"),
                )
            })?;
            if let Ok(t) = state.table_mut(&index.table.clone()) {
                t.index_names.retain(|n| *n != key);
            }
            undo.push(Undo::DropIndex { index });
            Ok(ExecResult::Ddl)
        }
        Statement::Select(_)
        | Statement::Explain { .. }
        | Statement::Begin
        | Statement::Commit
        | Statement::Rollback => {
            unreachable!("handled by execute_statement")
        }
    }
}

/// Rows of `table` matching the predicate, as `(id, row)` pairs, plus the
/// schema and single-table bindings used to evaluate per-row expressions.
#[allow(clippy::type_complexity)]
fn collect_targets(
    state: &DbState,
    table: &str,
    predicate: Option<&crate::ast::Expr>,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<(TableSchema, Bindings, Vec<(RowId, Row)>)> {
    let t = state.table(table)?;
    let schema = t.schema.clone();
    let bindings = Bindings::single(
        table,
        schema.columns.iter().map(|c| c.name.clone()).collect(),
    );
    let predicate = match predicate {
        Some(p) => Some(crate::exec::rewrite_expr_subqueries(state, p, params, ctx)?),
        None => None,
    };
    let mut targets = Vec::new();
    for (i, (id, row)) in t.heap.iter().enumerate() {
        if i % 128 == 0 {
            ctx.check().map_err(SqlError::cancelled)?;
        }
        let keep = match &predicate {
            Some(p) => eval_truth(p, &bindings, row, params, &NoAggregates)?.passes(),
            None => true,
        };
        if keep {
            targets.push((id, row.clone()));
        }
    }
    Ok((schema, bindings, targets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    thread_local! {
        /// Injection point: makes the next successful mutation on this thread
        /// panic after mutating its working copy but before publishing.
        pub(super) static PANIC_BEFORE_PUBLISH: Cell<bool> = const { Cell::new(false) };
        /// Injection point: makes the next publication on this thread panic
        /// inside the snapshot cell's RCU critical section.
        pub(super) static PANIC_IN_PUBLISH: Cell<bool> = const { Cell::new(false) };
    }

    fn fresh() -> (Database, Connection) {
        let db = Database::new();
        db.run_script(
            "CREATE TABLE guest (id INTEGER PRIMARY KEY, name VARCHAR(40) NOT NULL, note VARCHAR(200));",
        )
        .unwrap();
        let conn = db.connect();
        (db, conn)
    }

    #[test]
    fn insert_select_roundtrip() {
        let (_db, mut conn) = fresh();
        let r = conn
            .execute("INSERT INTO guest VALUES (1, 'Ada', 'hello'), (2, 'Bob', NULL)")
            .unwrap();
        assert_eq!(r, ExecResult::Count(2));
        let rows = conn.execute("SELECT name FROM guest ORDER BY id").unwrap();
        let ExecResult::Rows(rs) = rows else { panic!() };
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.columns, vec!["name"]);
    }

    #[test]
    fn sqlcode_100_on_empty() {
        let (_db, mut conn) = fresh();
        let r = conn.execute("SELECT * FROM guest").unwrap();
        assert_eq!(r.sqlcode(), SqlCode::NO_DATA);
        let r = conn.execute("DELETE FROM guest WHERE id = 99").unwrap();
        assert_eq!(r.sqlcode(), SqlCode::NO_DATA);
    }

    #[test]
    fn statement_atomicity_multi_row_insert() {
        let (db, mut conn) = fresh();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        // Second tuple violates the PK; the whole statement must back out.
        let err = conn
            .execute("INSERT INTO guest VALUES (2, 'Bob', NULL), (1, 'Dup', NULL)")
            .unwrap_err();
        assert_eq!(err.code, SqlCode::DUPLICATE_KEY);
        assert_eq!(db.table_len("guest").unwrap(), 1);
    }

    #[test]
    fn explicit_transaction_rollback() {
        let (db, mut conn) = fresh();
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        conn.execute("INSERT INTO guest VALUES (2, 'Bob', NULL)")
            .unwrap();
        conn.execute("UPDATE guest SET name = 'Eve' WHERE id = 1")
            .unwrap();
        conn.execute("ROLLBACK").unwrap();
        assert_eq!(db.table_len("guest").unwrap(), 0);
        assert!(!conn.in_transaction());
    }

    #[test]
    fn explicit_transaction_commit_is_durable() {
        let (db, mut conn) = fresh();
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        conn.execute("COMMIT").unwrap();
        assert_eq!(db.table_len("guest").unwrap(), 1);
        // Another connection sees it.
        let mut c2 = db.connect();
        let r = c2.execute("SELECT COUNT(*) FROM guest").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(1));
    }

    #[test]
    fn failed_statement_in_txn_keeps_txn_open() {
        let (db, mut conn) = fresh();
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        assert!(conn
            .execute("INSERT INTO guest VALUES (1, 'Dup', NULL)")
            .is_err());
        assert!(conn.in_transaction());
        conn.execute("COMMIT").unwrap();
        assert_eq!(db.table_len("guest").unwrap(), 1);
    }

    #[test]
    fn rollback_restores_deleted_rows_and_updates() {
        let (db, mut conn) = fresh();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', 'x'), (2, 'Bob', 'y')")
            .unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("DELETE FROM guest WHERE id = 1").unwrap();
        conn.execute("UPDATE guest SET note = 'z' WHERE id = 2")
            .unwrap();
        conn.execute("ROLLBACK").unwrap();
        let mut c2 = db.connect();
        let r = c2.execute("SELECT note FROM guest ORDER BY id").unwrap();
        assert_eq!(
            r.rows().unwrap().rows,
            vec![vec![Value::Text("x".into())], vec![Value::Text("y".into())]]
        );
    }

    #[test]
    fn ddl_rolls_back_too() {
        let (db, mut conn) = fresh();
        conn.execute("BEGIN").unwrap();
        conn.execute("CREATE TABLE extra (a INTEGER)").unwrap();
        conn.execute("INSERT INTO extra VALUES (1)").unwrap();
        conn.execute("ROLLBACK").unwrap();
        assert!(db.table_len("extra").is_err());
        // Drop + rollback restores data.
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("DROP TABLE guest").unwrap();
        conn.execute("ROLLBACK").unwrap();
        assert_eq!(db.table_len("guest").unwrap(), 1);
        // The PK index must be back as well: duplicate insert still fails.
        assert!(conn
            .execute("INSERT INTO guest VALUES (1, 'Dup', NULL)")
            .is_err());
    }

    #[test]
    fn nested_begin_rejected() {
        let (_db, mut conn) = fresh();
        conn.execute("BEGIN").unwrap();
        let err = conn.execute("BEGIN").unwrap_err();
        assert_eq!(err.code, SqlCode::TXN_STATE);
    }

    #[test]
    fn commit_without_begin_rejected() {
        let (_db, mut conn) = fresh();
        assert!(conn.execute("COMMIT").is_err());
        assert!(conn.execute("ROLLBACK").is_err());
    }

    #[test]
    fn dropped_connection_rolls_back() {
        let db = Database::new();
        db.run_script("CREATE TABLE t (a INTEGER)").unwrap();
        {
            let mut conn = db.connect();
            conn.execute("BEGIN").unwrap();
            conn.execute("INSERT INTO t VALUES (1)").unwrap();
            // conn dropped here without COMMIT.
        }
        assert_eq!(db.table_len("t").unwrap(), 0);
    }

    #[test]
    fn create_index_on_populated_table_enforces_unique() {
        let (_db, mut conn) = fresh();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL), (2, 'Ada', NULL)")
            .unwrap();
        let err = conn
            .execute("CREATE UNIQUE INDEX guest_name ON guest (name)")
            .unwrap_err();
        assert_eq!(err.code, SqlCode::DUPLICATE_KEY);
        // Non-unique index is fine and then used by queries.
        conn.execute("CREATE INDEX guest_name ON guest (name)")
            .unwrap();
        let r = conn
            .execute("SELECT id FROM guest WHERE name = 'Ada' ORDER BY 1")
            .unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2);
    }

    #[test]
    fn update_with_expression_assignment() {
        let (_db, mut conn) = fresh();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', 'a')")
            .unwrap();
        conn.execute("UPDATE guest SET note = name || '!' WHERE id = 1")
            .unwrap();
        let r = conn.execute("SELECT note FROM guest").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Text("Ada!".into()));
    }

    #[test]
    fn insert_with_column_list_defaults_null() {
        let (_db, mut conn) = fresh();
        conn.execute("INSERT INTO guest (id, name) VALUES (1, 'Ada')")
            .unwrap();
        let r = conn.execute("SELECT note FROM guest").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Null);
        // Omitting a NOT NULL column fails.
        assert!(conn.execute("INSERT INTO guest (id) VALUES (2)").is_err());
    }

    #[test]
    fn params_flow_through_dml() {
        let (_db, mut conn) = fresh();
        conn.execute_with_params(
            "INSERT INTO guest VALUES (?, ?, ?)",
            &[Value::Int(1), Value::Text("Ada".into()), Value::Null],
        )
        .unwrap();
        let r = conn
            .execute_with_params("SELECT name FROM guest WHERE id = ?", &[Value::Int(1)])
            .unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Text("Ada".into()));
    }

    #[test]
    fn if_exists_variants() {
        let (_db, mut conn) = fresh();
        conn.execute("CREATE TABLE IF NOT EXISTS guest (id INTEGER)")
            .unwrap();
        conn.execute("DROP TABLE IF EXISTS nothere").unwrap();
        assert!(conn.execute("DROP TABLE nothere").is_err());
    }

    #[test]
    fn pinned_snapshot_is_immutable_across_writes() {
        let (db, mut conn) = fresh();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        let pinned = db.pin();
        conn.execute("INSERT INTO guest VALUES (2, 'Bob', NULL)")
            .unwrap();
        conn.execute("UPDATE guest SET name = 'Eve' WHERE id = 1")
            .unwrap();
        // The pinned snapshot still shows the world as of its pin.
        assert_eq!(pinned.table("guest").unwrap().heap.len(), 1);
        let row = pinned.table("guest").unwrap().heap.get(RowId(0)).unwrap();
        assert_eq!(row[1], Value::Text("Ada".into()));
        // The live state moved on.
        assert_eq!(db.table_len("guest").unwrap(), 2);
    }

    #[test]
    fn snapshot_epoch_is_strictly_monotonic() {
        let (db, mut conn) = fresh();
        let e0 = db.snapshot_epoch();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        let e1 = db.snapshot_epoch();
        conn.execute("UPDATE guest SET note = 'x'").unwrap();
        let e2 = db.snapshot_epoch();
        assert!(e0 < e1 && e1 < e2, "epochs: {e0} {e1} {e2}");
    }

    #[test]
    fn failed_statement_publishes_nothing() {
        let (db, mut conn) = fresh();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        let epoch = db.snapshot_epoch();
        let version = db.table_version("guest");
        assert!(conn
            .execute("INSERT INTO guest VALUES (2, 'Bob', NULL), (1, 'Dup', NULL)")
            .is_err());
        // Not even a no-op snapshot: the failed statement left no trace.
        assert_eq!(db.snapshot_epoch(), epoch);
        assert_eq!(db.table_version("guest"), version);
    }

    #[test]
    fn writer_panic_before_publish_leaves_consistent_state() {
        let (db, mut conn) = fresh();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        let epoch = db.snapshot_epoch();
        let db2 = db.clone();
        let joined = std::thread::spawn(move || {
            let mut victim = db2.connect();
            PANIC_BEFORE_PUBLISH.with(|f| f.set(true));
            let _ = victim.execute("UPDATE guest SET note = 'torn'");
        })
        .join();
        assert!(joined.is_err(), "injected panic must propagate");
        // Nothing published, latch released: the table is untouched and the
        // next writer on the same table proceeds without deadlock.
        assert_eq!(db.snapshot_epoch(), epoch);
        let r = conn.execute("SELECT note FROM guest").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Null);
        conn.execute("UPDATE guest SET note = 'ok'").unwrap();
        assert_eq!(db.snapshot_epoch(), epoch + 1);
    }

    #[test]
    fn writer_panic_inside_publish_recovers_from_poison() {
        let (db, mut conn) = fresh();
        conn.execute("INSERT INTO guest VALUES (1, 'Ada', NULL)")
            .unwrap();
        let epoch = db.snapshot_epoch();
        let db2 = db.clone();
        let joined = std::thread::spawn(move || {
            let mut victim = db2.connect();
            PANIC_IN_PUBLISH.with(|f| f.set(true));
            let _ = victim.execute("UPDATE guest SET note = 'torn'");
        })
        .join();
        assert!(joined.is_err(), "injected panic must propagate");
        // The panic unwound through the snapshot cell's write lock; the
        // poison-recovering wrapper keeps the old value readable and
        // writable. The aborted publication must not be visible.
        assert_eq!(db.snapshot_epoch(), epoch);
        let r = conn.execute("SELECT note FROM guest").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Null);
        conn.execute("UPDATE guest SET note = 'ok'").unwrap();
        assert_eq!(db.snapshot_epoch(), epoch + 1);
        let r = conn.execute("SELECT note FROM guest").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Text("ok".into()));
    }

    #[test]
    fn writer_panic_racing_live_writers_loses_only_its_own_statement() {
        // A writer dies inside the publication critical section (poisoning
        // the snapshot cell's std lock) while another writer on a different
        // table keeps committing. Only the panicking statement may be lost:
        // the survivor's stream of publishes continues unharmed through the
        // poison, and the victim's table shows no trace of the torn update.
        let db = Database::without_cache();
        db.run_script(
            "CREATE TABLE victim (x INTEGER, note VARCHAR(8)); \
             CREATE TABLE survivor (x INTEGER)",
        )
        .unwrap();
        db.run_script("INSERT INTO victim VALUES (1, NULL)")
            .unwrap();

        let crasher = {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut conn = db.connect();
                PANIC_IN_PUBLISH.with(|f| f.set(true));
                let _ = conn.execute("UPDATE victim SET note = 'torn'");
            })
        };
        let writer = {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut conn = db.connect();
                for _ in 0..100 {
                    conn.execute("INSERT INTO survivor VALUES (1)").unwrap();
                }
            })
        };
        assert!(crasher.join().is_err(), "injected panic must propagate");
        writer.join().unwrap();

        assert_eq!(db.table_len("survivor").unwrap(), 100);
        assert_eq!(db.table_version("survivor"), 101); // CREATE + 100 inserts
        let mut conn = db.connect();
        let r = conn.execute("SELECT note FROM victim").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Null);
        // The poisoned-and-recovered cell still accepts the victim table's
        // next writer: no stranded latch, no stuck lock.
        conn.execute("UPDATE victim SET note = 'ok'").unwrap();
        let r = conn.execute("SELECT note FROM victim").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], Value::Text("ok".into()));
    }

    #[test]
    fn concurrent_disjoint_writers_both_publish() {
        // Two writers on different tables race; the RCU diff publication
        // must keep both results even though each started from a base that
        // lacked the other's write.
        let db = Database::without_cache();
        db.run_script("CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER)")
            .unwrap();
        let threads: Vec<_> = ["a", "b"]
            .iter()
            .map(|t| {
                let db = db.clone();
                let sql = format!("INSERT INTO {t} VALUES (1)");
                std::thread::spawn(move || {
                    let mut conn = db.connect();
                    for _ in 0..50 {
                        conn.execute(&sql).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(db.table_len("a").unwrap(), 50);
        assert_eq!(db.table_len("b").unwrap(), 50);
        assert_eq!(db.table_version("a"), 51); // CREATE + 50 inserts
        assert_eq!(db.table_version("b"), 51);
    }
}
