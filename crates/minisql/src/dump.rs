//! Dump a database to a SQL script (and reload it with
//! [`Database::run_script`](crate::Database::run_script)).
//!
//! This is the substrate's persistence story: the `db2www` CGI binary and the
//! examples bootstrap their state from a script, and a running database can
//! write itself back out. The dump is ordinary SQL, so it also round-trips
//! through any other engine speaking the same subset.

use crate::db::{Database, ExecResult};
use crate::error::{SqlError, SqlResult};
use crate::index::Index;
use crate::schema::TableSchema;
use crate::types::Value;
use std::fmt::Write as _;

/// Render one value as a SQL literal.
pub(crate) fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_owned(),
        Value::Int(i) => i.to_string(),
        Value::Double(d) => {
            let s = v.to_display_string();
            debug_assert!(d.is_finite(), "non-finite doubles cannot be dumped");
            s
        }
        Value::Text(t) => format!("'{}'", t.replace('\'', "''")),
        Value::Date(d) => format!("DATE '{}'", crate::date::format_date(*d)),
    }
}

/// The `CREATE TABLE` statement (no trailing semicolon) that recreates
/// `schema` — including PRIMARY KEY / NOT NULL / UNIQUE column constraints,
/// which in turn recreate the system unique indexes. Shared by the script
/// dump, the WAL's DDL redo records, and checkpoint serialization.
pub(crate) fn create_table_sql(name: &str, schema: &TableSchema) -> String {
    let cols: Vec<String> = schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut def = format!("{} {}", c.name, c.ty);
            if schema.primary_key == Some(i) {
                def.push_str(" PRIMARY KEY");
            } else {
                if c.not_null {
                    def.push_str(" NOT NULL");
                }
                if c.unique {
                    def.push_str(" UNIQUE");
                }
            }
            def
        })
        .collect();
    format!("CREATE TABLE {name} ({})", cols.join(", "))
}

/// The `CREATE [UNIQUE] INDEX` statement (no trailing semicolon) that
/// recreates `idx` over the column named `column_name`.
pub(crate) fn create_index_sql(idx: &Index, column_name: &str) -> String {
    format!(
        "CREATE {}INDEX {} ON {} ({column_name})",
        if idx.unique { "UNIQUE " } else { "" },
        idx.name,
        idx.table
    )
}

/// Whether `idx` is a system index implied by a column constraint — such
/// indexes are recreated by [`create_table_sql`] and must not be emitted as
/// separate `CREATE INDEX` statements.
pub(crate) fn implied_by_constraint(idx: &Index, schema: &TableSchema) -> bool {
    idx.unique && schema.columns.get(idx.column).is_some_and(|c| c.unique)
}

/// Produce a script that recreates every table (schema, constraints,
/// indexes, data). Tables come out in name order; rows in heap order.
pub fn dump_script(db: &Database) -> SqlResult<String> {
    let snapshot = db.snapshot();
    let mut out = String::new();
    let mut names: Vec<&String> = snapshot.tables.keys().collect();
    names.sort();
    for name in names {
        let table = &snapshot.tables[name];
        writeln!(out, "{};", create_table_sql(name, &table.schema))
            .map_err(|_| SqlError::syntax("dump formatting failed"))?;
        // Secondary indexes (system unique indexes were recreated by the
        // column constraints above).
        let mut index_names = table.index_names.clone();
        index_names.sort();
        for idx_name in &index_names {
            if let Some(idx) = snapshot.indexes.get(idx_name) {
                if !implied_by_constraint(idx, &table.schema) {
                    let column = &table.schema.columns[idx.column].name;
                    writeln!(out, "{};", create_index_sql(idx, column))
                        .map_err(|_| SqlError::syntax("dump formatting failed"))?;
                }
            }
        }
        // Data, batched for readability.
        for (_, row) in table.heap.iter() {
            let values: Vec<String> = row.iter().map(literal).collect();
            writeln!(out, "INSERT INTO {name} VALUES ({});", values.join(", "))
                .map_err(|_| SqlError::syntax("dump formatting failed"))?;
        }
    }
    Ok(out)
}

/// Load a dump into a fresh database.
pub fn load_dump(script: &str) -> SqlResult<Database> {
    let db = Database::new();
    db.run_script(script)?;
    Ok(db)
}

/// Structural equality of two databases: same tables, same schemas, same
/// row multisets (order-independent). Used by round-trip tests.
pub fn databases_equal(a: &Database, b: &Database) -> SqlResult<bool> {
    let sa = a.snapshot();
    let sb = b.snapshot();
    if sa.tables.len() != sb.tables.len() {
        return Ok(false);
    }
    for (name, ta) in &sa.tables {
        let Some(tb) = sb.tables.get(name) else {
            return Ok(false);
        };
        if ta.schema != tb.schema {
            return Ok(false);
        }
        let mut conn_a = a.connect();
        let mut conn_b = b.connect();
        let q = format!("SELECT * FROM {name}");
        let (ExecResult::Rows(ra), ExecResult::Rows(rb)) =
            (conn_a.execute(&q)?, conn_b.execute(&q)?)
        else {
            return Ok(false);
        };
        let mut rows_a = ra.rows;
        let mut rows_b = rb.rows;
        let key = |r: &Vec<Value>| {
            r.iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join("\u{1}")
        };
        rows_a.sort_by_key(key);
        rows_b.sort_by_key(key);
        if rows_a != rows_b {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        let db = Database::new();
        db.run_script(
            "CREATE TABLE urldb (url VARCHAR(255) PRIMARY KEY,
                                 title VARCHAR(80) NOT NULL,
                                 score DOUBLE, visits INTEGER UNIQUE);
             CREATE INDEX urldb_title ON urldb (title);
             INSERT INTO urldb VALUES
                ('http://a', 'Quote '' here', 1.5, 10),
                ('http://b', 'Plain', NULL, NULL);",
        )
        .unwrap();
        db
    }

    #[test]
    fn dump_round_trips() {
        let original = sample();
        let script = dump_script(&original).unwrap();
        let restored = load_dump(&script).unwrap();
        assert!(databases_equal(&original, &restored).unwrap());
        // Constraints survive: duplicate PK rejected in the restored copy.
        let mut conn = restored.connect();
        assert!(conn
            .execute("INSERT INTO urldb VALUES ('http://a', 'dup', 0.0, 3)")
            .is_err());
        // Secondary index survives and is used.
        let mut c2 = restored.connect();
        let plan = c2
            .execute("EXPLAIN SELECT * FROM urldb WHERE title = 'Plain'")
            .unwrap();
        let text = format!("{:?}", plan.rows().unwrap().rows);
        assert!(text.contains("urldb_title"), "{text}");
    }

    #[test]
    fn dump_is_plain_sql() {
        let script = dump_script(&sample()).unwrap();
        assert!(script.contains("CREATE TABLE urldb"));
        assert!(script.contains("PRIMARY KEY"));
        assert!(script.contains("NOT NULL"));
        assert!(script.contains("UNIQUE"));
        assert!(script.contains("CREATE INDEX urldb_title ON urldb (title);"));
        assert!(script.contains("'Quote '' here'"));
        assert!(script.contains("NULL, NULL"));
    }

    #[test]
    fn equality_detects_differences() {
        let a = sample();
        let b = sample();
        assert!(databases_equal(&a, &b).unwrap());
        let mut conn = b.connect();
        conn.execute("UPDATE urldb SET title = 'Changed' WHERE url = 'http://b'")
            .unwrap();
        assert!(!databases_equal(&a, &b).unwrap());
    }

    #[test]
    fn empty_database_dumps_empty() {
        assert_eq!(dump_script(&Database::new()).unwrap(), "");
    }
}
