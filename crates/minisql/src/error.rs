//! Error and SQLCODE types.
//!
//! The original gateway surfaced DB2 SQLCODEs to `%SQL_MESSAGE` blocks:
//! `0` for success, `+100` for "no rows", and negative codes for errors. We
//! reproduce that numbering convention so macros written against the paper's
//! semantics (e.g. a message section keyed on `-204`, *object not found*)
//! behave identically.

use std::fmt;

/// A DB2-style SQLCODE.
///
/// Positive codes are warnings, zero is success, negative codes are errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SqlCode(pub i32);

impl SqlCode {
    /// Successful execution.
    pub const SUCCESS: SqlCode = SqlCode(0);
    /// Query produced no rows / fetch past end (DB2 +100).
    pub const NO_DATA: SqlCode = SqlCode(100);
    /// Syntax error in the SQL string (DB2 -104).
    pub const SYNTAX: SqlCode = SqlCode(-104);
    /// Object (table/index) not found (DB2 -204).
    pub const UNDEFINED_OBJECT: SqlCode = SqlCode(-204);
    /// Column not found (DB2 -206).
    pub const UNDEFINED_COLUMN: SqlCode = SqlCode(-206);
    /// Duplicate key / unique violation (DB2 -803).
    pub const DUPLICATE_KEY: SqlCode = SqlCode(-803);
    /// NULL assigned to a NOT NULL column (DB2 -407).
    pub const NOT_NULL_VIOLATION: SqlCode = SqlCode(-407);
    /// Type mismatch in an expression (DB2 -401).
    pub const TYPE_MISMATCH: SqlCode = SqlCode(-401);
    /// Arithmetic exception, e.g. division by zero (DB2 -802).
    pub const ARITHMETIC: SqlCode = SqlCode(-802);
    /// Object already exists (DB2 -601).
    pub const DUPLICATE_OBJECT: SqlCode = SqlCode(-601);
    /// Statement not permitted in the current transaction state (DB2 -925).
    pub const TXN_STATE: SqlCode = SqlCode(-925);
    /// A required resource is unavailable (DB2 -904): the write-ahead log
    /// could not be appended or fsynced, so the statement was not committed.
    pub const RESOURCE: SqlCode = SqlCode(-904);
    /// Processing cancelled due to an interrupt (DB2 -952): the request's
    /// deadline passed or its `RequestCtx` was cancelled mid-statement.
    pub const CANCELLED: SqlCode = SqlCode(dbgw_obs::CANCELLED_SQLCODE);

    /// Whether this code denotes an error (negative).
    pub fn is_error(self) -> bool {
        self.0 < 0
    }
}

impl fmt::Display for SqlCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQLCODE {}", self.0)
    }
}

/// Any error raised by the SQL engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// The DB2-style code for `%SQL_MESSAGE` dispatch.
    pub code: SqlCode,
    /// Human-readable message.
    pub message: String,
}

impl SqlError {
    /// Construct an error with an explicit code.
    pub fn new(code: SqlCode, message: impl Into<String>) -> Self {
        SqlError {
            code,
            message: message.into(),
        }
    }

    /// Syntax error helper.
    pub fn syntax(message: impl Into<String>) -> Self {
        SqlError::new(SqlCode::SYNTAX, message)
    }

    /// Unknown table helper.
    pub fn no_such_table(name: &str) -> Self {
        SqlError::new(
            SqlCode::UNDEFINED_OBJECT,
            format!("table {name} does not exist"),
        )
    }

    /// Unknown column helper.
    pub fn no_such_column(name: &str) -> Self {
        SqlError::new(
            SqlCode::UNDEFINED_COLUMN,
            format!("column {name} does not exist"),
        )
    }

    /// Type-mismatch helper.
    pub fn type_mismatch(message: impl Into<String>) -> Self {
        SqlError::new(SqlCode::TYPE_MISMATCH, message)
    }

    /// Cancellation helper: the statement was interrupted by its request
    /// context (deadline, explicit cancel, or budget).
    pub fn cancelled(reason: dbgw_obs::CancelReason) -> Self {
        SqlError::new(SqlCode::CANCELLED, reason.to_string())
    }

    /// I/O failure helper (SQLCODE −904): durable storage misbehaved.
    pub fn io(context: &str, err: &std::io::Error) -> Self {
        SqlError::new(SqlCode::RESOURCE, format!("{context}: {err}"))
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for SqlError {}

/// Convenience result alias used across the crate.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_follow_db2_sign_convention() {
        assert!(!SqlCode::SUCCESS.is_error());
        assert!(!SqlCode::NO_DATA.is_error());
        assert!(SqlCode::SYNTAX.is_error());
        assert!(SqlCode::DUPLICATE_KEY.is_error());
    }

    #[test]
    fn display_formats() {
        let e = SqlError::no_such_table("urldb");
        assert_eq!(e.to_string(), "SQLCODE -204: table urldb does not exist");
    }
}
