//! Scalar expression evaluation.
//!
//! Expressions evaluate against a *binding environment* (which column names
//! resolve to which positions of the current tuple), a tuple of values, and
//! an optional parameter vector. Aggregate sub-expressions are resolved
//! through an [`AggSource`] supplied by the grouping executor; in any other
//! context they are an error.

use crate::ast::{BinOp, ColumnRef, Expr};
use crate::error::{SqlCode, SqlError, SqlResult};
use crate::like::like_match;
use crate::types::{Truth, Value};

/// Column-name resolution for one query scope.
///
/// Holds, per FROM-clause table (in order), the table's effective name and
/// its column names; tuple positions are the concatenation.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    tables: Vec<(String, Vec<String>)>,
}

impl Bindings {
    /// Empty scope (for table-less `SELECT 1+1`).
    pub fn empty() -> Bindings {
        Bindings::default()
    }

    /// Scope with a single table.
    pub fn single(table: &str, columns: Vec<String>) -> Bindings {
        let mut b = Bindings::default();
        b.push_table(table, columns);
        b
    }

    /// Append a table's columns to the scope (join order).
    pub fn push_table(&mut self, table: &str, columns: Vec<String>) {
        self.tables.push((table.to_owned(), columns));
    }

    /// Total tuple width.
    pub fn width(&self) -> usize {
        self.tables.iter().map(|(_, c)| c.len()).sum()
    }

    /// All column names in tuple order (used by `SELECT *`).
    pub fn all_columns(&self) -> Vec<String> {
        self.tables
            .iter()
            .flat_map(|(_, cols)| cols.iter().cloned())
            .collect()
    }

    /// Tuple positions covered by `table.*`.
    pub fn table_span(&self, table: &str) -> Option<(usize, usize)> {
        let mut offset = 0;
        for (name, cols) in &self.tables {
            if name.eq_ignore_ascii_case(table) {
                return Some((offset, offset + cols.len()));
            }
            offset += cols.len();
        }
        None
    }

    /// Column names for positions in `table.*`.
    pub fn table_columns(&self, table: &str) -> Option<&[String]> {
        self.tables
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(table))
            .map(|(_, cols)| cols.as_slice())
    }

    /// Number of tables in the scope.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Index (FROM-clause position) of the table owning tuple position
    /// `pos`, if in range. The planner uses this to classify predicate
    /// conjuncts by the tables they reference.
    pub fn table_of_position(&self, pos: usize) -> Option<usize> {
        let mut offset = 0;
        for (i, (_, cols)) in self.tables.iter().enumerate() {
            if pos < offset + cols.len() {
                return Some(i);
            }
            offset += cols.len();
        }
        None
    }

    /// Resolve a column reference to a tuple position.
    ///
    /// Unqualified names must be unambiguous across the scope's tables; the
    /// qualified form restricts the search to one table.
    pub fn resolve(&self, col: &ColumnRef) -> SqlResult<usize> {
        let mut found = None;
        let mut offset = 0;
        for (table, cols) in &self.tables {
            if col
                .table
                .as_ref()
                .is_none_or(|t| t.eq_ignore_ascii_case(table))
            {
                for (i, name) in cols.iter().enumerate() {
                    if name.eq_ignore_ascii_case(&col.column) {
                        if found.is_some() {
                            return Err(SqlError::syntax(format!(
                                "ambiguous column reference {col}"
                            )));
                        }
                        found = Some(offset + i);
                    }
                }
            }
            offset += cols.len();
        }
        found.ok_or_else(|| SqlError::no_such_column(&col.to_string()))
    }
}

/// Provider of pre-computed aggregate values during HAVING / aggregate-SELECT
/// evaluation.
pub trait AggSource {
    /// The value of aggregate expression `expr` for the current group, if the
    /// source knows it.
    fn agg_value(&self, expr: &Expr) -> Option<Value>;

    /// The value of window expression `expr` for the current row, if the
    /// source knows it. Only the executor's window pass supplies these.
    fn window_value(&self, _expr: &Expr) -> Option<Value> {
        None
    }
}

/// An [`AggSource`] that knows nothing — any aggregate reference errors.
pub struct NoAggregates;

impl AggSource for NoAggregates {
    fn agg_value(&self, _expr: &Expr) -> Option<Value> {
        None
    }
}

/// Evaluate `expr` to a value.
pub fn eval(
    expr: &Expr,
    bindings: &Bindings,
    row: &[Value],
    params: &[Value],
    aggs: &dyn AggSource,
) -> SqlResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => {
            let idx = bindings.resolve(c)?;
            Ok(row.get(idx).cloned().unwrap_or(Value::Null))
        }
        Expr::Param(i) => params
            .get(i - 1)
            .cloned()
            .ok_or_else(|| SqlError::syntax(format!("no value bound for parameter marker ?{i}"))),
        Expr::Neg(inner) => match eval(inner, bindings, row, params, aggs)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Double(d) => Ok(Value::Double(-d)),
            other => Err(SqlError::type_mismatch(format!("cannot negate {other}"))),
        },
        Expr::Not(inner) => {
            let t = eval_truth(inner, bindings, row, params, aggs)?;
            Ok(truth_to_value(t.not()))
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::And | BinOp::Or => {
                let t = eval_truth(expr, bindings, row, params, aggs)?;
                Ok(truth_to_value(t))
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let t = eval_truth(expr, bindings, row, params, aggs)?;
                Ok(truth_to_value(t))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let l = eval(lhs, bindings, row, params, aggs)?;
                let r = eval(rhs, bindings, row, params, aggs)?;
                arithmetic(*op, l, r)
            }
            BinOp::Concat => {
                let l = eval(lhs, bindings, row, params, aggs)?;
                let r = eval(rhs, bindings, row, params, aggs)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Text(format!(
                    "{}{}",
                    l.to_display_string(),
                    r.to_display_string()
                )))
            }
        },
        Expr::Like { .. } | Expr::IsNull { .. } | Expr::InList { .. } | Expr::Between { .. } => {
            let t = eval_truth(expr, bindings, row, params, aggs)?;
            Ok(truth_to_value(t))
        }
        Expr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, bindings, row, params, aggs)?);
            }
            scalar_function(name, vals)
        }
        Expr::Agg { .. } => aggs
            .agg_value(expr)
            .ok_or_else(|| SqlError::syntax("aggregate function not allowed in this context")),
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => {
            for (when, then) in arms {
                let hit = match operand {
                    // Simple CASE: operand = when (NULL never matches).
                    Some(op) => {
                        let lhs = eval(op, bindings, row, params, aggs)?;
                        let rhs = eval(when, bindings, row, params, aggs)?;
                        lhs.sql_eq(&rhs) == Truth::True
                    }
                    // Searched CASE: when is a predicate.
                    None => eval_truth(when, bindings, row, params, aggs)?.passes(),
                };
                if hit {
                    return eval(then, bindings, row, params, aggs);
                }
            }
            match otherwise {
                Some(e) => eval(e, bindings, row, params, aggs),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, ty } => {
            let v = eval(expr, bindings, row, params, aggs)?;
            cast_value(v, *ty)
        }
        // Subqueries are pre-executed and replaced with literals by the
        // executor (exec::rewrite_expr_subqueries); reaching one here means a
        // context that does not support them (e.g. a correlated reference).
        Expr::Subquery(_) | Expr::InSelect { .. } | Expr::Exists { .. } => Err(SqlError::syntax(
            "subqueries are not allowed in this context (or are correlated)",
        )),
        // Window values are pre-computed per row by the executor's window
        // pass; elsewhere (WHERE, GROUP BY, grouped queries) they are illegal.
        Expr::Window(_) => aggs
            .window_value(expr)
            .ok_or_else(|| SqlError::syntax("window function not allowed in this context")),
    }
}

/// CAST semantics: numeric↔numeric truncates toward zero; text parses to
/// numbers (error when unparsable, like DB2's -420); anything renders to text.
fn cast_value(v: Value, ty: crate::types::SqlType) -> SqlResult<Value> {
    use crate::types::SqlType;
    if v.is_null() {
        return Ok(Value::Null);
    }
    Ok(match (v, ty) {
        (v @ Value::Int(_), SqlType::Integer) => v,
        (Value::Double(d), SqlType::Integer) => Value::Int(d.trunc() as i64),
        (Value::Text(t), SqlType::Integer) => Value::Int(
            t.trim()
                .parse::<i64>()
                .or_else(|_| t.trim().parse::<f64>().map(|d| d.trunc() as i64))
                .map_err(|_| SqlError::type_mismatch(format!("cannot cast '{t}' to INTEGER")))?,
        ),
        (Value::Int(i), SqlType::Double) => Value::Double(i as f64),
        (v @ Value::Double(_), SqlType::Double) => v,
        (Value::Text(t), SqlType::Double) => Value::Double(
            t.trim()
                .parse::<f64>()
                .map_err(|_| SqlError::type_mismatch(format!("cannot cast '{t}' to DOUBLE")))?,
        ),
        (v, SqlType::Varchar) => Value::Text(v.to_display_string()),
        (v @ Value::Date(_), SqlType::Date) => v,
        (Value::Text(t), SqlType::Date) => Value::Date(
            crate::date::parse_date(&t)
                .ok_or_else(|| SqlError::type_mismatch(format!("cannot cast '{t}' to DATE")))?,
        ),
        (v, SqlType::Date) => {
            return Err(SqlError::type_mismatch(format!("cannot cast {v} to DATE")))
        }
        (Value::Date(_), SqlType::Integer | SqlType::Double) => {
            return Err(SqlError::type_mismatch(
                "cannot cast DATE to a number (subtract dates instead)",
            ))
        }
        (Value::Null, _) => Value::Null,
    })
}

/// Evaluate `expr` as a predicate under three-valued logic.
pub fn eval_truth(
    expr: &Expr,
    bindings: &Bindings,
    row: &[Value],
    params: &[Value],
    aggs: &dyn AggSource,
) -> SqlResult<Truth> {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            let l = eval_truth(lhs, bindings, row, params, aggs)?;
            // Short-circuit only on definite False — Unknown must still
            // combine per 3VL.
            if l == Truth::False {
                return Ok(Truth::False);
            }
            Ok(l.and(eval_truth(rhs, bindings, row, params, aggs)?))
        }
        Expr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
        } => {
            let l = eval_truth(lhs, bindings, row, params, aggs)?;
            if l == Truth::True {
                return Ok(Truth::True);
            }
            Ok(l.or(eval_truth(rhs, bindings, row, params, aggs)?))
        }
        Expr::Not(inner) => Ok(eval_truth(inner, bindings, row, params, aggs)?.not()),
        Expr::Binary { op, lhs, rhs }
            if matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) =>
        {
            let l = eval(lhs, bindings, row, params, aggs)?;
            let r = eval(rhs, bindings, row, params, aggs)?;
            if l.is_null() || r.is_null() {
                return Ok(Truth::Unknown);
            }
            let Some(ord) = l.compare(&r) else {
                return Err(SqlError::type_mismatch(format!(
                    "cannot compare {l} with {r}"
                )));
            };
            Ok(Truth::from_bool(match op {
                BinOp::Eq => ord.is_eq(),
                BinOp::Ne => ord.is_ne(),
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, bindings, row, params, aggs)?;
            Ok(Truth::from_bool(v.is_null() != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            escape,
            negated,
        } => {
            let v = eval(expr, bindings, row, params, aggs)?;
            let p = eval(pattern, bindings, row, params, aggs)?;
            if v.is_null() || p.is_null() {
                return Ok(Truth::Unknown);
            }
            let text = v.to_display_string();
            let pat = p.to_display_string();
            let hit = like_match(&text, &pat, *escape);
            Ok(Truth::from_bool(hit != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, bindings, row, params, aggs)?;
            if v.is_null() {
                return Ok(Truth::Unknown);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, bindings, row, params, aggs)?;
                match v.sql_eq(&w) {
                    Truth::True => return Ok(Truth::from_bool(!*negated)),
                    Truth::Unknown => saw_null = true,
                    Truth::False => {}
                }
            }
            if saw_null {
                Ok(Truth::Unknown)
            } else {
                Ok(Truth::from_bool(*negated))
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, bindings, row, params, aggs)?;
            let l = eval(lo, bindings, row, params, aggs)?;
            let h = eval(hi, bindings, row, params, aggs)?;
            if v.is_null() || l.is_null() || h.is_null() {
                return Ok(Truth::Unknown);
            }
            let ge_lo = v.compare(&l).map(|o| o.is_ge());
            let le_hi = v.compare(&h).map(|o| o.is_le());
            match (ge_lo, le_hi) {
                (Some(a), Some(b)) => Ok(Truth::from_bool((a && b) != *negated)),
                _ => Err(SqlError::type_mismatch("BETWEEN operands incomparable")),
            }
        }
        // Everything else: evaluate as a value, nonzero/non-null-true.
        other => {
            let v = eval(other, bindings, row, params, aggs)?;
            Ok(match v {
                Value::Null => Truth::Unknown,
                Value::Int(i) => Truth::from_bool(i != 0),
                Value::Double(d) => Truth::from_bool(d != 0.0),
                Value::Text(_) | Value::Date(_) => {
                    return Err(SqlError::type_mismatch(
                        "string or date used where a condition is required",
                    ))
                }
            })
        }
    }
}

fn truth_to_value(t: Truth) -> Value {
    match t {
        Truth::True => Value::Int(1),
        Truth::False => Value::Int(0),
        Truth::Unknown => Value::Null,
    }
}

fn arithmetic(op: BinOp, l: Value, r: Value) -> SqlResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Date arithmetic: date ± days, date - date = days.
    match (&l, &r, op) {
        (Value::Date(d), Value::Int(n), BinOp::Add) => return Ok(Value::Date(d + n)),
        (Value::Int(n), Value::Date(d), BinOp::Add) => return Ok(Value::Date(d + n)),
        (Value::Date(d), Value::Int(n), BinOp::Sub) => return Ok(Value::Date(d - n)),
        (Value::Date(a), Value::Date(b), BinOp::Sub) => return Ok(Value::Int(a - b)),
        (Value::Date(_), _, _) | (_, Value::Date(_), _) => {
            return Err(SqlError::type_mismatch(format!(
                "unsupported date arithmetic: {l} {op:?} {r}"
            )))
        }
        _ => {}
    }
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let (a, b) = (*a, *b);
            match op {
                BinOp::Add => Ok(Value::Int(a.wrapping_add(b))),
                BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
                BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
                BinOp::Div => {
                    if b == 0 {
                        Err(SqlError::new(SqlCode::ARITHMETIC, "division by zero"))
                    } else {
                        Ok(Value::Int(a.wrapping_div(b)))
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        Err(SqlError::new(SqlCode::ARITHMETIC, "division by zero"))
                    } else {
                        Ok(Value::Int(a.wrapping_rem(b)))
                    }
                }
                _ => unreachable!(),
            }
        }
        _ => {
            let a = to_f64(&l)?;
            let b = to_f64(&r)?;
            match op {
                BinOp::Add => Ok(Value::Double(a + b)),
                BinOp::Sub => Ok(Value::Double(a - b)),
                BinOp::Mul => Ok(Value::Double(a * b)),
                BinOp::Div => {
                    if b == 0.0 {
                        Err(SqlError::new(SqlCode::ARITHMETIC, "division by zero"))
                    } else {
                        Ok(Value::Double(a / b))
                    }
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        Err(SqlError::new(SqlCode::ARITHMETIC, "division by zero"))
                    } else {
                        Ok(Value::Double(a % b))
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

fn to_f64(v: &Value) -> SqlResult<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Double(d) => Ok(*d),
        other => Err(SqlError::type_mismatch(format!("{other} is not numeric"))),
    }
}

fn to_text(v: &Value) -> SqlResult<&str> {
    match v {
        Value::Text(t) => Ok(t),
        other => Err(SqlError::type_mismatch(format!("{other} is not a string"))),
    }
}

/// Built-in scalar functions.
fn scalar_function(name: &str, mut args: Vec<Value>) -> SqlResult<Value> {
    let argc = args.len();
    let wrong_argc = |want: &str| {
        Err(SqlError::syntax(format!(
            "{name} expects {want} argument(s), got {argc}"
        )))
    };
    match name {
        "UPPER" | "UCASE" => {
            if argc != 1 {
                return wrong_argc("1");
            }
            let v = args.remove(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(to_text(&v)?.to_uppercase()))
        }
        "LOWER" | "LCASE" => {
            if argc != 1 {
                return wrong_argc("1");
            }
            let v = args.remove(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(to_text(&v)?.to_lowercase()))
        }
        "LENGTH" => {
            if argc != 1 {
                return wrong_argc("1");
            }
            let v = args.remove(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(to_text(&v)?.chars().count() as i64))
        }
        "TRIM" => {
            if argc != 1 {
                return wrong_argc("1");
            }
            let v = args.remove(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(to_text(&v)?.trim().to_owned()))
        }
        "LTRIM" | "RTRIM" => {
            if argc != 1 {
                return wrong_argc("1");
            }
            let v = args.remove(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            let t = to_text(&v)?;
            Ok(Value::Text(if name == "LTRIM" {
                t.trim_start().to_owned()
            } else {
                t.trim_end().to_owned()
            }))
        }
        "ABS" => {
            if argc != 1 {
                return wrong_argc("1");
            }
            match args.remove(0) {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Double(d) => Ok(Value::Double(d.abs())),
                other => Err(SqlError::type_mismatch(format!("ABS of {other}"))),
            }
        }
        "ROUND" => {
            if argc != 1 && argc != 2 {
                return wrong_argc("1 or 2");
            }
            let places = if argc == 2 {
                match args.pop().unwrap() {
                    Value::Int(i) => i,
                    Value::Null => return Ok(Value::Null),
                    other => return Err(SqlError::type_mismatch(format!("ROUND places {other}"))),
                }
            } else {
                0
            };
            match args.remove(0) {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Double(d) => {
                    let f = 10f64.powi(places as i32);
                    Ok(Value::Double((d * f).round() / f))
                }
                other => Err(SqlError::type_mismatch(format!("ROUND of {other}"))),
            }
        }
        "MOD" => {
            if argc != 2 {
                return wrong_argc("2");
            }
            let b = args.pop().unwrap();
            let a = args.pop().unwrap();
            arithmetic(BinOp::Mod, a, b)
        }
        "COALESCE" | "VALUE" => {
            if argc == 0 {
                return wrong_argc("at least 1");
            }
            for v in args {
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "NULLIF" => {
            if argc != 2 {
                return wrong_argc("2");
            }
            let b = args.pop().unwrap();
            let a = args.pop().unwrap();
            if a.sql_eq(&b) == Truth::True {
                Ok(Value::Null)
            } else {
                Ok(a)
            }
        }
        "SUBSTR" | "SUBSTRING" => {
            if argc != 2 && argc != 3 {
                return wrong_argc("2 or 3");
            }
            let len = if argc == 3 {
                match args.pop().unwrap() {
                    Value::Int(i) if i >= 0 => Some(i as usize),
                    Value::Null => return Ok(Value::Null),
                    other => return Err(SqlError::type_mismatch(format!("SUBSTR length {other}"))),
                }
            } else {
                None
            };
            let start = match args.pop().unwrap() {
                Value::Int(i) if i >= 1 => (i - 1) as usize,
                Value::Null => return Ok(Value::Null),
                other => return Err(SqlError::type_mismatch(format!("SUBSTR start {other}"))),
            };
            let v = args.remove(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            let chars: Vec<char> = to_text(&v)?.chars().collect();
            let end = match len {
                Some(l) => (start + l).min(chars.len()),
                None => chars.len(),
            };
            if start >= chars.len() {
                return Ok(Value::Text(String::new()));
            }
            Ok(Value::Text(chars[start..end].iter().collect()))
        }
        "CHAR" => {
            // DB2 CHAR(): render any value as text.
            if argc != 1 {
                return wrong_argc("1");
            }
            let v = args.remove(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(v.to_display_string()))
        }
        "REPLACE" => {
            if argc != 3 {
                return wrong_argc("3");
            }
            let with = args.pop().unwrap();
            let from = args.pop().unwrap();
            let s = args.pop().unwrap();
            if s.is_null() || from.is_null() || with.is_null() {
                return Ok(Value::Null);
            }
            let needle = to_text(&from)?;
            if needle.is_empty() {
                return Ok(s); // DB2: empty search string leaves input unchanged
            }
            Ok(Value::Text(to_text(&s)?.replace(needle, to_text(&with)?)))
        }
        "POSITION" | "LOCATE" | "INSTR" => {
            // POSITION(needle, haystack): 1-based index, 0 when absent.
            if argc != 2 {
                return wrong_argc("2");
            }
            let hay = args.pop().unwrap();
            let needle = args.pop().unwrap();
            if hay.is_null() || needle.is_null() {
                return Ok(Value::Null);
            }
            let hay = to_text(&hay)?;
            let needle = to_text(&needle)?;
            Ok(Value::Int(match hay.find(needle) {
                Some(byte_at) => (hay[..byte_at].chars().count() + 1) as i64,
                None => 0,
            }))
        }
        "LEFT" | "RIGHT" => {
            if argc != 2 {
                return wrong_argc("2");
            }
            let n = match args.pop().unwrap() {
                Value::Int(i) if i >= 0 => i as usize,
                Value::Null => return Ok(Value::Null),
                other => return Err(SqlError::type_mismatch(format!("{name} length {other}"))),
            };
            let s = args.pop().unwrap();
            if s.is_null() {
                return Ok(Value::Null);
            }
            let chars: Vec<char> = to_text(&s)?.chars().collect();
            let n = n.min(chars.len());
            let slice = if name == "LEFT" {
                &chars[..n]
            } else {
                &chars[chars.len() - n..]
            };
            Ok(Value::Text(slice.iter().collect()))
        }
        "CONCAT" => {
            // Variadic CONCAT with SQL NULL propagation, like `||` chains.
            if argc == 0 {
                return wrong_argc("at least 1");
            }
            let mut out = String::new();
            for v in args {
                if v.is_null() {
                    return Ok(Value::Null);
                }
                out.push_str(&v.to_display_string());
            }
            Ok(Value::Text(out))
        }
        "YEAR" | "MONTH" | "DAY" => {
            if argc != 1 {
                return wrong_argc("1");
            }
            match args.remove(0) {
                Value::Null => Ok(Value::Null),
                Value::Date(days) => {
                    let (y, m, d) = crate::date::civil_from_days(days);
                    Ok(Value::Int(match name {
                        "YEAR" => i64::from(y),
                        "MONTH" => i64::from(m),
                        _ => i64::from(d),
                    }))
                }
                other => Err(SqlError::type_mismatch(format!("{name} of {other}"))),
            }
        }
        "SIGN" => {
            if argc != 1 {
                return wrong_argc("1");
            }
            match args.remove(0) {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.signum())),
                Value::Double(d) => Ok(Value::Int(if d > 0.0 {
                    1
                } else if d < 0.0 {
                    -1
                } else {
                    0
                })),
                other => Err(SqlError::type_mismatch(format!("SIGN of {other}"))),
            }
        }
        "FLOOR" | "CEIL" | "CEILING" => {
            if argc != 1 {
                return wrong_argc("1");
            }
            match args.remove(0) {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Double(d) => Ok(Value::Double(if name == "FLOOR" {
                    d.floor()
                } else {
                    d.ceil()
                })),
                other => Err(SqlError::type_mismatch(format!("{name} of {other}"))),
            }
        }
        other => Err(SqlError::syntax(format!("unknown function {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SelectItem, Statement};
    use crate::parser::parse;

    /// Parse `SELECT <expr>` and evaluate the expression with no tables.
    fn eval_str(expr_sql: &str) -> SqlResult<Value> {
        let stmt = parse(&format!("SELECT {expr_sql}")).unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        eval(expr, &Bindings::empty(), &[], &[], &NoAggregates)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_str("2 + 3 * 4").unwrap(), Value::Int(14));
        assert_eq!(eval_str("(2 + 3) * 4").unwrap(), Value::Int(20));
        assert_eq!(eval_str("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval_str("7.0 / 2").unwrap(), Value::Double(3.5));
        assert_eq!(eval_str("7 % 3").unwrap(), Value::Int(1));
        assert_eq!(eval_str("-5").unwrap(), Value::Int(-5));
    }

    #[test]
    fn division_by_zero_is_sqlcode_802() {
        let err = eval_str("1 / 0").unwrap_err();
        assert_eq!(err.code, SqlCode::ARITHMETIC);
        assert!(eval_str("1.5 / 0").is_err());
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval_str("NULL + 1").unwrap(), Value::Null);
        assert_eq!(eval_str("NULL || 'x'").unwrap(), Value::Null);
        assert_eq!(eval_str("UPPER(NULL)").unwrap(), Value::Null);
    }

    #[test]
    fn concat() {
        assert_eq!(
            eval_str("'foo' || 'bar'").unwrap(),
            Value::Text("foobar".into())
        );
        assert_eq!(eval_str("'n=' || 42").unwrap(), Value::Text("n=42".into()));
    }

    #[test]
    fn comparisons_yield_int_bool() {
        assert_eq!(eval_str("1 < 2").unwrap(), Value::Int(1));
        assert_eq!(eval_str("2 < 1").unwrap(), Value::Int(0));
        assert_eq!(eval_str("NULL = NULL").unwrap(), Value::Null);
    }

    #[test]
    fn predicates() {
        assert_eq!(eval_str("'abc' LIKE 'a%'").unwrap(), Value::Int(1));
        assert_eq!(eval_str("'abc' NOT LIKE 'a%'").unwrap(), Value::Int(0));
        assert_eq!(eval_str("NULL IS NULL").unwrap(), Value::Int(1));
        assert_eq!(eval_str("1 IS NOT NULL").unwrap(), Value::Int(1));
        assert_eq!(eval_str("2 IN (1, 2, 3)").unwrap(), Value::Int(1));
        assert_eq!(eval_str("5 NOT IN (1, 2, 3)").unwrap(), Value::Int(1));
        assert_eq!(eval_str("2 BETWEEN 1 AND 3").unwrap(), Value::Int(1));
    }

    #[test]
    fn in_list_with_null_is_unknown_when_no_hit() {
        assert_eq!(eval_str("5 IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_str("1 IN (1, NULL)").unwrap(), Value::Int(1));
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval_str("UPPER('abc')").unwrap(), Value::Text("ABC".into()));
        assert_eq!(eval_str("LOWER('AbC')").unwrap(), Value::Text("abc".into()));
        assert_eq!(eval_str("LENGTH('héllo')").unwrap(), Value::Int(5));
        assert_eq!(
            eval_str("SUBSTR('hello', 2, 3)").unwrap(),
            Value::Text("ell".into())
        );
        assert_eq!(
            eval_str("SUBSTR('hello', 2)").unwrap(),
            Value::Text("ello".into())
        );
        assert_eq!(
            eval_str("SUBSTR('hi', 9)").unwrap(),
            Value::Text(String::new())
        );
        assert_eq!(eval_str("TRIM('  x ')").unwrap(), Value::Text("x".into()));
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(eval_str("ABS(-3)").unwrap(), Value::Int(3));
        assert_eq!(eval_str("ROUND(2.567, 2)").unwrap(), Value::Double(2.57));
        assert_eq!(eval_str("MOD(10, 3)").unwrap(), Value::Int(1));
        assert_eq!(eval_str("COALESCE(NULL, NULL, 7)").unwrap(), Value::Int(7));
        assert_eq!(eval_str("NULLIF(3, 3)").unwrap(), Value::Null);
        assert_eq!(eval_str("NULLIF(3, 4)").unwrap(), Value::Int(3));
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(eval_str("FROBNICATE(1)").is_err());
    }

    #[test]
    fn bindings_resolution() {
        let mut b = Bindings::default();
        b.push_table("a", vec!["id".into(), "x".into()]);
        b.push_table("b", vec!["id".into(), "y".into()]);
        assert_eq!(b.resolve(&ColumnRef::bare("x")).unwrap(), 1);
        assert_eq!(b.resolve(&ColumnRef::bare("y")).unwrap(), 3);
        // Ambiguous unqualified id:
        assert!(b.resolve(&ColumnRef::bare("id")).is_err());
        // Qualified works:
        assert_eq!(
            b.resolve(&ColumnRef {
                table: Some("b".into()),
                column: "ID".into()
            })
            .unwrap(),
            2
        );
        assert_eq!(b.table_span("b"), Some((2, 4)));
        assert_eq!(b.width(), 4);
    }

    #[test]
    fn three_vl_and_or_short_circuit() {
        // FALSE AND error-free-unknown must be FALSE.
        assert_eq!(eval_str("1 = 2 AND NULL = 1").unwrap(), Value::Int(0));
        assert_eq!(eval_str("1 = 1 OR NULL = 1").unwrap(), Value::Int(1));
        assert_eq!(eval_str("1 = 1 AND NULL = 1").unwrap(), Value::Null);
        assert_eq!(eval_str("NOT (NULL = 1)").unwrap(), Value::Null);
    }

    #[test]
    fn params_bound_positionally() {
        let stmt = parse("SELECT ? + ?").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        let v = eval(
            expr,
            &Bindings::empty(),
            &[],
            &[Value::Int(40), Value::Int(2)],
            &NoAggregates,
        )
        .unwrap();
        assert_eq!(v, Value::Int(42));
        assert!(eval(expr, &Bindings::empty(), &[], &[], &NoAggregates).is_err());
    }
}
