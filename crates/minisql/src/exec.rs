//! SELECT execution: scan → join → filter → group/aggregate → project →
//! distinct → sort → limit.
//!
//! Execution follows the plan produced by [`crate::plan::plan_select`]:
//! WHERE/ON conjuncts are pushed to the scans that can evaluate them, each
//! scan tries an index probe over its own conjuncts (equality, range, `IN`,
//! `LIKE 'prefix%'` — on the base of a join as well as its sides), equi-joins
//! run as hash joins with a nested-loop fallback for everything else, and
//! `ORDER BY … LIMIT k` keeps a bounded heap instead of sorting. Intermediate
//! rows are threaded as borrowed [`Cow`] slices so a scan clones nothing and
//! only rows surviving a join are materialized. Every candidate row is still
//! checked against the conjuncts that selected it, so plan choice can only
//! change performance, never results — a property the equivalence suite in
//! `tests/planner_equivalence.rs` exercises.

use crate::analyze::{self, OpId};
use crate::ast::{
    AggFunc, BinOp, ColumnRef, Expr, OrderKey, Select, SelectItem, SetOp, SortDir, WindowFunc,
};
use crate::error::{SqlError, SqlResult};
use crate::eval::{eval, eval_truth, AggSource, Bindings, NoAggregates};
use crate::like::{is_exact, literal_prefix};
use crate::plan::{self, JoinPlan, PlanOptions, SelectPlan};
use crate::state::DbState;
use crate::storage::Row;
use crate::types::Value;
use dbgw_obs::RequestCtx;
use std::borrow::Cow;
use std::collections::HashMap;
use std::ops::Bound;

/// A partially-joined tuple: borrowed straight from a heap until a join (or
/// NULL padding) forces an owned copy.
type SrcRow<'a> = Cow<'a, [Value]>;

/// Cooperative-cancellation stride: the scan, join, and grouping loops poll
/// [`RequestCtx::check`] every this many rows, so a runaway query notices its
/// deadline within a bounded amount of work while the per-row overhead stays
/// one branch on an induction variable.
const CANCEL_STRIDE: usize = 128;

/// Map a tripped request context to the SQLCODE −952 error the `%SQL_MESSAGE`
/// machinery understands.
fn check_cancel(ctx: &RequestCtx) -> SqlResult<()> {
    ctx.check().map_err(SqlError::cancelled)
}

/// A query result: column labels plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Execute a SELECT against the state. `ctx` is the owning request's context;
/// the executor polls it cooperatively (library callers with no request pass
/// [`RequestCtx::unbounded`]).
pub fn run_select(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<ResultSet> {
    run_select_with_options(state, sel, params, ctx, &PlanOptions::from_env())
}

/// Like [`run_select`], but with explicit [`PlanOptions`] — benches and the
/// plan-equivalence property suite use this to run the same query under the
/// optimized and baseline executors and compare results.
pub fn run_select_with_options(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
    opts: &PlanOptions,
) -> SqlResult<ResultSet> {
    if !sel.set_ops.is_empty() {
        return run_compound(state, sel, params, ctx, opts);
    }
    run_single(state, sel, params, ctx, opts)
}

/// Execute a compound SELECT (UNION / EXCEPT / INTERSECT).
fn run_compound(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
    opts: &PlanOptions,
) -> SqlResult<ResultSet> {
    // Compound selects occupy a block of their own, pushing the branches to
    // collector depth ≥ 2: per-operator actuals are not attributed for set
    // operations (the branch operator ids would collide).
    let _analyze_block = analyze::enter_block();
    // The root's ORDER BY / LIMIT were hoisted by the parser to apply to the
    // combined result; run the root branch without them.
    let mut first = sel.clone();
    first.set_ops = Vec::new();
    first.order_by = Vec::new();
    first.limit = None;
    first.offset = None;
    let base = run_single(state, &first, params, ctx, opts)?;
    let width = base.columns.len();
    let mut rows = base.rows;
    for (op, branch) in &sel.set_ops {
        check_cancel(ctx)?;
        let rhs = run_select_with_options(state, branch, params, ctx, opts)?;
        if rhs.columns.len() != width {
            return Err(SqlError::syntax(format!(
                "set operation branches have {width} and {} columns",
                rhs.columns.len()
            )));
        }
        match op {
            SetOp::Union { all: true } => rows.extend(rhs.rows),
            SetOp::Union { all: false } => {
                rows.extend(rhs.rows);
                dedup_rows(&mut rows);
            }
            SetOp::Except { all: false } => {
                dedup_rows(&mut rows);
                rows.retain(|r| !rhs.rows.contains(r));
            }
            SetOp::Except { all: true } => {
                // Bag difference: each right row cancels at most one left copy,
                // leaving max(l - r, 0) copies of each row.
                let mut remaining = rhs.rows;
                rows.retain(|r| match remaining.iter().position(|x| x == r) {
                    Some(i) => {
                        remaining.swap_remove(i);
                        false
                    }
                    None => true,
                });
            }
            SetOp::Intersect { all: false } => {
                dedup_rows(&mut rows);
                rows.retain(|r| rhs.rows.contains(r));
            }
            SetOp::Intersect { all: true } => {
                // Bag intersection: min(l, r) copies of each row.
                let mut remaining = rhs.rows;
                rows.retain(|r| match remaining.iter().position(|x| x == r) {
                    Some(i) => {
                        remaining.swap_remove(i);
                        true
                    }
                    None => false,
                });
            }
        }
    }
    // Hoisted ORDER BY: positional or output-column keys only — there is no
    // single source row to evaluate arbitrary expressions against.
    if !sel.order_by.is_empty() {
        let key_positions: Vec<(usize, SortDir)> = sel
            .order_by
            .iter()
            .map(|k| match &k.expr {
                Expr::Literal(Value::Int(n)) if *n >= 1 && (*n as usize) <= width => {
                    Ok(((*n as usize) - 1, k.dir))
                }
                Expr::Column(c) if c.table.is_none() => base
                    .columns
                    .iter()
                    .position(|l| l.eq_ignore_ascii_case(&c.column))
                    .map(|p| (p, k.dir))
                    .ok_or_else(|| SqlError::no_such_column(&c.column)),
                _ => Err(SqlError::syntax(
                    "ORDER BY on a set operation must use output column names or positions",
                )),
            })
            .collect::<SqlResult<_>>()?;
        rows.sort_by(|a, b| {
            for &(pos, dir) in &key_positions {
                let ord = a[pos].order_key(&b[pos]);
                let ord = match dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    let offset = sel.offset.unwrap_or(0);
    let rows: Vec<Row> = rows
        .into_iter()
        .skip(offset)
        .take(sel.limit.unwrap_or(usize::MAX))
        .collect();
    Ok(ResultSet {
        columns: base.columns,
        rows,
    })
}

fn dedup_rows(rows: &mut Vec<Row>) {
    let mut seen: Vec<Row> = Vec::with_capacity(rows.len());
    rows.retain(|r| {
        if seen.contains(r) {
            false
        } else {
            seen.push(r.clone());
            true
        }
    });
}

fn run_single(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
    opts: &PlanOptions,
) -> SqlResult<ResultSet> {
    check_cancel(ctx)?;
    // One EXPLAIN ANALYZE block; subqueries re-entering run_single nest to
    // depth ≥ 2 and are excluded from the outer block's actuals.
    let _analyze_block = analyze::enter_block();
    // Cost-based join reordering first, on the original AST: EXPLAIN applies
    // the identical rewrite to the identical AST, so the order it prints is
    // the order that runs.
    let reordered;
    let sel = if opts.reorder {
        match crate::cost::reorder_select(state, sel, params) {
            Some(r) => {
                dbgw_obs::metrics().join_reorders.inc();
                reordered = r;
                &reordered
            }
            None => sel,
        }
    } else {
        sel
    };
    // Pre-execute any (uncorrelated) subqueries, replacing them with literal
    // lists/values, so the scalar evaluator never needs database access.
    let rewritten;
    let sel = if select_has_subqueries(sel) {
        rewritten = rewrite_select_subqueries(state, sel, params, ctx)?;
        &rewritten
    } else {
        sel
    };

    // 1. Resolve the FROM-clause scope (unknown tables error here).
    let bindings = full_bindings(state, sel)?;

    // 1b. Bind-time column validation: unknown columns must error even when
    // the table is empty (DB2 validated names at PREPARE).
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            validate_columns(expr, &bindings)?;
        }
    }
    if let Some(w) = &sel.where_clause {
        validate_columns(w, &bindings)?;
    }
    for g in &sel.group_by {
        validate_columns(g, &bindings)?;
    }
    if let Some(h) = &sel.having {
        validate_columns(h, &bindings)?;
    }

    // 2. Plan, then scan + join accordingly.
    let sel_plan = plan::plan_select(sel, &bindings, opts);
    if dbgw_obs::trace::trace_active() {
        dbgw_obs::trace::note("plan", plan_note(state, sel, &sel_plan, params, opts));
    }
    if !sel.joins.is_empty() && sel_plan.pushed_where > 0 {
        dbgw_obs::metrics().pushdown_applied.inc();
        plan::record(|s| s.pushed_conjuncts += sel_plan.pushed_where as u64);
    }
    let mut rows = execute_source(state, sel, &sel_plan, params, ctx, opts)?;

    // 3. Residual WHERE conjuncts (everything the planner did not push).
    let filter_in = rows.len() as u64;
    let filter_t0 = analyze::start();
    if !sel_plan.residual.is_empty() {
        let mut kept = Vec::with_capacity(rows.len());
        for (i, row) in rows.into_iter().enumerate() {
            if i % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            if passes_all(&sel_plan.residual, &bindings, &row, params)? {
                kept.push(row);
            }
        }
        rows = kept;
    }
    if sel.where_clause.is_some() {
        analyze::record(OpId::WhereFilter, filter_t0, filter_in, rows.len() as u64);
    }

    let grouped = !sel.group_by.is_empty()
        || sel.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || sel.having.as_ref().is_some_and(Expr::contains_aggregate)
        || sel.order_by.iter().any(|k| k.expr.contains_aggregate());

    if grouped {
        run_grouped(sel, &bindings, rows, params, ctx, sel_plan.topk)
    } else {
        run_plain(sel, &bindings, rows, params, ctx, sel_plan.topk)
    }
}

/// True when every conjunct evaluates to TRUE for `row` (3-valued logic:
/// FALSE and UNKNOWN both reject, exactly as the AND of the conjuncts would).
fn passes_all(
    conjuncts: &[&Expr],
    bindings: &Bindings,
    row: &[Value],
    params: &[Value],
) -> SqlResult<bool> {
    for conj in conjuncts {
        if !eval_truth(conj, bindings, row, params, &NoAggregates)?.passes() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Resolve every column reference in `expr`, erroring on unknown names —
/// independent of how many rows will flow.
fn validate_columns(expr: &Expr, bindings: &Bindings) -> SqlResult<()> {
    match expr {
        Expr::Column(c) => bindings.resolve(c).map(|_| ()),
        Expr::Literal(_) | Expr::Param(_) => Ok(()),
        Expr::Neg(i) | Expr::Not(i) => validate_columns(i, bindings),
        Expr::Binary { lhs, rhs, .. } => {
            validate_columns(lhs, bindings)?;
            validate_columns(rhs, bindings)
        }
        Expr::Like { expr, pattern, .. } => {
            validate_columns(expr, bindings)?;
            validate_columns(pattern, bindings)
        }
        Expr::IsNull { expr, .. } => validate_columns(expr, bindings),
        Expr::InList { expr, list, .. } => {
            validate_columns(expr, bindings)?;
            list.iter().try_for_each(|e| validate_columns(e, bindings))
        }
        Expr::Between { expr, lo, hi, .. } => {
            validate_columns(expr, bindings)?;
            validate_columns(lo, bindings)?;
            validate_columns(hi, bindings)
        }
        Expr::Func { args, .. } => args.iter().try_for_each(|e| validate_columns(e, bindings)),
        Expr::Agg { arg, .. } => match arg {
            Some(a) => validate_columns(a, bindings),
            None => Ok(()),
        },
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => {
            if let Some(o) = operand {
                validate_columns(o, bindings)?;
            }
            for (w, t) in arms {
                validate_columns(w, bindings)?;
                validate_columns(t, bindings)?;
            }
            if let Some(e) = otherwise {
                validate_columns(e, bindings)?;
            }
            Ok(())
        }
        Expr::Cast { expr, .. } => validate_columns(expr, bindings),
        // Subqueries validate their own scopes when they execute.
        Expr::Subquery(_) | Expr::Exists { .. } => Ok(()),
        Expr::InSelect { expr, .. } => validate_columns(expr, bindings),
        Expr::Window(w) => {
            if let WindowFunc::Agg { arg: Some(a), .. } = &w.func {
                validate_columns(a, bindings)?;
            }
            for e in &w.partition_by {
                validate_columns(e, bindings)?;
            }
            for key in &w.order_by {
                validate_columns(&key.expr, bindings)?;
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Source construction (FROM + JOIN), with access-path selection.
// ---------------------------------------------------------------------------

/// Column names of a table, in ordinal order.
fn column_names(state: &DbState, table: &str) -> SqlResult<Vec<String>> {
    Ok(state
        .table(table)?
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect())
}

/// The full FROM-clause scope: base table plus every join, in order.
fn full_bindings(state: &DbState, sel: &Select) -> SqlResult<Bindings> {
    let Some(base) = &sel.from else {
        return Ok(Bindings::empty());
    };
    let mut bindings = Bindings::single(base.effective_name(), column_names(state, &base.name)?);
    for join in &sel.joins {
        bindings.push_table(
            join.table.effective_name(),
            column_names(state, &join.table.name)?,
        );
    }
    Ok(bindings)
}

/// Scan one table: try an index probe over the pushed conjuncts, fall back
/// to a heap walk, and keep only rows passing every conjunct. Returns
/// borrowed rows — nothing is cloned here.
#[allow(clippy::too_many_arguments)]
fn scan_table<'a>(
    state: &'a DbState,
    effective: &str,
    table_name: &str,
    filters: &[&Expr],
    params: &[Value],
    ctx: &RequestCtx,
    opts: &PlanOptions,
    aop: OpId,
) -> SqlResult<Vec<&'a Row>> {
    let analyze_t0 = analyze::start();
    let table = state.table(table_name)?;
    let local = Bindings::single(effective, column_names(state, table_name)?);
    // A probe is only attempted for conjuncts the cost model estimates as
    // selective; a predicate keeping most of the table scans faster flat.
    let probed = if opts.index_paths {
        filters.iter().find_map(|conj| {
            if !crate::cost::probe_worthwhile(state, effective, table_name, conj, params) {
                return None;
            }
            probe_conjunct(state, effective, table_name, &local, conj, params)
        })
    } else {
        None
    };
    let mut out = Vec::new();
    let mut scanned: u64 = 0;
    match probed {
        Some(ids) => {
            for (i, row) in ids.iter().filter_map(|id| table.heap.get(*id)).enumerate() {
                if i % CANCEL_STRIDE == 0 {
                    check_cancel(ctx)?;
                }
                scanned += 1;
                if passes_all(filters, &local, row, params)? {
                    out.push(row);
                }
            }
        }
        None => {
            for (i, (_, row)) in table.heap.iter().enumerate() {
                if i % CANCEL_STRIDE == 0 {
                    check_cancel(ctx)?;
                }
                scanned += 1;
                if passes_all(filters, &local, row, params)? {
                    out.push(row);
                }
            }
        }
    }
    plan::record(|s| s.rows_scanned += scanned);
    dbgw_obs::metrics().rows_scanned.add(scanned);
    analyze::record(aop, analyze_t0, scanned, out.len() as u64);
    Ok(out)
}

/// Materialize the FROM + JOIN pipeline under `sel_plan`.
fn execute_source<'a>(
    state: &'a DbState,
    sel: &Select,
    sel_plan: &SelectPlan<'_>,
    params: &[Value],
    ctx: &RequestCtx,
    opts: &PlanOptions,
) -> SqlResult<Vec<SrcRow<'a>>> {
    let Some(base) = &sel.from else {
        // Table-less SELECT evaluates items once against an empty row.
        return Ok(vec![Cow::Owned(Vec::new())]);
    };
    let mut rows: Vec<SrcRow<'a>> = scan_table(
        state,
        base.effective_name(),
        &base.name,
        &sel_plan.base.filters,
        params,
        ctx,
        opts,
        OpId::Base,
    )?
    .into_iter()
    .map(|r| Cow::Borrowed(r.as_slice()))
    .collect();
    // Prefix scope: grows one table per join, so predicate evaluation at
    // join j sees exactly the tables bound so far (a reference to a
    // later table errors, as it did pre-planner).
    let mut prefix = Bindings::single(base.effective_name(), column_names(state, &base.name)?);
    let mut left_width = prefix.width();

    for (j, join) in sel.joins.iter().enumerate() {
        let jp = &sel_plan.joins[j];
        let right_width = column_names(state, &join.table.name)?.len();
        prefix.push_table(
            join.table.effective_name(),
            column_names(state, &join.table.name)?,
        );
        if rows.is_empty() {
            // A join (inner or LEFT OUTER) of an empty left side is empty;
            // skip the right scan (and its predicate evaluation) entirely.
            analyze::record(OpId::Join(j), analyze::start(), 0, 0);
            left_width += right_width;
            continue;
        }
        let right_local = Bindings::single(
            join.table.effective_name(),
            column_names(state, &join.table.name)?,
        );
        let right_rows = scan_table(
            state,
            join.table.effective_name(),
            &join.table.name,
            &jp.scan.filters,
            params,
            ctx,
            opts,
            OpId::JoinScan(j),
        )?;
        let join_in = rows.len() as u64;
        let join_t0 = analyze::start();
        rows = join_step(
            rows,
            right_rows,
            jp,
            join.left_outer,
            &prefix,
            &right_local,
            left_width,
            right_width,
            params,
            ctx,
        )?;
        analyze::record(OpId::Join(j), join_t0, join_in, rows.len() as u64);
        left_width += right_width;
    }
    Ok(rows)
}

/// One join step: pre-filter the left side (inner joins), pair rows by hash
/// or nested loop, then apply the post-join WHERE conjuncts.
#[allow(clippy::too_many_arguments)]
fn join_step<'a>(
    mut left: Vec<SrcRow<'a>>,
    right_rows: Vec<&'a Row>,
    jp: &JoinPlan<'_>,
    left_outer: bool,
    bindings: &Bindings,
    right_local: &Bindings,
    left_width: usize,
    right_width: usize,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<Vec<SrcRow<'a>>> {
    if !jp.left_filters.is_empty() {
        let mut kept = Vec::with_capacity(left.len());
        for (i, row) in left.into_iter().enumerate() {
            if i % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            if passes_all(&jp.left_filters, bindings, &row, params)? {
                kept.push(row);
            }
        }
        left = kept;
    }
    let mut joined = if right_rows.is_empty() {
        if left_outer {
            left.into_iter()
                .map(|l| {
                    let mut c = l.into_owned();
                    c.extend(std::iter::repeat_n(Value::Null, right_width));
                    Cow::Owned(c)
                })
                .collect()
        } else {
            Vec::new()
        }
    } else if jp.use_hash {
        hash_join(
            left,
            &right_rows,
            jp,
            left_outer,
            bindings,
            right_local,
            right_width,
            params,
            ctx,
        )?
    } else {
        nested_join(
            left,
            &right_rows,
            jp,
            left_outer,
            bindings,
            left_width,
            right_width,
            params,
            ctx,
        )?
    };
    if !jp.post_filters.is_empty() {
        let mut kept = Vec::with_capacity(joined.len());
        for (i, row) in joined.into_iter().enumerate() {
            if i % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            if passes_all(&jp.post_filters, bindings, &row, params)? {
                kept.push(row);
            }
        }
        joined = kept;
    }
    Ok(joined)
}

/// A join key value that can never compare TRUE under `=`: NULL (UNKNOWN)
/// and NaN (incomparable). Rows with such keys are skipped on both the build
/// and probe sides, matching 3-valued `=` exactly.
fn key_excluded(v: &Value) -> bool {
    v.is_null() || matches!(v, Value::Double(d) if d.is_nan())
}

/// Hash equi-join. Builds on the smaller side for inner joins (restoring
/// left-major output order afterwards); LEFT OUTER always builds on the
/// right so unmatched left rows pad in order. Output order is identical to
/// the nested-loop strategy: left rows in scan order, each row's matches in
/// right scan order.
#[allow(clippy::too_many_arguments)]
fn hash_join<'a>(
    left: Vec<SrcRow<'a>>,
    right_rows: &[&'a Row],
    jp: &JoinPlan<'_>,
    left_outer: bool,
    bindings: &Bindings,
    right_local: &Bindings,
    right_width: usize,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<Vec<SrcRow<'a>>> {
    dbgw_obs::metrics().join_hash.inc();
    plan::record(|s| s.hash_joins += 1);
    let nkeys = jp.keys.len();
    // Right-side key tuples, evaluated once per right row against the bare
    // heap row (table-local bindings); None = contains NULL/NaN, never joins.
    let mut right_keys: Vec<Option<Vec<Value>>> = Vec::with_capacity(right_rows.len());
    for (i, row) in right_rows.iter().enumerate() {
        if i % CANCEL_STRIDE == 0 {
            check_cancel(ctx)?;
        }
        let mut key = Vec::with_capacity(nkeys);
        for (_, right_expr) in &jp.keys {
            let v = eval(right_expr, right_local, row, params, &NoAggregates)?;
            if key_excluded(&v) {
                key.clear();
                break;
            }
            key.push(v);
        }
        right_keys.push((key.len() == nkeys).then_some(key));
    }
    let left_key = |row: &[Value]| -> SqlResult<Option<Vec<Value>>> {
        let mut key = Vec::with_capacity(nkeys);
        for (left_expr, _) in &jp.keys {
            let v = eval(left_expr, bindings, row, params, &NoAggregates)?;
            if key_excluded(&v) {
                return Ok(None);
            }
            key.push(v);
        }
        Ok(Some(key))
    };

    let mut out: Vec<SrcRow<'a>> = Vec::new();
    if !left_outer && left.len() < right_rows.len() {
        // Build on the (smaller) left side, probe with right rows, then sort
        // the matches back into left-major order.
        let mut table: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(left.len());
        for (li, lrow) in left.iter().enumerate() {
            if li % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            if let Some(key) = left_key(lrow)? {
                table.entry(key).or_default().push(li as u32);
            }
        }
        let mut matches: Vec<(u32, u32, Row)> = Vec::new();
        let mut pairs = 0usize;
        for (ri, rrow) in right_rows.iter().enumerate() {
            if ri % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            let Some(key) = &right_keys[ri] else { continue };
            let Some(lis) = table.get(key) else { continue };
            for &li in lis {
                pairs += 1;
                if pairs % CANCEL_STRIDE == 0 {
                    check_cancel(ctx)?;
                }
                let mut combined = left[li as usize].to_vec();
                combined.extend(rrow.iter().cloned());
                if passes_all(&jp.residual, bindings, &combined, params)? {
                    matches.push((li, ri as u32, combined));
                }
            }
        }
        matches.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        out = matches.into_iter().map(|(_, _, c)| Cow::Owned(c)).collect();
    } else {
        // Build on the right, probe left rows in order.
        let mut table: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(right_rows.len());
        for (ri, key) in right_keys.into_iter().enumerate() {
            if let Some(key) = key {
                table.entry(key).or_default().push(ri as u32);
            }
        }
        let mut pairs = 0usize;
        for (li, lrow) in left.into_iter().enumerate() {
            if li % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            let mut matched = false;
            if let Some(key) = left_key(&lrow)? {
                if let Some(ris) = table.get(&key) {
                    for &ri in ris {
                        pairs += 1;
                        if pairs % CANCEL_STRIDE == 0 {
                            check_cancel(ctx)?;
                        }
                        let mut combined = lrow.to_vec();
                        combined.extend(right_rows[ri as usize].iter().cloned());
                        if passes_all(&jp.residual, bindings, &combined, params)? {
                            matched = true;
                            out.push(Cow::Owned(combined));
                        }
                    }
                }
            }
            if left_outer && !matched {
                let mut combined = lrow.into_owned();
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(Cow::Owned(combined));
            }
        }
    }
    Ok(out)
}

/// Nested-loop join (the fallback for non-equi predicates and cross joins).
/// Pairs are assembled in a scratch buffer; only passing pairs are cloned
/// into the output.
#[allow(clippy::too_many_arguments)]
fn nested_join<'a>(
    left: Vec<SrcRow<'a>>,
    right_rows: &[&'a Row],
    jp: &JoinPlan<'_>,
    left_outer: bool,
    bindings: &Bindings,
    left_width: usize,
    right_width: usize,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<Vec<SrcRow<'a>>> {
    dbgw_obs::metrics().join_nested.inc();
    plan::record(|s| s.nested_joins += 1);
    let mut out: Vec<SrcRow<'a>> = Vec::new();
    let mut buf: Vec<Value> = Vec::with_capacity(left_width + right_width);
    let mut pairs = 0usize;
    for lrow in left {
        let mut matched = false;
        buf.clear();
        buf.extend_from_slice(&lrow);
        for rrow in right_rows {
            pairs += 1;
            if pairs % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            buf.truncate(left_width);
            buf.extend(rrow.iter().cloned());
            if passes_all(&jp.residual, bindings, &buf, params)? {
                matched = true;
                out.push(Cow::Owned(buf.clone()));
            }
        }
        if left_outer && !matched {
            let mut combined = lrow.into_owned();
            combined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(Cow::Owned(combined));
        }
    }
    Ok(out)
}

/// One-line plan summary for `DBGW_TRACE=1` request traces.
fn plan_note(
    state: &DbState,
    sel: &Select,
    sel_plan: &SelectPlan<'_>,
    params: &[Value],
    opts: &PlanOptions,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(base) = &sel.from {
        let access = scan_description(
            state,
            base.effective_name(),
            &base.name,
            &sel_plan.base.filters,
            params,
            opts,
        );
        parts.push(format!(
            "scan {}={}",
            base.effective_name(),
            if access.is_some() { "index" } else { "full" }
        ));
    }
    for (j, join) in sel.joins.iter().enumerate() {
        let jp = &sel_plan.joins[j];
        let strategy = if jp.use_hash {
            format!("hash({} key{})", jp.keys.len(), plural(jp.keys.len()))
        } else {
            "nested".to_string()
        };
        let probe = scan_description(
            state,
            join.table.effective_name(),
            &join.table.name,
            &jp.scan.filters,
            params,
            opts,
        );
        parts.push(format!(
            "join {}={}{}",
            join.table.effective_name(),
            strategy,
            if probe.is_some() { "+index" } else { "" }
        ));
    }
    parts.push(format!(
        "pushed={} residual={}",
        sel_plan.pushed_where,
        sel_plan.residual.len()
    ));
    if let Some(k) = sel_plan.topk {
        parts.push(format!("topk={k}"));
    }
    parts.join("; ")
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// The index-probe description for a scan's conjuncts, if one applies
/// (shared by EXPLAIN and the trace plan note).
fn scan_description(
    state: &DbState,
    effective: &str,
    table_name: &str,
    filters: &[&Expr],
    params: &[Value],
    opts: &PlanOptions,
) -> Option<String> {
    if !opts.index_paths {
        return None;
    }
    let local = Bindings::single(effective, column_names(state, table_name).ok()?);
    describe_access_path(state, effective, table_name, &local, filters, params)
}

/// Constant-fold an expression with no column references.
fn const_value(expr: &Expr, params: &[Value]) -> Option<Value> {
    fn has_column(e: &Expr) -> bool {
        match e {
            Expr::Column(_) => true,
            Expr::Literal(_) | Expr::Param(_) => false,
            Expr::Neg(i) | Expr::Not(i) => has_column(i),
            Expr::Binary { lhs, rhs, .. } => has_column(lhs) || has_column(rhs),
            Expr::Like { expr, pattern, .. } => has_column(expr) || has_column(pattern),
            Expr::IsNull { expr, .. } => has_column(expr),
            Expr::InList { expr, list, .. } => has_column(expr) || list.iter().any(has_column),
            Expr::Between { expr, lo, hi, .. } => {
                has_column(expr) || has_column(lo) || has_column(hi)
            }
            Expr::Func { args, .. } => args.iter().any(has_column),
            Expr::Agg { .. } => true,
            // Unrewritten subqueries cannot be constant-folded here.
            Expr::Subquery(_) | Expr::InSelect { .. } | Expr::Exists { .. } => true,
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                operand.as_ref().is_some_and(|o| has_column(o))
                    || arms.iter().any(|(w, t)| has_column(w) || has_column(t))
                    || otherwise.as_ref().is_some_and(|e| has_column(e))
            }
            Expr::Cast { expr, .. } => has_column(expr),
            // Window values depend on the row set, never constant-foldable.
            Expr::Window(_) => true,
        }
    }
    if has_column(expr) {
        return None;
    }
    eval(expr, &Bindings::empty(), &[], params, &NoAggregates).ok()
}

fn column_of<'a>(expr: &'a Expr, effective: &str) -> Option<&'a ColumnRef> {
    match expr {
        Expr::Column(c)
            if c.table
                .as_ref()
                .is_none_or(|t| t.eq_ignore_ascii_case(effective)) =>
        {
            Some(c)
        }
        _ => None,
    }
}

fn probe_conjunct(
    state: &DbState,
    effective: &str,
    table_name: &str,
    bindings: &Bindings,
    conj: &Expr,
    params: &[Value],
) -> Option<Vec<crate::storage::RowId>> {
    let table = state.table(table_name).ok()?;
    let col_ordinal = |c: &ColumnRef| -> Option<usize> {
        // Ensure the reference resolves (catches ambiguity) and then map to
        // the table-local ordinal.
        bindings.resolve(c).ok()?;
        table.schema.column_index(&c.column)
    };
    match conj {
        Expr::Binary { op, lhs, rhs }
            if matches!(
                op,
                BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) =>
        {
            // Normalize to "column op constant".
            let (col, val, op) = if let (Some(c), Some(v)) =
                (column_of(lhs, effective), const_value(rhs, params))
            {
                (c, v, *op)
            } else if let (Some(c), Some(v)) = (column_of(rhs, effective), const_value(lhs, params))
            {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => *other,
                };
                (c, v, flipped)
            } else {
                return None;
            };
            if val.is_null() {
                return Some(Vec::new()); // col op NULL selects nothing
            }
            let ordinal = col_ordinal(col)?;
            let index = state.index_on(table_name, ordinal)?;
            Some(match op {
                BinOp::Eq => index.lookup(&val),
                BinOp::Lt => index.range(Bound::Unbounded, Bound::Excluded(&val)),
                BinOp::Le => index.range(Bound::Unbounded, Bound::Included(&val)),
                BinOp::Gt => index.range(Bound::Excluded(&val), Bound::Unbounded),
                BinOp::Ge => index.range(Bound::Included(&val), Bound::Unbounded),
                _ => unreachable!(),
            })
        }
        Expr::Like {
            expr,
            pattern,
            escape,
            negated: false,
        } => {
            let col = column_of(expr, effective)?;
            let pat = match const_value(pattern, params)? {
                Value::Text(t) => t,
                _ => return None,
            };
            let ordinal = col_ordinal(col)?;
            let index = state.index_on(table_name, ordinal)?;
            if is_exact(&pat, *escape) {
                let literal = literal_prefix(&pat, *escape);
                return Some(index.lookup(&Value::Text(literal)));
            }
            let prefix = literal_prefix(&pat, *escape);
            if prefix.is_empty() {
                return None; // '%...' gives the index nothing to narrow
            }
            Some(index.prefix_scan(&prefix))
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let col = column_of(expr, effective)?;
            let ordinal = col_ordinal(col)?;
            let index = state.index_on(table_name, ordinal)?;
            let mut ids = Vec::new();
            for item in list {
                let v = const_value(item, params)?;
                if !v.is_null() {
                    ids.extend(index.lookup(&v));
                }
            }
            ids.sort();
            ids.dedup();
            Some(ids)
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated: false,
        } => {
            let col = column_of(expr, effective)?;
            let lo = const_value(lo, params)?;
            let hi = const_value(hi, params)?;
            if lo.is_null() || hi.is_null() {
                return Some(Vec::new());
            }
            let ordinal = col_ordinal(col)?;
            let index = state.index_on(table_name, ordinal)?;
            Some(index.range(Bound::Included(&lo), Bound::Included(&hi)))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Plain (non-aggregate) pipeline.
// ---------------------------------------------------------------------------

/// Expand SELECT items into `(label, expr-or-position)` output columns.
enum OutCol {
    /// Direct tuple position (wildcards).
    Position(usize),
    /// Computed expression.
    Expr(Expr),
}

fn expand_items(sel: &Select, bindings: &Bindings) -> SqlResult<(Vec<String>, Vec<OutCol>)> {
    let mut labels = Vec::new();
    let mut cols = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (i, name) in bindings.all_columns().into_iter().enumerate() {
                    labels.push(name);
                    cols.push(OutCol::Position(i));
                }
            }
            SelectItem::QualifiedWildcard(table) => {
                let (start, end) = bindings
                    .table_span(table)
                    .ok_or_else(|| SqlError::no_such_table(table))?;
                let names = bindings.table_columns(table).expect("span implies columns");
                for (offset, name) in names.iter().enumerate() {
                    labels.push(name.clone());
                    cols.push(OutCol::Position(start + offset));
                    debug_assert!(start + offset < end);
                }
            }
            SelectItem::Expr { expr, alias } => {
                let label = match alias {
                    Some(a) => a.clone(),
                    None => default_label(expr, labels.len()),
                };
                labels.push(label);
                cols.push(OutCol::Expr(expr.clone()));
            }
        }
    }
    Ok((labels, cols))
}

/// DB2-style output column label for an unaliased expression.
fn default_label(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Column(c) => c.column.clone(),
        Expr::Agg {
            func, arg: None, ..
        } => format!("{}(*)", func.name()),
        Expr::Agg {
            func,
            arg: Some(arg),
            ..
        } => match arg.as_ref() {
            Expr::Column(c) => format!("{}({})", func.name(), c.column),
            _ => func.name().to_string(),
        },
        Expr::Func { name, .. } => name.clone(),
        Expr::Window(w) => w.func.name().to_string(),
        _ => (position + 1).to_string(),
    }
}

fn project(
    cols: &[OutCol],
    bindings: &Bindings,
    row: &[Value],
    params: &[Value],
    aggs: &dyn AggSource,
) -> SqlResult<Row> {
    let mut out = Vec::with_capacity(cols.len());
    for col in cols {
        out.push(match col {
            OutCol::Position(i) => row.get(*i).cloned().unwrap_or(Value::Null),
            OutCol::Expr(e) => eval(e, bindings, row, params, aggs)?,
        });
    }
    Ok(out)
}

fn run_plain(
    sel: &Select,
    bindings: &Bindings,
    rows: Vec<SrcRow<'_>>,
    params: &[Value],
    ctx: &RequestCtx,
    topk: Option<usize>,
) -> SqlResult<ResultSet> {
    if sel.having.is_some() {
        return Err(SqlError::syntax("HAVING requires GROUP BY or aggregates"));
    }
    let (labels, cols) = expand_items(sel, bindings)?;
    // Window pass: compute every distinct window expression over the full
    // row set before projection, so projection sees per-row values.
    let mut windows: Vec<Expr> = Vec::new();
    for col in &cols {
        if let OutCol::Expr(e) = col {
            collect_windows(e, &mut windows);
        }
    }
    let window_values = if windows.is_empty() {
        None
    } else {
        Some(compute_windows(&windows, bindings, &rows, params, ctx)?)
    };
    let mut pairs: Vec<(SrcRow<'_>, Row)> = Vec::with_capacity(rows.len()); // (src, out)
    for (i, src) in rows.into_iter().enumerate() {
        if i % CANCEL_STRIDE == 0 {
            check_cancel(ctx)?;
        }
        let out = match &window_values {
            Some(values) => {
                let source = WindowRowSource {
                    exprs: &windows,
                    values: values.iter().map(|per_row| per_row[i].clone()).collect(),
                };
                project(&cols, bindings, &src, params, &source)?
            }
            None => project(&cols, bindings, &src, params, &NoAggregates)?,
        };
        pairs.push((src, out));
    }
    finish_pipeline(sel, bindings, &labels, pairs, params, None, topk)
}

/// Collect the distinct window expressions in `expr` (windows cannot nest).
fn collect_windows(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Window(_) => {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
        }
        Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => {}
        Expr::Neg(i) | Expr::Not(i) => collect_windows(i, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_windows(lhs, out);
            collect_windows(rhs, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_windows(expr, out);
            collect_windows(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_windows(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_windows(expr, out);
            for e in list {
                collect_windows(e, out);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_windows(expr, out);
            collect_windows(lo, out);
            collect_windows(hi, out);
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_windows(a, out);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                collect_windows(a, out);
            }
        }
        Expr::Subquery(_) | Expr::InSelect { .. } | Expr::Exists { .. } => {}
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => {
            if let Some(op) = operand {
                collect_windows(op, out);
            }
            for (w, t) in arms {
                collect_windows(w, out);
                collect_windows(t, out);
            }
            if let Some(e) = otherwise {
                collect_windows(e, out);
            }
        }
        Expr::Cast { expr, .. } => collect_windows(expr, out),
    }
}

/// Per-row window values, looked up by window-expression identity during
/// projection.
struct WindowRowSource<'a> {
    exprs: &'a [Expr],
    values: Vec<Value>,
}

impl AggSource for WindowRowSource<'_> {
    fn agg_value(&self, _expr: &Expr) -> Option<Value> {
        None
    }

    fn window_value(&self, expr: &Expr) -> Option<Value> {
        self.exprs
            .iter()
            .position(|e| e == expr)
            .map(|i| self.values[i].clone())
    }
}

/// Evaluate each window expression for every row: partition, sort inside the
/// partition by the window ORDER BY (stable on source order), then number,
/// rank, or aggregate over the frame. With an ORDER BY, aggregates use the
/// SQL default frame — everything from the partition start through the
/// current row's last peer; without one, the whole partition.
fn compute_windows(
    windows: &[Expr],
    bindings: &Bindings,
    rows: &[SrcRow<'_>],
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<Vec<Vec<Value>>> {
    let t0 = analyze::start();
    let mut all = Vec::with_capacity(windows.len());
    for wexpr in windows {
        let Expr::Window(w) = wexpr else {
            unreachable!("collect_windows yields window expressions")
        };
        check_cancel(ctx)?;
        let mut values = vec![Value::Null; rows.len()];
        // Partition rows, preserving first-seen partition order.
        let mut part_order: Vec<Vec<Value>> = Vec::new();
        let mut parts: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            if i % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            let mut key = Vec::with_capacity(w.partition_by.len());
            for e in &w.partition_by {
                key.push(eval(e, bindings, row, params, &NoAggregates)?);
            }
            if !parts.contains_key(&key) {
                part_order.push(key.clone());
            }
            parts.entry(key).or_default().push(i);
        }
        for part_key in &part_order {
            let idxs = parts.remove(part_key).expect("partition recorded");
            // Order the partition by the window ORDER BY; without one the
            // keys are empty, leaving source order (every row a peer).
            let mut keyed: Vec<(Vec<Value>, usize)> = Vec::with_capacity(idxs.len());
            for &i in &idxs {
                let mut key = Vec::with_capacity(w.order_by.len());
                for ok in &w.order_by {
                    key.push(eval(&ok.expr, bindings, &rows[i], params, &NoAggregates)?);
                }
                keyed.push((key, i));
            }
            keyed.sort_by(|a, b| {
                for (j, ok) in w.order_by.iter().enumerate() {
                    let ord = a.0[j].order_key(&b.0[j]);
                    let ord = match ok.dir {
                        SortDir::Asc => ord,
                        SortDir::Desc => ord.reverse(),
                    };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                a.1.cmp(&b.1)
            });
            let sorted_rows: Vec<SrcRow<'_>> =
                keyed.iter().map(|&(_, i)| rows[i].clone()).collect();
            let n = keyed.len();
            let mut pos = 0;
            while pos < n {
                let mut end = pos + 1;
                while end < n && keyed[end].0 == keyed[pos].0 {
                    end += 1;
                }
                let peer_agg = match &w.func {
                    WindowFunc::Agg { func, arg } => {
                        let frame_end = if w.order_by.is_empty() { n } else { end };
                        let agg_expr = Expr::Agg {
                            func: *func,
                            arg: arg.clone(),
                            distinct: false,
                        };
                        Some(compute_agg(
                            &agg_expr,
                            bindings,
                            &sorted_rows[..frame_end],
                            params,
                        )?)
                    }
                    _ => None,
                };
                for p in pos..end {
                    let i = keyed[p].1;
                    values[i] = match &w.func {
                        WindowFunc::RowNumber => Value::Int(p as i64 + 1),
                        WindowFunc::Rank => Value::Int(pos as i64 + 1),
                        WindowFunc::Agg { .. } => peer_agg.clone().expect("computed above"),
                    };
                }
                pos = end;
            }
        }
        all.push(values);
    }
    analyze::record(OpId::Window, t0, rows.len() as u64, rows.len() as u64);
    Ok(all)
}

// ---------------------------------------------------------------------------
// Grouped / aggregate pipeline.
// ---------------------------------------------------------------------------

/// Pre-computed aggregate values for one group.
struct GroupAggs(Vec<(Expr, Value)>);

impl AggSource for GroupAggs {
    fn agg_value(&self, expr: &Expr) -> Option<Value> {
        self.0
            .iter()
            .find(|(e, _)| e == expr)
            .map(|(_, v)| v.clone())
    }
}

fn collect_aggs(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Agg { .. } => {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
        }
        Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => {}
        Expr::Neg(i) | Expr::Not(i) => collect_aggs(i, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_aggs(lhs, out);
            collect_aggs(rhs, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggs(expr, out);
            collect_aggs(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for e in list {
                collect_aggs(e, out);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_aggs(a, out);
            }
        }
        // Subqueries were rewritten to literals before grouping runs.
        Expr::Subquery(_) | Expr::InSelect { .. } | Expr::Exists { .. } => {}
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => {
            if let Some(op) = operand {
                collect_aggs(op, out);
            }
            for (w, t) in arms {
                collect_aggs(w, out);
                collect_aggs(t, out);
            }
            if let Some(e) = otherwise {
                collect_aggs(e, out);
            }
        }
        Expr::Cast { expr, .. } => collect_aggs(expr, out),
        // A window call is its own evaluation unit, not a group aggregate;
        // grouped queries reject windows before this walker runs.
        Expr::Window(_) => {}
    }
}

fn compute_agg(
    agg: &Expr,
    bindings: &Bindings,
    rows: &[SrcRow<'_>],
    params: &[Value],
) -> SqlResult<Value> {
    let Expr::Agg {
        func,
        arg,
        distinct,
    } = agg
    else {
        unreachable!("compute_agg called on non-aggregate")
    };
    // Gather the argument values over the group, skipping NULLs per SQL.
    let mut values: Vec<Value> = Vec::with_capacity(rows.len());
    match arg {
        None => {
            // COUNT(*): every row counts.
            return Ok(Value::Int(rows.len() as i64));
        }
        Some(arg) => {
            for row in rows {
                let v = eval(arg, bindings, row, params, &NoAggregates)?;
                if !v.is_null() {
                    values.push(v);
                }
            }
        }
    }
    if *distinct {
        let mut seen: Vec<Value> = Vec::new();
        values.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(v.clone());
                true
            }
        });
    }
    match func {
        AggFunc::Count => Ok(Value::Int(values.len() as i64)),
        AggFunc::Min => Ok(values
            .into_iter()
            .reduce(|a, b| if a.order_key(&b).is_le() { a } else { b })
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(values
            .into_iter()
            .reduce(|a, b| if a.order_key(&b).is_ge() { a } else { b })
            .unwrap_or(Value::Null)),
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let n = values.len();
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut all_int = true;
            for v in values {
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(i);
                        float_sum += i as f64;
                    }
                    Value::Double(d) => {
                        all_int = false;
                        float_sum += d;
                    }
                    other => {
                        return Err(SqlError::type_mismatch(format!(
                            "{} over non-numeric value {other}",
                            func.name()
                        )))
                    }
                }
            }
            Ok(match func {
                AggFunc::Sum if all_int => Value::Int(int_sum),
                AggFunc::Sum => Value::Double(float_sum),
                AggFunc::Avg => Value::Double(float_sum / n as f64),
                _ => unreachable!(),
            })
        }
    }
}

fn run_grouped<'a>(
    sel: &Select,
    bindings: &Bindings,
    rows: Vec<SrcRow<'a>>,
    params: &[Value],
    ctx: &RequestCtx,
    topk: Option<usize>,
) -> SqlResult<ResultSet> {
    let windowed = sel
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_window()))
        || sel.group_by.iter().any(Expr::contains_window)
        || sel.having.as_ref().is_some_and(Expr::contains_window)
        || sel.order_by.iter().any(|k| k.expr.contains_window());
    if windowed {
        return Err(SqlError::syntax(
            "window functions cannot be combined with GROUP BY or aggregates",
        ));
    }
    let (labels, cols) = expand_items(sel, bindings)?;
    let agg_in = rows.len() as u64;
    let agg_t0 = analyze::start();

    // Partition rows into groups, preserving first-seen order.
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<SrcRow<'a>>> = HashMap::new();
    if sel.group_by.is_empty() {
        group_order.push(Vec::new());
        groups.insert(Vec::new(), rows);
    } else {
        for (i, row) in rows.into_iter().enumerate() {
            if i % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            let mut key = Vec::with_capacity(sel.group_by.len());
            for g in &sel.group_by {
                key.push(eval(g, bindings, &row, params, &NoAggregates)?);
            }
            if !groups.contains_key(&key) {
                group_order.push(key.clone());
            }
            groups.entry(key).or_default().push(row);
        }
    }

    // The distinct aggregate expressions appearing anywhere downstream.
    let mut agg_exprs: Vec<Expr> = Vec::new();
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggs(expr, &mut agg_exprs);
        }
    }
    if let Some(h) = &sel.having {
        collect_aggs(h, &mut agg_exprs);
    }
    for k in &sel.order_by {
        collect_aggs(&k.expr, &mut agg_exprs);
    }

    let width = bindings.width();
    let n_groups = group_order.len() as u64;
    let mut pairs: Vec<(SrcRow<'a>, Row)> = Vec::new(); // (representative src, out)
    let mut agg_sources: Vec<GroupAggs> = Vec::new();
    for key in group_order {
        check_cancel(ctx)?;
        let group_rows = groups.remove(&key).expect("group key recorded");
        let mut computed = Vec::with_capacity(agg_exprs.len());
        for agg in &agg_exprs {
            computed.push((
                agg.clone(),
                compute_agg(agg, bindings, &group_rows, params)?,
            ));
        }
        let aggs = GroupAggs(computed);
        // Representative row: the first row of the group, or all-NULL for the
        // empty global group (COUNT(*) over zero rows).
        let rep = group_rows
            .into_iter()
            .next()
            .unwrap_or_else(|| Cow::Owned(vec![Value::Null; width]));
        if let Some(h) = &sel.having {
            let having_t0 = analyze::start();
            let pass = eval_truth(h, bindings, &rep, params, &aggs)?.passes();
            analyze::record(OpId::Having, having_t0, 1, u64::from(pass));
            if !pass {
                continue;
            }
        }
        let out = project(&cols, bindings, &rep, params, &aggs)?;
        pairs.push((rep, out));
        agg_sources.push(aggs);
    }
    analyze::record(OpId::Aggregate, agg_t0, agg_in, n_groups);
    finish_pipeline(
        sel,
        bindings,
        &labels,
        pairs,
        params,
        Some(agg_sources),
        topk,
    )
}

// ---------------------------------------------------------------------------
// Shared tail: DISTINCT → ORDER BY → OFFSET/LIMIT.
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn finish_pipeline(
    sel: &Select,
    bindings: &Bindings,
    labels: &[String],
    mut pairs: Vec<(SrcRow<'_>, Row)>,
    params: &[Value],
    agg_sources: Option<Vec<GroupAggs>>,
    topk: Option<usize>,
) -> SqlResult<ResultSet> {
    // DISTINCT over output rows.
    if sel.distinct {
        let distinct_in = pairs.len() as u64;
        let distinct_t0 = analyze::start();
        let mut seen: Vec<Row> = Vec::new();
        let mut kept_sources = agg_sources.as_ref().map(|_| Vec::new());
        let mut kept = Vec::with_capacity(pairs.len());
        for (i, (src, out)) in pairs.into_iter().enumerate() {
            if !seen.contains(&out) {
                seen.push(out.clone());
                if let (Some(kept_sources), Some(sources)) =
                    (kept_sources.as_mut(), agg_sources.as_ref())
                {
                    kept_sources.push(i);
                    let _ = sources;
                }
                kept.push((src, out));
            }
        }
        pairs = kept;
        analyze::record(OpId::Distinct, distinct_t0, distinct_in, pairs.len() as u64);
        // Note: after DISTINCT the agg sources for dropped rows are unneeded;
        // ORDER BY keys below re-evaluate only against kept pairs' own keys,
        // computed eagerly next, so we can discard the mapping safely.
    }

    // ORDER BY: compute sort keys eagerly for each row. With LIMIT k the
    // planner bounds the sort: a top-k heap keeps the best `offset + limit`
    // rows in O(n log k). Ties break on original index in both paths, which
    // makes the heap result exactly the stable full sort's prefix.
    if !sel.order_by.is_empty() {
        let sort_in = pairs.len() as u64;
        let sort_t0 = analyze::start();
        let keys: Vec<Vec<Value>> = pairs
            .iter()
            .enumerate()
            .map(|(row_idx, (src, out))| {
                sel.order_by
                    .iter()
                    .map(|k| {
                        order_key_value(
                            k,
                            bindings,
                            labels,
                            src,
                            out,
                            params,
                            row_idx,
                            &agg_sources,
                        )
                    })
                    .collect::<SqlResult<Vec<Value>>>()
            })
            .collect::<SqlResult<Vec<_>>>()?;
        let cmp = |a: usize, b: usize| -> std::cmp::Ordering {
            for (i, k) in sel.order_by.iter().enumerate() {
                let ord = keys[a][i].order_key(&keys[b][i]);
                let ord = match k.dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if !ord.is_eq() {
                    return ord;
                }
            }
            a.cmp(&b)
        };
        let order: Vec<usize> = match topk {
            Some(k) if k < pairs.len() => {
                plan::record(|s| s.topk_sorts += 1);
                plan::top_k_indices(pairs.len(), k, &cmp)
            }
            _ => {
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                order.sort_unstable_by(|&a, &b| cmp(a, b));
                order
            }
        };
        let mut sorted = Vec::with_capacity(order.len());
        let mut taken: Vec<Option<(SrcRow<'_>, Row)>> = pairs.into_iter().map(Some).collect();
        for idx in order {
            sorted.push(taken[idx].take().expect("permutation"));
        }
        pairs = sorted;
        analyze::record(OpId::Sort, sort_t0, sort_in, pairs.len() as u64);
    }

    let limited = sel.limit.is_some() || sel.offset.is_some();
    let limit_in = pairs.len() as u64;
    let limit_t0 = analyze::start();
    let offset = sel.offset.unwrap_or(0);
    let rows: Vec<Row> = pairs
        .into_iter()
        .map(|(_, out)| out)
        .skip(offset)
        .take(sel.limit.unwrap_or(usize::MAX))
        .collect();
    if limited {
        analyze::record(OpId::Limit, limit_t0, limit_in, rows.len() as u64);
    }
    Ok(ResultSet {
        columns: labels.to_vec(),
        rows,
    })
}

#[allow(clippy::too_many_arguments)]
fn order_key_value(
    key: &OrderKey,
    bindings: &Bindings,
    labels: &[String],
    src: &[Value],
    out: &[Value],
    params: &[Value],
    row_idx: usize,
    agg_sources: &Option<Vec<GroupAggs>>,
) -> SqlResult<Value> {
    // SQL-92 positional sort: ORDER BY 2.
    if let Expr::Literal(Value::Int(n)) = &key.expr {
        let n = *n;
        if n >= 1 && (n as usize) <= out.len() {
            return Ok(out[n as usize - 1].clone());
        }
        return Err(SqlError::syntax(format!(
            "ORDER BY position {n} is out of range"
        )));
    }
    // An output label (alias) takes priority over a source column, per SQL.
    if let Expr::Column(c) = &key.expr {
        if c.table.is_none() {
            if let Some(pos) = labels
                .iter()
                .position(|l| l.eq_ignore_ascii_case(&c.column))
            {
                return Ok(out[pos].clone());
            }
        }
    }
    let aggs: &dyn AggSource = match agg_sources {
        Some(sources) => &sources[row_idx],
        None => &NoAggregates,
    };
    eval(&key.expr, bindings, src, params, aggs)
}

// ---------------------------------------------------------------------------
// Subquery pre-execution.
// ---------------------------------------------------------------------------

fn select_has_subqueries(sel: &Select) -> bool {
    sel.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_subquery(),
        _ => false,
    }) || sel
        .where_clause
        .as_ref()
        .is_some_and(Expr::contains_subquery)
        || sel.having.as_ref().is_some_and(Expr::contains_subquery)
        || sel.group_by.iter().any(Expr::contains_subquery)
        || sel.order_by.iter().any(|k| k.expr.contains_subquery())
        || sel
            .joins
            .iter()
            .any(|j| j.on.as_ref().is_some_and(Expr::contains_subquery))
}

fn rewrite_select_subqueries(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<Select> {
    let mut out = sel.clone();
    for item in &mut out.items {
        if let SelectItem::Expr { expr, .. } = item {
            *expr = rewrite_expr_subqueries(state, expr, params, ctx)?;
        }
    }
    if let Some(w) = &mut out.where_clause {
        *w = rewrite_expr_subqueries(state, w, params, ctx)?;
    }
    if let Some(h) = &mut out.having {
        *h = rewrite_expr_subqueries(state, h, params, ctx)?;
    }
    for g in &mut out.group_by {
        *g = rewrite_expr_subqueries(state, g, params, ctx)?;
    }
    for k in &mut out.order_by {
        k.expr = rewrite_expr_subqueries(state, &k.expr, params, ctx)?;
    }
    for j in &mut out.joins {
        if let Some(on) = &mut j.on {
            *on = rewrite_expr_subqueries(state, on, params, ctx)?;
        }
    }
    Ok(out)
}

/// Replace subquery nodes in `expr` by executing them against `state`.
///
/// Only *uncorrelated* subqueries are supported, matching the era (the web
/// workloads used them for pick-lists). A correlated reference surfaces as an
/// "unknown column" error from the inner query.
pub(crate) fn rewrite_expr_subqueries(
    state: &DbState,
    expr: &Expr,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<Expr> {
    if !expr.contains_subquery() {
        return Ok(expr.clone());
    }
    check_cancel(ctx)?;
    let walk = |e: &Expr| rewrite_expr_subqueries(state, e, params, ctx);
    Ok(match expr {
        Expr::Subquery(select) => {
            let rs = run_select(state, select, params, ctx)?;
            if rs.columns.len() != 1 {
                return Err(SqlError::syntax(
                    "a scalar subquery must return exactly one column",
                ));
            }
            match rs.rows.len() {
                0 => Expr::Literal(Value::Null),
                1 => Expr::Literal(rs.rows[0][0].clone()),
                n => {
                    return Err(SqlError::syntax(format!(
                        "scalar subquery returned {n} rows"
                    )))
                }
            }
        }
        Expr::InSelect {
            expr,
            select,
            negated,
        } => {
            let rs = run_select(state, select, params, ctx)?;
            if rs.columns.len() != 1 {
                return Err(SqlError::syntax(
                    "an IN subquery must return exactly one column",
                ));
            }
            Expr::InList {
                expr: Box::new(walk(expr)?),
                list: rs
                    .rows
                    .into_iter()
                    .map(|mut r| Expr::Literal(r.remove(0)))
                    .collect(),
                negated: *negated,
            }
        }
        Expr::Exists { select, negated } => {
            // LIMIT 1 short-circuit: existence needs one row.
            let mut probe = (**select).clone();
            if probe.set_ops.is_empty() && probe.limit.is_none() {
                probe.limit = Some(1);
            }
            let rs = run_select(state, &probe, params, ctx)?;
            Expr::Literal(Value::Int(i64::from(rs.rows.is_empty() == *negated)))
        }
        Expr::Neg(i) => Expr::Neg(Box::new(walk(i)?)),
        Expr::Not(i) => Expr::Not(Box::new(walk(i)?)),
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(walk(lhs)?),
            rhs: Box::new(walk(rhs)?),
        },
        Expr::Like {
            expr,
            pattern,
            escape,
            negated,
        } => Expr::Like {
            expr: Box::new(walk(expr)?),
            pattern: Box::new(walk(pattern)?),
            escape: *escape,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(walk(expr)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(walk(expr)?),
            list: list.iter().map(walk).collect::<SqlResult<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(walk(expr)?),
            lo: Box::new(walk(lo)?),
            hi: Box::new(walk(hi)?),
            negated: *negated,
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(walk).collect::<SqlResult<_>>()?,
        },
        Expr::Agg {
            func,
            arg,
            distinct,
        } => Expr::Agg {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(walk(a)?)),
                None => None,
            },
            distinct: *distinct,
        },
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(walk(o)?)),
                None => None,
            },
            arms: arms
                .iter()
                .map(|(w, t)| Ok((walk(w)?, walk(t)?)))
                .collect::<SqlResult<_>>()?,
            otherwise: match otherwise {
                Some(e) => Some(Box::new(walk(e)?)),
                None => None,
            },
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(walk(expr)?),
            ty: *ty,
        },
        Expr::Window(w) => {
            let mut w = (**w).clone();
            if let WindowFunc::Agg { arg: Some(a), .. } = &mut w.func {
                **a = walk(a)?;
            }
            for e in &mut w.partition_by {
                *e = walk(e)?;
            }
            for key in &mut w.order_by {
                key.expr = walk(&key.expr)?;
            }
            Expr::Window(Box::new(w))
        }
        Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => expr.clone(),
    })
}

// ---------------------------------------------------------------------------
// EXPLAIN.
// ---------------------------------------------------------------------------

/// Produce a plan description for a SELECT without running it.
pub fn explain_select(state: &DbState, sel: &Select, params: &[Value]) -> SqlResult<Vec<String>> {
    let mut lines = Vec::new();
    explain_into(
        state,
        sel,
        params,
        0,
        &mut lines,
        &PlanOptions::from_env(),
        None,
    )?;
    Ok(lines)
}

/// `EXPLAIN ANALYZE`: execute `sel` under an operator collector on `ctx`'s
/// clock, then render the plan tree with the observed actuals (rows in/out,
/// loops, wall time) appended to each operator's estimated line, plus a
/// trailing `TOTAL:` line for the whole statement.
pub fn explain_analyze_select(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<Vec<String>> {
    let opts = PlanOptions::from_env();
    let clock = std::sync::Arc::clone(ctx.clock());
    let t0 = clock.now_ns();
    let (result, actuals) = analyze::collect(std::sync::Arc::clone(&clock), || {
        run_select_with_options(state, sel, params, ctx, &opts)
    });
    let rs = result?;
    let total_ns = clock.now_ns().saturating_sub(t0);
    let mut lines = Vec::new();
    explain_into(state, sel, params, 0, &mut lines, &opts, Some(&actuals))?;
    lines.push(format!(
        "TOTAL: {} row{} returned, {:.3} ms",
        rs.len(),
        plural(rs.len()),
        total_ns as f64 / 1e6
    ));
    Ok(lines)
}

/// Append `line`, annotated with `op`'s observed actuals when an ANALYZE
/// collection is being rendered and the operator actually ran.
fn push_plan_line(
    lines: &mut Vec<String>,
    mut line: String,
    actuals: Option<&[(OpId, analyze::OpActuals)]>,
    op: OpId,
) {
    if let Some(a) = actuals.and_then(|acts| analyze::lookup(acts, op)) {
        line.push_str(&format!(
            " (actual rows={} in={} loops={} time={:.3}ms)",
            a.rows_out,
            a.rows_in,
            a.loops,
            a.time_ns as f64 / 1e6
        ));
    }
    lines.push(line);
}

#[allow(clippy::too_many_arguments)]
fn explain_into(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    indent: usize,
    lines: &mut Vec<String>,
    opts: &PlanOptions,
    actuals: Option<&[(OpId, analyze::OpActuals)]>,
) -> SqlResult<()> {
    let pad = "  ".repeat(indent);
    if !sel.set_ops.is_empty() {
        lines.push(format!(
            "{pad}SET OPERATION ({} branches)",
            sel.set_ops.len() + 1
        ));
        // Branch actuals are not collected (their operator ids would collide
        // across branches), so the branches render estimates only.
        let mut first = sel.clone();
        first.set_ops = Vec::new();
        explain_into(state, &first, params, indent + 1, lines, opts, None)?;
        for (op, branch) in &sel.set_ops {
            lines.push(format!("{pad}  {op:?}"));
            explain_into(state, branch, params, indent + 1, lines, opts, None)?;
        }
        return Ok(());
    }
    // Apply the identical cost-based rewrite the executor applies, so the
    // join order EXPLAIN prints is the join order that runs — and annotate
    // scan/join lines with the cost model's row estimates (`est rows`),
    // which EXPLAIN ANALYZE pairs with the measured `actual rows`.
    let reordered;
    let sel = if opts.reorder {
        match crate::cost::reorder_select(state, sel, params) {
            Some(r) => {
                reordered = r;
                &reordered
            }
            None => sel,
        }
    } else {
        sel
    };
    let est = crate::cost::estimate_steps(state, sel, params);
    let est_note = |step: usize| -> String {
        match est.as_ref().and_then(|v| v.get(step)) {
            Some(rows) => format!(" (est rows={})", rows.round() as u64),
            None => String::new(),
        }
    };
    let bindings = full_bindings(state, sel)?;
    let sel_plan = plan::plan_select(sel, &bindings, opts);
    match &sel.from {
        None => lines.push(format!("{pad}VALUES (table-less SELECT)")),
        Some(base) => {
            if sel.joins.len() >= 2 {
                let mut names = vec![base.effective_name()];
                names.extend(sel.joins.iter().map(|j| j.table.effective_name()));
                lines.push(format!("{pad}JOIN ORDER: {}", names.join(" -> ")));
            }
            let table = state.table(&base.name)?;
            let access = scan_description(
                state,
                base.effective_name(),
                &base.name,
                &sel_plan.base.filters,
                params,
                opts,
            );
            match access {
                Some(desc) => push_plan_line(
                    lines,
                    format!("{pad}{desc}{}", est_note(0)),
                    actuals,
                    OpId::Base,
                ),
                None => push_plan_line(
                    lines,
                    format!(
                        "{pad}FULL SCAN {} ({} rows){}",
                        base.name,
                        table.heap.len(),
                        est_note(0)
                    ),
                    actuals,
                    OpId::Base,
                ),
            }
            for (j, join) in sel.joins.iter().enumerate() {
                let jp = &sel_plan.joins[j];
                if jp.use_hash {
                    push_plan_line(
                        lines,
                        format!(
                            "{pad}HASH {}JOIN {} ({} key{}){}",
                            if join.left_outer { "LEFT OUTER " } else { "" },
                            join.table.name,
                            jp.keys.len(),
                            plural(jp.keys.len()),
                            est_note(j + 1),
                        ),
                        actuals,
                        OpId::Join(j),
                    );
                } else {
                    push_plan_line(
                        lines,
                        format!(
                            "{pad}NESTED LOOP {}JOIN {}{}{}",
                            if join.left_outer { "LEFT OUTER " } else { "" },
                            join.table.name,
                            if join.on.is_some() {
                                " ON <cond>"
                            } else {
                                " (cross)"
                            },
                            est_note(j + 1),
                        ),
                        actuals,
                        OpId::Join(j),
                    );
                }
                if let Some(desc) = scan_description(
                    state,
                    join.table.effective_name(),
                    &join.table.name,
                    &jp.scan.filters,
                    params,
                    opts,
                ) {
                    push_plan_line(lines, format!("{pad}  {desc}"), actuals, OpId::JoinScan(j));
                }
            }
        }
    }
    if sel.where_clause.is_some() {
        push_plan_line(
            lines,
            format!("{pad}FILTER <where>"),
            actuals,
            OpId::WhereFilter,
        );
    }
    if sel
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_window()))
    {
        push_plan_line(lines, format!("{pad}WINDOW"), actuals, OpId::Window);
    }
    if !sel.group_by.is_empty()
        || sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
    {
        push_plan_line(
            lines,
            format!("{pad}AGGREGATE (group keys: {})", sel.group_by.len()),
            actuals,
            OpId::Aggregate,
        );
    }
    if sel.having.is_some() {
        push_plan_line(
            lines,
            format!("{pad}FILTER <having>"),
            actuals,
            OpId::Having,
        );
    }
    if sel.distinct {
        push_plan_line(lines, format!("{pad}DISTINCT"), actuals, OpId::Distinct);
    }
    if !sel.order_by.is_empty() {
        let line = match sel_plan.topk {
            Some(k) => format!("{pad}TOP-K SORT ({} keys, k={k})", sel.order_by.len()),
            None => format!("{pad}SORT ({} keys)", sel.order_by.len()),
        };
        push_plan_line(lines, line, actuals, OpId::Sort);
    }
    if sel.limit.is_some() || sel.offset.is_some() {
        push_plan_line(
            lines,
            format!(
                "{pad}LIMIT {}{}",
                sel.limit
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "ALL".into()),
                sel.offset
                    .map(|o| format!(" OFFSET {o}"))
                    .unwrap_or_default()
            ),
            actuals,
            OpId::Limit,
        );
    }
    Ok(())
}

/// Return a human description of the index probe serving `conjuncts`, if any
/// (used by EXPLAIN and the trace plan note; never touches the heap).
fn describe_access_path(
    state: &DbState,
    effective: &str,
    table_name: &str,
    bindings: &Bindings,
    conjuncts: &[&Expr],
    params: &[Value],
) -> Option<String> {
    let table = state.table(table_name).ok()?;
    for conj in conjuncts {
        // Mirror the executor: conjuncts the cost model votes against
        // probing are described as part of the scan, not as probes.
        if !crate::cost::probe_worthwhile(state, effective, table_name, conj, params) {
            continue;
        }
        let described = match conj {
            Expr::Binary { op, lhs, rhs }
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                let col = column_of(lhs, effective)
                    .filter(|_| const_value(rhs, params).is_some())
                    .or_else(|| {
                        column_of(rhs, effective).filter(|_| const_value(lhs, params).is_some())
                    });
                col.and_then(|c| {
                    bindings.resolve(c).ok()?;
                    let ordinal = table.schema.column_index(&c.column)?;
                    let index = state.index_on(table_name, ordinal)?;
                    let kind = if *op == BinOp::Eq {
                        "equality"
                    } else {
                        "range"
                    };
                    Some(format!("INDEX {kind} PROBE {} ({})", index.name, c))
                })
            }
            Expr::Like {
                expr,
                pattern,
                escape,
                negated: false,
            } => column_of(expr, effective).and_then(|c| {
                let pat = match const_value(pattern, params)? {
                    Value::Text(t) => t,
                    _ => return None,
                };
                bindings.resolve(c).ok()?;
                let ordinal = table.schema.column_index(&c.column)?;
                let index = state.index_on(table_name, ordinal)?;
                let prefix = literal_prefix(&pat, *escape);
                if prefix.is_empty() {
                    return None;
                }
                Some(format!(
                    "INDEX prefix PROBE {} ({} LIKE '{}%…')",
                    index.name, c, prefix
                ))
            }),
            Expr::InList {
                expr,
                list,
                negated: false,
            } => column_of(expr, effective).and_then(|c| {
                if !list.iter().all(|e| const_value(e, params).is_some()) {
                    return None;
                }
                bindings.resolve(c).ok()?;
                let ordinal = table.schema.column_index(&c.column)?;
                let index = state.index_on(table_name, ordinal)?;
                Some(format!(
                    "INDEX IN-list PROBE {} ({}, {} keys)",
                    index.name,
                    c,
                    list.len()
                ))
            }),
            Expr::Between {
                expr,
                lo,
                hi,
                negated: false,
            } => column_of(expr, effective).and_then(|c| {
                const_value(lo, params)?;
                const_value(hi, params)?;
                bindings.resolve(c).ok()?;
                let ordinal = table.schema.column_index(&c.column)?;
                let index = state.index_on(table_name, ordinal)?;
                Some(format!("INDEX range PROBE {} ({} BETWEEN)", index.name, c))
            }),
            _ => None,
        };
        if described.is_some() {
            return described;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnDef;
    use crate::ast::Statement;
    use crate::error::SqlCode;
    use crate::index::Index;
    use crate::parser::parse;
    use crate::schema::TableSchema;
    use crate::state::TableData;
    use crate::storage::Heap;
    use crate::types::SqlType;
    use std::sync::Arc;

    fn shop_state() -> DbState {
        let mut st = DbState::default();
        let defs = [
            ColumnDef {
                name: "custid".into(),
                ty: SqlType::Integer,
                not_null: true,
                primary_key: false,
                unique: false,
            },
            ColumnDef {
                name: "product_name".into(),
                ty: SqlType::Varchar,
                not_null: false,
                primary_key: false,
                unique: false,
            },
            ColumnDef {
                name: "price".into(),
                ty: SqlType::Double,
                not_null: false,
                primary_key: false,
                unique: false,
            },
        ];
        let schema = TableSchema::from_defs("orders", &defs).unwrap();
        st.tables.insert(
            "orders".into(),
            Arc::new(TableData {
                schema,
                heap: Heap::new(),
                index_names: vec!["orders_cust".into()],
                stats: None,
            }),
        );
        st.indexes.insert(
            "orders_cust".into(),
            Arc::new(Index::new("orders_cust", "orders", 0, false)),
        );
        let data: &[(i64, &str, f64)] = &[
            (10100, "bikes", 120.0),
            (10100, "bike bells", 4.5),
            (10200, "skates", 45.0),
            (10100, "helmets", 30.0),
            (10300, "bikes", 119.0),
        ];
        for (c, p, pr) in data {
            let row = vec![Value::Int(*c), Value::Text((*p).into()), Value::Double(*pr)];
            st.insert_row("orders", row).unwrap();
        }
        st
    }

    fn q(state: &DbState, sql: &str) -> ResultSet {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        run_select(state, &sel, &[], &RequestCtx::unbounded()).unwrap()
    }

    #[test]
    fn cancelled_ctx_aborts_scan_with_sqlcode_952() {
        let st = shop_state();
        let Statement::Select(sel) = parse("SELECT * FROM orders").unwrap() else {
            panic!()
        };
        let ctx = RequestCtx::new(1, std::sync::Arc::new(dbgw_obs::StdClock::new()));
        ctx.cancel();
        let err = run_select(&st, &sel, &[], &ctx).unwrap_err();
        assert_eq!(err.code, SqlCode::CANCELLED);
        assert_eq!(err.code.0, -952);
        assert!(err.message.contains("cancelled"), "{}", err.message);
    }

    #[test]
    fn expired_deadline_aborts_scan_deterministically() {
        let st = shop_state();
        let Statement::Select(sel) = parse("SELECT * FROM orders WHERE custid > 0").unwrap() else {
            panic!()
        };
        let clock = std::sync::Arc::new(dbgw_obs::TestClock::new());
        let ctx = RequestCtx::new(1, clock.clone()).with_deadline_ms(10);
        assert!(run_select(&st, &sel, &[], &ctx).is_ok());
        clock.advance_millis(11);
        let err = run_select(&st, &sel, &[], &ctx).unwrap_err();
        assert_eq!(err.code, SqlCode::CANCELLED);
        assert!(err.message.contains("10 ms"), "{}", err.message);
    }

    #[test]
    fn paper_conditional_where_query() {
        // §3.1.3: WHERE custid = 10100 AND product_name LIKE 'bikes%'
        let st = shop_state();
        let r = q(
            &st,
            "SELECT product_name FROM orders WHERE custid = 10100 AND product_name LIKE 'bikes%'",
        );
        assert_eq!(r.rows, vec![vec![Value::Text("bikes".into())]]);
    }

    #[test]
    fn index_probe_equals_full_scan() {
        let st = shop_state();
        let with_index = q(
            &st,
            "SELECT product_name FROM orders WHERE custid = 10100 ORDER BY 1",
        );
        // Same query phrased so the planner cannot use the index.
        let no_index = q(
            &st,
            "SELECT product_name FROM orders WHERE custid + 0 = 10100 ORDER BY 1",
        );
        assert_eq!(with_index, no_index);
        assert_eq!(with_index.rows.len(), 3);
    }

    #[test]
    fn order_by_desc_and_positional() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT product_name, price FROM orders ORDER BY 2 DESC LIMIT 2",
        );
        assert_eq!(r.rows[0][0], Value::Text("bikes".into()));
        assert_eq!(r.rows[1][1], Value::Double(119.0));
    }

    #[test]
    fn order_by_alias() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT price * 2 AS doubled FROM orders ORDER BY doubled",
        );
        assert_eq!(r.columns, vec!["doubled"]);
        assert_eq!(r.rows[0][0], Value::Double(9.0));
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let st = shop_state();
        let r = q(&st, "SELECT * FROM orders LIMIT 1");
        assert_eq!(r.columns, vec!["custid", "product_name", "price"]);
        let r2 = q(&st, "SELECT o.* FROM orders o LIMIT 1");
        assert_eq!(r2.columns, r.columns);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let st = shop_state();
        let r = q(&st, "SELECT DISTINCT custid FROM orders ORDER BY 1");
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(10100)],
                vec![Value::Int(10200)],
                vec![Value::Int(10300)]
            ]
        );
    }

    #[test]
    fn group_by_with_having() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT custid, COUNT(*) AS n, SUM(price) FROM orders \
             GROUP BY custid HAVING COUNT(*) > 1 ORDER BY 1",
        );
        assert_eq!(r.columns, vec!["custid", "n", "SUM(price)"]);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(10100));
        assert_eq!(r.rows[0][1], Value::Int(3));
        assert_eq!(r.rows[0][2], Value::Double(154.5));
    }

    #[test]
    fn global_aggregate_over_empty_set() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT COUNT(*), SUM(price) FROM orders WHERE custid = 999",
        );
        assert_eq!(r.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn count_distinct() {
        let st = shop_state();
        let r = q(&st, "SELECT COUNT(DISTINCT product_name) FROM orders");
        assert_eq!(r.rows[0][0], Value::Int(4));
    }

    #[test]
    fn min_max_avg() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT MIN(price), MAX(price), AVG(price) FROM orders WHERE custid = 10100",
        );
        assert_eq!(r.rows[0][0], Value::Double(4.5));
        assert_eq!(r.rows[0][1], Value::Double(120.0));
        assert_eq!(r.rows[0][2], Value::Double((120.0 + 4.5 + 30.0) / 3.0));
    }

    #[test]
    fn tableless_select() {
        let st = DbState::default();
        let r = q(&st, "SELECT 1 + 1, 'x' || 'y'");
        assert_eq!(r.rows, vec![vec![Value::Int(2), Value::Text("xy".into())]]);
    }

    #[test]
    fn join_two_tables() {
        let mut st = shop_state();
        let defs = [
            ColumnDef {
                name: "custid".into(),
                ty: SqlType::Integer,
                not_null: true,
                primary_key: true,
                unique: false,
            },
            ColumnDef {
                name: "name".into(),
                ty: SqlType::Varchar,
                not_null: false,
                primary_key: false,
                unique: false,
            },
        ];
        let schema = TableSchema::from_defs("customers", &defs).unwrap();
        st.tables.insert(
            "customers".into(),
            Arc::new(TableData {
                schema,
                heap: Heap::new(),
                index_names: vec![],
                stats: None,
            }),
        );
        for (id, name) in [(10100, "Ada"), (10200, "Bob")] {
            st.insert_row("customers", vec![Value::Int(id), Value::Text(name.into())])
                .unwrap();
        }
        let r = q(
            &st,
            "SELECT c.name, COUNT(*) FROM orders o JOIN customers c ON o.custid = c.custid \
             GROUP BY c.name ORDER BY 2 DESC",
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("Ada".into()));
        assert_eq!(r.rows[0][1], Value::Int(3));
        // LEFT JOIN keeps the customer with no orders.
        let r2 = q(
            &st,
            "SELECT c.name FROM customers c LEFT JOIN orders o ON c.custid = o.custid \
             WHERE o.custid IS NULL",
        );
        assert!(r2.rows.is_empty()); // both customers have orders
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut st = DbState::default();
        for (t, cols) in [("a", vec!["x"]), ("b", vec!["x"])] {
            let defs: Vec<ColumnDef> = cols
                .iter()
                .map(|c| ColumnDef {
                    name: (*c).into(),
                    ty: SqlType::Integer,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                })
                .collect();
            st.tables.insert(
                t.into(),
                Arc::new(TableData {
                    schema: TableSchema::from_defs(t, &defs).unwrap(),
                    heap: Heap::new(),
                    index_names: vec![],
                    stats: None,
                }),
            );
        }
        st.insert_row("a", vec![Value::Int(1)]).unwrap();
        st.insert_row("a", vec![Value::Int(2)]).unwrap();
        st.insert_row("b", vec![Value::Int(1)]).unwrap();
        let r = q(
            &st,
            "SELECT a.x, b.x FROM a LEFT JOIN b ON a.x = b.x ORDER BY 1",
        );
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(2), Value::Null]
            ]
        );
    }

    #[test]
    fn like_prefix_uses_index_same_result() {
        let mut st = shop_state();
        // Index product_name too.
        st.indexes.insert(
            "orders_prod".into(),
            Arc::new(Index::new("orders_prod", "orders", 1, false)),
        );
        let names: Vec<Value> = st
            .table("orders")
            .unwrap()
            .heap
            .iter()
            .map(|(id, r)| (id, r[1].clone()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(id, v)| {
                Arc::make_mut(st.indexes.get_mut("orders_prod").unwrap())
                    .insert(&v, id)
                    .unwrap();
                v
            })
            .collect();
        assert_eq!(names.len(), 5);
        Arc::make_mut(st.tables.get_mut("orders").unwrap())
            .index_names
            .push("orders_prod".into());
        let r = q(
            &st,
            "SELECT custid FROM orders WHERE product_name LIKE 'bike%' ORDER BY 1",
        );
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn where_with_unknown_filters_out() {
        let mut st = shop_state();
        st.insert_row("orders", vec![Value::Int(10400), Value::Null, Value::Null])
            .unwrap();
        // NULL product_name: LIKE is unknown, row filtered.
        let r = q(&st, "SELECT custid FROM orders WHERE product_name LIKE '%'");
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn offset_pagination() {
        let st = shop_state();
        let all = q(&st, "SELECT product_name FROM orders ORDER BY 1");
        let page2 = q(
            &st,
            "SELECT product_name FROM orders ORDER BY 1 LIMIT 2 OFFSET 2",
        );
        assert_eq!(page2.rows.as_slice(), &all.rows[2..4]);
    }

    #[test]
    fn error_on_unknown_column() {
        let st = shop_state();
        let Statement::Select(sel) = parse("SELECT bogus FROM orders").unwrap() else {
            panic!()
        };
        let err = run_select(&st, &sel, &[], &RequestCtx::unbounded()).unwrap_err();
        assert_eq!(err.code, crate::error::SqlCode::UNDEFINED_COLUMN);
    }

    fn q_opts(state: &DbState, sql: &str, opts: &PlanOptions) -> ResultSet {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        run_select_with_options(state, &sel, &[], &RequestCtx::unbounded(), opts).unwrap()
    }

    /// orders (indexed on custid) plus a customers table carrying NULL keys.
    fn joined_state() -> DbState {
        let mut st = shop_state();
        let defs = [
            ColumnDef {
                name: "custid".into(),
                ty: SqlType::Integer,
                not_null: false,
                primary_key: false,
                unique: false,
            },
            ColumnDef {
                name: "name".into(),
                ty: SqlType::Varchar,
                not_null: false,
                primary_key: false,
                unique: false,
            },
        ];
        let schema = TableSchema::from_defs("customers", &defs).unwrap();
        st.tables.insert(
            "customers".into(),
            Arc::new(TableData {
                schema,
                heap: Heap::new(),
                index_names: vec![],
                stats: None,
            }),
        );
        let rows: &[(Value, &str)] = &[
            (Value::Int(10100), "Ada"),
            (Value::Int(10200), "Bob"),
            (Value::Null, "Nul"),
            (Value::Int(10900), "Zoe"),
        ];
        for (id, name) in rows {
            st.insert_row("customers", vec![id.clone(), Value::Text((*name).into())])
                .unwrap();
        }
        st
    }

    #[test]
    fn hash_join_matches_nested_loop_rows_and_order() {
        let st = joined_state();
        for sql in [
            "SELECT c.name, o.product_name FROM customers c JOIN orders o ON c.custid = o.custid",
            "SELECT c.name, o.product_name FROM customers c LEFT JOIN orders o \
             ON c.custid = o.custid",
            "SELECT c.name, o.price FROM customers c JOIN orders o \
             ON c.custid = o.custid AND o.price > 20",
        ] {
            let fast = q_opts(&st, sql, &PlanOptions::all());
            let slow = q_opts(&st, sql, &PlanOptions::baseline());
            assert_eq!(fast, slow, "plans diverge for {sql}");
        }
    }

    #[test]
    fn hash_left_outer_skips_null_keys_and_pads() {
        let st = joined_state();
        let sql = "SELECT c.name, o.product_name FROM customers c \
                   LEFT JOIN orders o ON c.custid = o.custid \
                   WHERE o.product_name IS NULL ORDER BY 1";
        let fast = q_opts(&st, sql, &PlanOptions::all());
        let slow = q_opts(&st, sql, &PlanOptions::baseline());
        assert_eq!(fast, slow);
        // NULL custid and unmatched 10900 both appear padded; no NULL=NULL match.
        assert_eq!(
            fast.rows,
            vec![
                vec![Value::Text("Nul".into()), Value::Null],
                vec![Value::Text("Zoe".into()), Value::Null],
            ]
        );
    }

    #[test]
    fn hash_join_counter_increments() {
        let st = joined_state();
        let before = dbgw_obs::metrics().join_hash.get();
        q_opts(
            &st,
            "SELECT c.name FROM customers c JOIN orders o ON c.custid = o.custid",
            &PlanOptions::all(),
        );
        assert!(dbgw_obs::metrics().join_hash.get() > before);
    }

    #[test]
    fn pushdown_enables_index_probe_under_join() {
        // Satellite regression: with a join present, the single-table WHERE
        // conjunct on the indexed base must still take the index access path.
        let st = joined_state();
        let sql = "SELECT o.product_name, c.name FROM orders o \
                   JOIN customers c ON o.custid = c.custid \
                   WHERE o.custid = 10100 ORDER BY 1";
        plan::reset_thread_stats();
        let fast = q_opts(&st, sql, &PlanOptions::all());
        let probed = plan::thread_stats().rows_scanned;
        plan::reset_thread_stats();
        let slow = q_opts(&st, sql, &PlanOptions::baseline());
        let walked = plan::thread_stats().rows_scanned;
        assert_eq!(fast, slow);
        assert_eq!(fast.rows.len(), 3);
        // Index probe touches exactly the 3 matching orders (+4 customers);
        // the baseline heap-walks all 5 orders.
        assert!(
            probed < walked,
            "index path scanned {probed} rows, baseline {walked}"
        );
        assert_eq!(probed, 3 + 4);
    }

    #[test]
    fn topk_execution_matches_full_sort() {
        let st = shop_state();
        for sql in [
            "SELECT product_name, price FROM orders ORDER BY price DESC LIMIT 2",
            "SELECT product_name FROM orders ORDER BY custid, 1 LIMIT 3 OFFSET 1",
            "SELECT product_name FROM orders ORDER BY 1 LIMIT 10", // k > n
        ] {
            let fast = q_opts(&st, sql, &PlanOptions::all());
            let slow = q_opts(&st, sql, &PlanOptions::baseline());
            assert_eq!(fast, slow, "top-k diverges for {sql}");
        }
    }

    #[test]
    fn topk_is_stable_on_duplicate_keys() {
        // Two orders share custid 10100 + equal sort key prefix; stable order
        // means heap-based top-k must tie-break by original position.
        let st = shop_state();
        let fast = q_opts(
            &st,
            "SELECT product_name FROM orders ORDER BY custid LIMIT 3",
            &PlanOptions::all(),
        );
        let slow = q_opts(
            &st,
            "SELECT product_name FROM orders ORDER BY custid LIMIT 3",
            &PlanOptions::baseline(),
        );
        assert_eq!(fast, slow);
    }

    #[test]
    fn empty_sides_match_baseline() {
        let mut st = joined_state();
        // Empty out customers (the probe side).
        let ids: Vec<_> = st
            .table("customers")
            .unwrap()
            .heap
            .iter()
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            Arc::make_mut(st.tables.get_mut("customers").unwrap())
                .heap
                .delete(id);
        }
        for sql in [
            "SELECT * FROM customers c JOIN orders o ON c.custid = o.custid",
            "SELECT * FROM customers c LEFT JOIN orders o ON c.custid = o.custid",
            "SELECT * FROM orders o LEFT JOIN customers c ON o.custid = c.custid",
        ] {
            let fast = q_opts(&st, sql, &PlanOptions::all());
            let slow = q_opts(&st, sql, &PlanOptions::baseline());
            assert_eq!(fast, slow, "empty-side diverges for {sql}");
        }
    }

    #[test]
    fn cross_type_keys_match_via_hash() {
        // Int(10100) must hash-match Double(10100.0) exactly as `=` does.
        let mut st = joined_state();
        st.insert_row(
            "customers",
            vec![Value::Double(10300.0), Value::Text("Dot".into())],
        )
        .unwrap();
        let sql = "SELECT c.name, o.product_name FROM customers c \
                   JOIN orders o ON c.custid = o.custid ORDER BY 1, 2";
        let fast = q_opts(&st, sql, &PlanOptions::all());
        let slow = q_opts(&st, sql, &PlanOptions::baseline());
        assert_eq!(fast, slow);
        assert!(fast.rows.iter().any(|r| r[0] == Value::Text("Dot".into())));
    }
}
